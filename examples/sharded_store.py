#!/usr/bin/env python3
"""A sharded multi-group keyspace with log-less live migration.

One CRDT-Paxos group scales per *key* (every key is its own protocol
instance), but a single group still caps out: every replica holds every
key and every update crosses the same three nodes.  This example runs
the PR-8 sharding layer on the deterministic simulator:

* **Routing** — a consistent-hash ring (plus pin overrides) partitions
  the keyspace across independent 3-replica groups; the
  ``ShardedStore`` client routes each typed handle by key.
* **Log-less migration** — moving a key is a freeze at the source, a
  quorum read of its entire durable protocol state (the §3.3
  ``(payload, round, learned-max)`` triple — there is no log to ship),
  an install at the destination, and an epoch-stamped commit.  Clients
  in flight bounce on ``WrongGroup`` refusals and converge on the new
  owner; the read after the move is still linearizable.
* **Live membership change** — growing the ring to a third group under
  Zipf benchmark traffic moves only the keys the new group's arcs
  capture (the bounded-movement property of consistent hashing), while
  clients keep completing operations throughout.

Run:  python examples/sharded_store.py
"""

from repro.crdt import GCounter
from repro.net.sim_transport import SimNetwork
from repro.sharding.deployment import ShardedSimDeployment
from repro.sharding.routing import RoutingService
from repro.sim.kernel import Simulator
from repro.workload import WorkloadSpec, run_sharded_workload

N_KEYS = 24
KEYS = [f"views:p{i}" for i in range(N_KEYS)]


def act_one_migration() -> None:
    print("== Act 1: two groups, one keyspace, a live key move ==")
    sim = Simulator(seed=42)
    deployment = ShardedSimDeployment(
        sim, SimNetwork(sim), ["g0", "g1"], lambda key: GCounter.initial()
    )
    store = deployment.store(client="app")

    for i, key in enumerate(KEYS):
        store.counter(key).incr(i + 1)
    split = {
        name: sum(
            1 for key in KEYS if deployment.routing.owner(key) == name
        )
        for name in deployment.clusters
    }
    print(f"   ring split over {N_KEYS} keys: {split}")

    hot = KEYS[0]
    source = deployment.routing.owner(hot)
    target = next(g for g in deployment.clusters if g != source)
    print(f"   migrating {hot!r}: {source} -> {target} (no log shipped —")
    print("   a quorum read of the key's (payload, round, learned-max))")
    deployment.migrate(hot, target)
    assert deployment.settle(), "migration did not retire"

    value = store.counter(hot).value()
    assert value == 1, value
    print(f"   linearizable read of migrated key: {value} (state intact)")
    store.counter(hot).incr(9)
    assert store.counter(hot).value() == 10

    # A client whose routing view predates the move: its first touch
    # bounces on the replicas' attested WrongGroup hint, then converges.
    stale = deployment.store(client="stale")
    stale.routing = RoutingService(deployment.birth_table)
    assert stale.counter(hot).value() == 10
    print(f"   stale client converged after {stale.reroutes} bounce(s)")


def act_two_grow_under_traffic() -> None:
    print("== Act 2: growing the ring to 3 groups under Zipf traffic ==")
    spec = WorkloadSpec(
        n_clients=6,
        read_ratio=0.3,
        duration=2.0,
        warmup=0.2,
        n_keys=N_KEYS,
        key_skew=0.9,
    )
    result = run_sharded_workload(spec, seed=7, grow_at=1.0, grow_group="g2")

    plan = result.rebalance_plan
    assert plan, "the new group's arcs captured nothing"
    assert all(target == "g2" for _, target in plan)
    assert len(plan) < 0.6 * N_KEYS, "rebalance moved more than its share"
    print(
        f"   bounded rebalance: {len(plan)}/{N_KEYS} keys moved to g2 "
        "(only the captured arcs)"
    )
    assert result.migrations_completed >= len(plan)
    assert result.completed_ops() > 0
    print(
        f"   traffic never stopped: {result.completed_ops()} ops, "
        f"{result.reroutes} client re-route(s), "
        f"{result.client_timeouts} timeouts"
    )
    g2 = result.group_stats["g2"]
    assert g2["migrations_in"] > 0
    served = g2["updates_completed"] + g2["queries_completed"]
    assert served > 0
    print(
        f"   grown group g2 installed {g2['migrations_in']} keys and "
        f"served {served} ops before the run ended"
    )


if __name__ == "__main__":
    act_one_migration()
    act_two_grow_under_traffic()
    print("sharded store: OK")
