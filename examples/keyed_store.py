#!/usr/bin/env python3
"""A fine-granular keyed CRDT store — the Scalaris deployment shape.

The paper's implementation lives inside a key-value store: every key is
an independent replicated CRDT with its own protocol instance, so
contention is per key, not per store ("linearizable access on CRDT data
on a fine-granular scale", §1).

This example runs a 3-replica keyed store holding heterogeneous values —
page-view G-Counters and a tag OR-Set — under concurrent writers, then
takes linearizable per-key readings.

Run:  python examples/keyed_store.py
"""

import asyncio

from repro.core.keyspace import Keyed, KeyedCrdtReplica
from repro.core.messages import ClientQuery, ClientUpdate
from repro.crdt import (
    GCounter,
    GCounterValue,
    Increment,
    ORSet,
    ORSetAdd,
    ORSetElements,
)
from repro.runtime.asyncio_cluster import AsyncioCluster


def initial_state_for(key: str):
    """All replicas agree on each key's CRDT type by naming convention."""
    if key.startswith("tags:"):
        return ORSet.initial()
    return GCounter.initial()


class KeyedClient:
    """Thin wrapper translating per-key calls into Keyed envelopes."""

    def __init__(self, cluster: AsyncioCluster, name: str) -> None:
        self._client = cluster.client(name)
        self._cluster = cluster
        self._counter = 0

    async def update(self, replica: str, key: str, op) -> None:
        self._counter += 1
        message = Keyed(
            key=key,
            message=ClientUpdate(request_id=f"{key}#{self._counter}", op=op),
        )
        reply = await self._request(replica, message)
        assert reply.key == key

    async def query(self, replica: str, key: str, op):
        self._counter += 1
        message = Keyed(
            key=key,
            message=ClientQuery(request_id=f"{key}#{self._counter}", op=op),
        )
        reply = await self._request(replica, message)
        return reply.message.result

    async def _request(self, replica: str, message: Keyed):
        # Keyed delegates request_id to its inner message, so the asyncio
        # client's request/reply correlation works unchanged.
        return await self._client.request(replica, message)


async def main() -> None:
    cluster = AsyncioCluster(
        lambda nid, peers: KeyedCrdtReplica(nid, peers, initial_state_for),
        n_replicas=3,
    )
    async with cluster:
        writers = [KeyedClient(cluster, f"w{i}") for i in range(3)]

        async def traffic(writer: KeyedClient, index: int) -> None:
            replica = cluster.addresses[index % 3]
            for i in range(10):
                await writer.update(replica, f"views:page{i % 3}", Increment())
            await writer.update(replica, "tags:global", ORSetAdd(f"tag-{index}"))

        await asyncio.gather(
            *(traffic(writer, index) for index, writer in enumerate(writers))
        )

        reader = KeyedClient(cluster, "reader")
        total = 0
        for page in range(3):
            count = await reader.query(
                "r1", f"views:page{page}", GCounterValue()
            )
            print(f"views:page{page} = {count}")
            total += count
        tags = await reader.query("r2", "tags:global", ORSetElements())
        print(f"tags:global  = {sorted(tags)}")

        assert total == 30
        assert sorted(tags) == ["tag-0", "tag-1", "tag-2"]
        print("\nall per-key reads linearizable; keys never synchronized "
              "with each other")


if __name__ == "__main__":
    asyncio.run(main())
