#!/usr/bin/env python3
"""A fine-granular keyed CRDT store — the Scalaris deployment shape.

The paper's implementation lives inside a key-value store: every key is
an independent replicated CRDT with its own protocol instance, so
contention is per key, not per store ("linearizable access on CRDT data
on a fine-granular scale", §1).

This example runs a 3-replica keyed store holding heterogeneous values —
page-view G-Counters, a tag OR-Set and a profile LWW-Map — under
concurrent writers, then takes linearizable per-key readings.  The
``repro.api`` Store is keyed-aware: it detects the keyed deployment and
addresses every typed handle at one key (``store.counter("views:p0")``),
no hand-rolled envelope plumbing required.

Run:  python examples/keyed_store.py
"""

import asyncio

from repro.api import AsyncStore
from repro.core.keyspace import KeyedCrdtReplica
from repro.crdt import GCounter, LWWMap, ORSet
from repro.runtime.asyncio_cluster import AsyncioCluster


def initial_state_for(key: str):
    """All replicas agree on each key's CRDT type by naming convention."""
    if key.startswith("tags:"):
        return ORSet.initial()
    if key.startswith("profile:"):
        return LWWMap.initial()
    return GCounter.initial()


async def main() -> None:
    cluster = AsyncioCluster(
        lambda nid, peers: KeyedCrdtReplica(nid, peers, initial_state_for),
        n_replicas=3,
    )
    async with cluster:
        writers = [
            AsyncStore(cluster, client=f"w{i}", home=cluster.addresses[i % 3])
            for i in range(3)
        ]

        async def traffic(store: AsyncStore, index: int) -> None:
            for i in range(10):
                await store.counter(f"views:page{i % 3}").incr()
            await store.orset("tags:global").add(f"tag-{index}")
            await store.lwwmap(f"profile:{index}").put(
                "name", f"user-{index}", timestamp=float(index + 1)
            )

        await asyncio.gather(
            *(traffic(store, index) for index, store in enumerate(writers))
        )

        reader = AsyncStore(cluster, client="reader")
        total = 0
        for page in range(3):
            count = await reader.counter(f"views:page{page}").value(via="r1")
            print(f"views:page{page} = {count}")
            total += count
        tags = await reader.orset("tags:global").elements(via="r2")
        print(f"tags:global  = {sorted(tags)}")
        name = await reader.lwwmap("profile:1").get("name")
        print(f"profile:1    = {name!r}")

        assert total == 30
        assert sorted(tags) == ["tag-0", "tag-1", "tag-2"]
        assert name == "user-1"
        print("\nall per-key reads linearizable; keys never synchronized "
              "with each other")


if __name__ == "__main__":
    asyncio.run(main())
