#!/usr/bin/env python3
"""A fine-granular keyed CRDT store — the Scalaris deployment shape.

The paper's implementation lives inside a key-value store: every key is
an independent replicated CRDT with its own protocol instance, so
contention is per key, not per store ("linearizable access on CRDT data
on a fine-granular scale", §1).

This example runs a 3-replica keyed store holding heterogeneous values —
page-view G-Counters, a tag OR-Set and a profile LWW-Map — under
concurrent writers, then takes linearizable per-key readings.  The
``repro.api`` Store is keyed-aware: it detects the keyed deployment and
addresses every typed handle at one key (``store.counter("views:p0")``),
no hand-rolled envelope plumbing required.

It also demonstrates the **frozen-record spill tier**: each replica gets
a :class:`~repro.storage.SegmentedSpillStore` and a tiny
``keyed_max_resident`` / ``keyed_max_frozen`` budget, so cold keys leave
RAM entirely during the run; ``Store.flush()`` then persists the full
durable snapshot (the paper's (payload, round) pair per key — no log),
and after the cluster is gone a replica is rebuilt *from the files
alone* with ``KeyedCrdtReplica.recover`` and still answers for every
key.

A second act runs on the deterministic simulator with
``durability="write_through"`` and **kill -9**'s a replica mid-service:
no flush, no shutdown hook, the segment directory is reopened cold.
Because write-through persists each key's triple *before* the acceptor's
ack escapes, the files are trustworthy — but the pair may still be
*stale* (peers moved on while the node was dead), so recovery comes back
with ``rejoin=True`` and every recovered key refreshes its (payload,
round) pair from a read quorum (a §3.3 prepare) before serving again.

Run:  python examples/keyed_store.py
"""

import asyncio
import shutil
import tempfile

from repro.api import AsyncStore
from repro.core.config import CrdtPaxosConfig
from repro.core.keyspace import KeyedCrdtReplica
from repro.crdt import GCounter, LWWMap, ORSet
from repro.runtime.asyncio_cluster import AsyncioCluster
from repro.storage import SegmentedSpillStore


def initial_state_for(key: str):
    """All replicas agree on each key's CRDT type by naming convention."""
    if key.startswith("tags:"):
        return ORSet.initial()
    if key.startswith("profile:"):
        return LWWMap.initial()
    return GCounter.initial()


async def main() -> None:
    spill_root = tempfile.mkdtemp(prefix="keyed-store-spill-")
    spill_stores = {}

    def replica(nid: str, peers: list[str]) -> KeyedCrdtReplica:
        # A tiny RAM budget: at most 4 resident instances and 4 frozen
        # records per replica; every colder key spills to segment files.
        spill_stores[nid] = SegmentedSpillStore(f"{spill_root}/{nid}")
        return KeyedCrdtReplica(
            nid,
            peers,
            initial_state_for,
            CrdtPaxosConfig(keyed_max_resident=4, keyed_max_frozen=4),
            spill_store=spill_stores[nid],
        )

    cluster = AsyncioCluster(replica, n_replicas=3)
    try:
        await run_demo(cluster, spill_stores, spill_root)
    finally:
        for spill_store in spill_stores.values():
            spill_store.close()
        shutil.rmtree(spill_root, ignore_errors=True)


async def run_demo(cluster, spill_stores, spill_root) -> None:
    async with cluster:
        writers = [
            AsyncStore(cluster, client=f"w{i}", home=cluster.addresses[i % 3])
            for i in range(3)
        ]

        async def traffic(store: AsyncStore, index: int) -> None:
            for i in range(10):
                await store.counter(f"views:page{i % 3}").incr()
            await store.orset("tags:global").add(f"tag-{index}")
            await store.lwwmap(f"profile:{index}").put(
                "name", f"user-{index}", timestamp=float(index + 1)
            )

        await asyncio.gather(
            *(traffic(store, index) for index, store in enumerate(writers))
        )

        reader = AsyncStore(cluster, client="reader")
        total = 0
        for page in range(3):
            count = await reader.counter(f"views:page{page}").value(via="r1")
            print(f"views:page{page} = {count}")
            total += count
        tags = await reader.orset("tags:global").elements(via="r2")
        print(f"tags:global  = {sorted(tags)}")
        name = await reader.lwwmap("profile:1").get("name")
        print(f"profile:1    = {name!r}")

        assert total == 30
        assert sorted(tags) == ["tag-0", "tag-1", "tag-2"]
        assert name == "user-1"
        print("\nall per-key reads linearizable; keys never synchronized "
              "with each other")

        # Shutdown hook: persist every replica's durable snapshot —
        # each key's (payload, round, learned-max) triple, no log.
        flushed = reader.flush()
        print(f"spilled records per replica: {flushed}")

    # The cluster is gone.  Rebuild one replica from its files alone:
    # recovery reads nothing but the counter metadata (O(1)); keys
    # rehydrate from the segment files on first touch.
    spill_stores["r1"].close()  # release the old generation's handles
    recovery_store = SegmentedSpillStore(f"{spill_root}/r1")
    spill_stores["r1:recovered"] = recovery_store
    recovered = KeyedCrdtReplica.recover(
        recovery_store,
        "r1",
        ["r0", "r1", "r2"],
        initial_state_for,
    )
    views = sum(
        recovered.state_of(f"views:page{page}").value() for page in range(3)
    )
    assert views == 30
    assert sorted(recovered.state_of("tags:global").live_elements()) == [
        "tag-0", "tag-1", "tag-2",
    ]
    print(f"r1 recovered from disk: {views} page views, "
          f"{recovered.spilled_count()} keys on file — no log replayed")


def survive_kill_minus_nine() -> None:
    """Act two: write-through durability, a hard kill, a quorum re-join."""
    from repro.api import SimStore
    from repro.net.latency import ConstantLatency
    from repro.net.sim_transport import SimNetwork
    from repro.runtime.cluster import SimCluster
    from repro.sim.kernel import Simulator

    spill_root = tempfile.mkdtemp(prefix="keyed-store-kill9-")
    spill_stores = {}
    config = CrdtPaxosConfig(durability="write_through")

    def replica(nid: str, peers: list[str]) -> KeyedCrdtReplica:
        spill_stores[nid] = SegmentedSpillStore(f"{spill_root}/{nid}")
        return KeyedCrdtReplica(
            nid, peers, initial_state_for, config, spill_store=spill_stores[nid]
        )

    sim = Simulator(seed=7)
    network = SimNetwork(sim, latency=ConstantLatency(delay=0.001))
    cluster = SimCluster(sim, network, replica, n_replicas=3)
    store = SimStore(cluster, client="app")
    try:
        for i in range(12):
            store.counter(f"views:page{i % 3}").incr()

        # kill -9 r1: the process dies mid-service.  No spill_all, no
        # close, no clean-shutdown marker — only what write-through
        # already put on disk before each ack escaped.
        cluster.crash("r1")
        dead = spill_stores["r1"]
        print(f"\nr1 hard-killed; {dead.puts} write-through puts on disk")

        # The survivors keep serving — quorum 2-of-3 is intact.
        store.counter("views:page0").incr()

        # A new process reopens the dead replica's directory cold.  The
        # files are trustworthy (persist-before-ack) but may be *stale*:
        # r0+r2 accepted writes while r1 was dead.  So recovery gates
        # every key behind a quorum refresh of its (payload, round) pair.
        reopened = SegmentedSpillStore(f"{spill_root}/r1")
        spill_stores["r1"] = reopened
        rejoined = KeyedCrdtReplica.recover(
            reopened,
            "r1",
            cluster.addresses,
            initial_state_for,
            config,
            rejoin=True,
        )
        print(f"r1 reopened its files: {rejoined.rejoin_pending_count()} keys "
              "gated behind a quorum refresh")
        runtime = cluster.runtimes["r1"]
        runtime.node = rejoined
        cluster.recover("r1")  # on_recover re-arms the node's timers
        runtime.apply_effects(rejoined.rejoin())
        sim.run(until=sim.now + 1.0)
        assert rejoined.rejoin_pending_count() == 0
        assert rejoined.rejoin_refreshes > 0

        # r1 serves linearizable reads again — including the increment it
        # missed while dead.
        count = store.counter("views:page0").value(via="r1")
        assert count == 5
        print(f"r1 re-joined via {rejoined.rejoin_refreshes} quorum "
              f"refreshes; linearizable read via r1: views:page0 = {count}")
    finally:
        for spill_store in spill_stores.values():
            spill_store.close()
        shutil.rmtree(spill_root, ignore_errors=True)


if __name__ == "__main__":
    asyncio.run(main())
    survive_kill_minus_nine()
