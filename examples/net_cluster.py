#!/usr/bin/env python3
"""Two OS processes, one replicated counter, real sockets.

Everything the other examples do in one process, this one does across a
real process boundary: a child process hosts three keyed CRDT-Paxos
replicas behind framed TCP sockets (:mod:`repro.net.stream`, the
:mod:`repro.wire` binary codec on every frame), and this parent process
is a plain socket client.  Ten increments land on one replica; the
linearizable read is served by a *different* replica, so the answer can
only be right if real MERGE/MERGED coordination crossed the wire.

Run:  python examples/net_cluster.py
(The demo skips itself cleanly where sandboxes forbid loopback sockets.)
"""

import asyncio
import multiprocessing
import sys
import time

from repro.bench.netbench import reserve_ports, sockets_available
from repro.core.config import CrdtPaxosConfig
from repro.core.keyspace import Keyed, KeyedCrdtReplica
from repro.core.messages import ClientQuery, ClientUpdate, QueryDone, UpdateDone
from repro.crdt.gcounter import GCounter, GCounterValue, Increment
from repro.net.stream import StreamClient, StreamNodeServer

HOST = "127.0.0.1"
NAMES = ["r0", "r1", "r2"]


def cluster_main(ports: dict, ready, stop) -> None:
    """Child-process entry: three replicas on one event loop."""
    asyncio.run(_host_cluster(ports, ready, stop))


async def _host_cluster(ports: dict, ready, stop) -> None:
    servers = []
    for nid in NAMES:
        replica = KeyedCrdtReplica(
            nid, list(NAMES), lambda key: GCounter.initial(), CrdtPaxosConfig()
        )
        servers.append(
            StreamNodeServer(
                replica,
                HOST,
                ports[nid],
                peers={p: (HOST, ports[p]) for p in NAMES if p != nid},
            )
        )
    for server in servers:
        await server.start()
    ready.set()
    while not stop.is_set():
        await asyncio.sleep(0.05)
    for server in servers:
        await server.close()


async def drive(ports: dict) -> None:
    client = StreamClient("demo", {nid: (HOST, ports[nid]) for nid in NAMES})
    try:
        for i in range(10):
            reply = await client.request(
                "r0",
                Keyed(key="hits", message=ClientUpdate(f"demo/u{i}", Increment(1))),
                timeout=10.0,
            )
            assert isinstance(reply.message, UpdateDone), reply
        reply = await client.request(
            "r1",
            Keyed(key="hits", message=ClientQuery("demo/q0", GCounterValue())),
            timeout=10.0,
        )
        assert isinstance(reply.message, QueryDone), reply
        assert reply.message.result == 10, reply.message
        print(f"linearizable read over real sockets: hits = {reply.message.result}")

        stats = await client.transport_stats("r0")
        print(
            f"replica r0 socket traffic: {stats.messages_sent} frames / "
            f"{stats.bytes_sent} bytes sent, {stats.messages_received} "
            f"frames received"
        )
    finally:
        await client.close()


def main() -> int:
    if not sockets_available():
        print("net_cluster demo skipped: loopback sockets unavailable")
        return 0
    ctx = multiprocessing.get_context("spawn")
    ports = dict(zip(NAMES, reserve_ports(len(NAMES))))
    ready, stop = ctx.Event(), ctx.Event()
    child = ctx.Process(target=cluster_main, args=(ports, ready, stop), daemon=True)
    child.start()
    try:
        if not ready.wait(timeout=30.0):
            raise TimeoutError("replica process failed to start")
        started = time.perf_counter()
        asyncio.run(drive(ports))
        elapsed = time.perf_counter() - started
        print(f"two processes, one counter, {elapsed * 1e3:.0f} ms: OK")
    finally:
        stop.set()
        child.join(timeout=5.0)
        if child.is_alive():
            child.terminate()
    return 0


if __name__ == "__main__":
    sys.exit(main())
