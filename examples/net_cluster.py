#!/usr/bin/env python3
"""Four OS processes, one replicated counter, real sockets, one SIGKILL.

Everything the other examples do in one process, this one does across
real process boundaries: three replica processes (each a keyed
CRDT-Paxos replica behind a framed TCP socket — :mod:`repro.net.stream`,
the :mod:`repro.wire` binary codec on every frame, a durable spill store
on disk) and this parent process as a plain socket client.

Act one — ten increments land on one replica; the linearizable read is
served by a *different* replica, so the answer can only be right if real
MERGE/MERGED coordination crossed the wire.

Act two — the nemesis: ``kill -9`` the replica that took the writes.
The client fails over (dead connections are rejected fail-fast, not
timed out) and keeps incrementing through the outage.  Then the victim
cold-restarts over its spill directory — ``recover(rejoin=True)``, the
paper's log-less §3.3 recovery — and answers a linearizable read that
includes every increment it missed while dead.

Run:  python examples/net_cluster.py
(The demo skips itself cleanly where sandboxes forbid loopback sockets.)
"""

import asyncio
import sys
import time

from repro.bench.netbench import sockets_available
from repro.core.keyspace import Keyed
from repro.core.messages import ClientQuery, ClientUpdate, QueryDone, UpdateDone
from repro.crdt.gcounter import GCounterValue, Increment
from repro.nemesis import ProcessCluster
from repro.net.stream import StreamClient


async def _increment(client: StreamClient, request_id: str) -> None:
    reply = await client.request_any(
        Keyed(key="hits", message=ClientUpdate(request_id, Increment(1))),
        timeout=10.0,
    )
    assert isinstance(reply.message, UpdateDone), reply


async def _read_hits(client: StreamClient, replica: str, request_id: str) -> int:
    reply = await client.request(
        replica,
        Keyed(key="hits", message=ClientQuery(request_id, GCounterValue())),
        timeout=15.0,
    )
    assert isinstance(reply.message, QueryDone), reply
    return reply.message.result


async def drive(cluster: ProcessCluster) -> None:
    client = StreamClient("demo", cluster.placements, preferred="r0")
    try:
        # Act one: ten increments at r0, linearizable read at r1.
        for i in range(10):
            await _increment(client, f"demo/u{i}")
        hits = await _read_hits(client, "r1", "demo/q0")
        assert hits == 10, hits
        print(f"linearizable read over real sockets: hits = {hits}")

        stats = await client.transport_stats("r0")
        print(
            f"replica r0 socket traffic: {stats.messages_sent} frames / "
            f"{stats.bytes_sent} bytes sent, {stats.messages_received} "
            f"frames received"
        )

        # Act two: kill -9 the replica that took every write.
        cluster.kill("r0")
        for i in range(10, 15):
            await _increment(client, f"demo/u{i}")
        print(
            f"SIGKILL r0: fail-over kept 5 increments flowing "
            f"(failovers = {client.failovers})"
        )

        # Cold restart over the spill directory: stored keys refresh
        # from a read quorum (§3.3 prepare) before r0 serves again.
        await asyncio.to_thread(cluster.restart, "r0")
        hits = await _read_hits(client, "r0", "demo/q1")
        assert hits == 15, hits
        print(
            f"restarted r0 answered the linearizable read: hits = {hits} "
            f"(including 5 it missed while dead)"
        )
    finally:
        await client.close()


def main() -> int:
    if not sockets_available():
        print("net_cluster demo skipped: loopback sockets unavailable")
        return 0
    cluster = ProcessCluster(n_replicas=3, state="gcounter", durable=True)
    try:
        cluster.start()
        started = time.perf_counter()
        asyncio.run(drive(cluster))
        elapsed = time.perf_counter() - started
        print(f"four processes, one counter, {elapsed * 1e3:.0f} ms: OK")
    finally:
        cluster.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
