#!/usr/bin/env python3
"""Why the paper excluded the original GLA protocol from its evaluation.

Falerio et al.'s wait-free generalized lattice agreement exchanges "an
ever-increasing set of proposed values"; without a truncation mechanism
(none is described) its coordination messages grow linearly with history.
CRDT Paxos bounds every message by the CRDT payload plus one round.

This example replays the same increment stream through both systems and
prints the mean coordination-message size per segment.

Run:  python examples/gla_message_growth.py
"""

from repro.bench.overhead import render_overhead, run_overhead


def main() -> None:
    points = run_overhead(segments=6, updates_per_segment=50, seed=0)
    print(render_overhead(points))

    crdt = [p.mean_bytes for p in points if p.protocol == "crdt-paxos"]
    gla = [p.mean_bytes for p in points if p.protocol == "gla"]

    crdt_growth = crdt[-1] / crdt[1]
    gla_growth = gla[-1] / gla[1]
    print(
        f"\ngrowth from segment 2 to {len(crdt)}: "
        f"CRDT Paxos ×{crdt_growth:.2f}, GLA ×{gla_growth:.2f}"
    )
    assert crdt_growth < 1.2, "CRDT Paxos messages must stay bounded"
    assert gla_growth > 2.0, "GLA messages must keep growing"
    print(
        "CRDT Paxos merges stay flat (a 3-replica G-Counter never exceeds "
        "three slots);\nGLA proposals drag the full command history along."
    )


if __name__ == "__main__":
    main()
