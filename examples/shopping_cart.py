#!/usr/bin/env python3
"""A replicated shopping cart on an OR-Set with a linearizable checkout.

The classic CRDT demo — a cart edited concurrently from two devices —
with the twist the paper enables: *checkout* needs a linearizable view
(you must charge for exactly what the user sees), while edits stay cheap
single-round-trip updates.

Each device holds an ``repro.api`` Store pinned to its nearest replica;
all of them address the same replicated OR-Set through typed handles.

Semantics demonstrated:

* adds from both devices merge without coordination,
* OR-Set add-wins behaviour: an item re-added concurrently with a remove
  survives,
* the checkout read is linearizable: it includes every edit that
  completed before checkout started.

Run:  python examples/shopping_cart.py
"""

import asyncio

from repro.api import AsyncStore
from repro.core import CrdtPaxosReplica
from repro.crdt import ORSet, ORSetElements
from repro.runtime.asyncio_cluster import AsyncioCluster


async def main() -> None:
    cluster = AsyncioCluster(
        lambda node_id, peers: CrdtPaxosReplica(node_id, peers, ORSet.initial()),
        n_replicas=3,
    )
    async with cluster:
        phone = AsyncStore(cluster, client="phone", home="r0").orset()
        laptop = AsyncStore(cluster, client="laptop", home="r1").orset()

        # Concurrent edits from both devices.
        await asyncio.gather(
            phone.add("espresso beans"),
            laptop.add("milk"),
            phone.add("filter papers"),
            laptop.add("espresso beans"),  # duplicate add
        )

        # The user removes the beans on the phone...
        await phone.remove("espresso beans")
        # ...then re-adds them from the laptop (observed-remove semantics
        # make this unambiguous: the re-add wins).
        await laptop.add("espresso beans")

        # Checkout happens at a third replica and must reflect every edit
        # that completed above — that is the linearizable read.
        checkout = AsyncStore(cluster, client="checkout", home="r2").orset()
        receipt = await checkout.query(ORSetElements())
        cart = sorted(receipt.value)
        print("cart at checkout:")
        for item in cart:
            print(f"  - {item}")
        print(
            f"(read took {receipt.round_trips} round trip(s), "
            f"via {receipt.learned_via})"
        )
        assert cart == ["espresso beans", "filter papers", "milk"]


if __name__ == "__main__":
    asyncio.run(main())
