#!/usr/bin/env python3
"""A replicated shopping cart on an OR-Set with a linearizable checkout.

The classic CRDT demo — a cart edited concurrently from two devices —
with the twist the paper enables: *checkout* needs a linearizable view
(you must charge for exactly what the user sees), while edits stay cheap
single-round-trip updates.

Semantics demonstrated:

* adds from both devices merge without coordination,
* OR-Set add-wins behaviour: an item re-added concurrently with a remove
  survives,
* the checkout read is linearizable: it includes every edit that
  completed before checkout started.

Run:  python examples/shopping_cart.py
"""

import asyncio

from repro.core import ClientQuery, ClientUpdate, CrdtPaxosReplica
from repro.crdt import ORSet, ORSetAdd, ORSetElements, ORSetRemove
from repro.runtime.asyncio_cluster import AsyncioCluster


async def main() -> None:
    cluster = AsyncioCluster(
        lambda node_id, peers: CrdtPaxosReplica(node_id, peers, ORSet.initial()),
        n_replicas=3,
    )
    async with cluster:
        phone = cluster.client("phone")  # talks to r0
        laptop = cluster.client("laptop")  # talks to r1

        async def phone_edit(i, op):
            return await phone.request(
                "r0", ClientUpdate(request_id=f"p{i}", op=op)
            )

        async def laptop_edit(i, op):
            return await laptop.request(
                "r1", ClientUpdate(request_id=f"l{i}", op=op)
            )

        # Concurrent edits from both devices.
        await asyncio.gather(
            phone_edit(1, ORSetAdd("espresso beans")),
            laptop_edit(1, ORSetAdd("milk")),
            phone_edit(2, ORSetAdd("filter papers")),
            laptop_edit(2, ORSetAdd("espresso beans")),  # duplicate add
        )

        # The user removes the beans on the phone...
        await phone_edit(3, ORSetRemove("espresso beans"))
        # ...then re-adds them from the laptop (observed-remove semantics
        # make this unambiguous: the re-add wins).
        await laptop_edit(3, ORSetAdd("espresso beans"))

        # Checkout happens at a third replica and must reflect every edit
        # that completed above — that is the linearizable read.
        checkout = cluster.client("checkout")
        reply = await checkout.request(
            "r2", ClientQuery(request_id="checkout", op=ORSetElements())
        )
        cart = sorted(reply.result)
        print("cart at checkout:")
        for item in cart:
            print(f"  - {item}")
        print(
            f"(read took {reply.round_trips} round trip(s), "
            f"via {reply.learned_via})"
        )
        assert cart == ["espresso beans", "filter papers", "milk"]


if __name__ == "__main__":
    asyncio.run(main())
