#!/usr/bin/env python3
"""Nemesis demo: a partition, typed fail-fast errors, and the heal.

A 3-replica keyed CRDT store runs on the deterministic simulator while a
declarative :class:`~repro.nemesis.NemesisSchedule` cuts ``r0`` away
from the connected majority ``{r1, r2}``.  Three things to watch:

1. **Service survives the fault.**  The majority side keeps a quorum, so
   clients homed there never notice the partition.
2. **Failure is fail-fast, not a hang.**  The minority replica's
   proposer has a bounded re-drive budget (``redrive_limit``); once it
   exhausts, the replica answers ``Refused(code="quorum")`` and a client
   *pinned* to it gets the typed
   :class:`~repro.errors.QuorumUnavailable` in bounded time — seconds,
   not the silent eternity a fixed retry loop would burn.
3. **Resumption is automatic.**  After ``schedule.heal_time()`` the
   links carry traffic again and the same pinned client completes
   against ``r0`` with no restarts, no reconfiguration, no operator.

Run:  python examples/nemesis_demo.py
"""

from repro.api import SimStore
from repro.core.config import CrdtPaxosConfig
from repro.core.keyspace import KeyedCrdtReplica
from repro.crdt import GCounter
from repro.errors import QuorumUnavailable
from repro.net.faults import FaultPlan
from repro.net.sim_transport import SimNetwork
from repro.nemesis import scenario
from repro.runtime.cluster import SimCluster
from repro.sim.kernel import Simulator


def main() -> None:
    config = CrdtPaxosConfig(request_timeout=0.05, redrive_limit=3)
    plan = FaultPlan()
    sim = Simulator(seed=7)
    network = SimNetwork(sim, faults=plan)
    cluster = SimCluster(
        sim,
        network,
        lambda nid, peers: KeyedCrdtReplica(
            nid, peers, lambda key: GCounter.initial(), config
        ),
        n_replicas=3,
    )

    # partition_majority: r0 alone vs {r1, r2}, from t=1.0 to t=3.0.
    schedule = scenario("partition_majority", list(cluster.addresses))
    schedule.install_sim(plan, cluster)
    print(f"installed nemesis schedule {schedule.name!r}; "
          f"heals at t={schedule.heal_time():.1f}s")

    majority = SimStore(cluster, client="alice", home="r1", timeout=0.5)
    # Bob is pinned to r0 with one attempt and a deadline comfortably
    # above r0's re-drive budget (~0.05 · (2 + 4 + 8) s) — the typed
    # refusal must arrive well before this deadline, proving fail-fast.
    minority = SimStore(
        cluster, client="bob", home="r0", timeout=1.5, max_attempts=1
    )
    hits = majority.counter("hits")
    hits.incr(5)
    print(f"t={sim.now:.2f}s  pre-fault: counter = {hits.value()}")

    sim.run(until=1.5)  # into the partition window
    receipt = hits.incr(2)
    print(f"t={sim.now:.2f}s  partitioned: majority side still commits "
          f"(via {receipt.replica})")

    try:
        minority.counter("hits").incr()
        raise SystemExit("expected QuorumUnavailable on the minority side")
    except QuorumUnavailable as exc:
        print(f"t={sim.now:.2f}s  minority side fails fast: "
              f"QuorumUnavailable ({exc})")
    assert sim.now < 3.0, "the refusal must beat the heal, not wait for it"

    sim.run(until=schedule.heal_time() + 0.5)
    print(f"t={sim.now:.2f}s  nemesis healed")

    # Seamless resumption: the very same pinned client now completes
    # against r0 — nothing was restarted or reconfigured.
    receipt = minority.counter("hits").incr()
    assert receipt.replica == "r0"
    total = hits.value(via="r0")
    print(f"t={sim.now:.2f}s  post-heal: r0 serves again, counter = {total}")
    # 5 pre-fault + 2 majority-side + 1 post-heal = 8 committed — plus
    # bob's *refused* increment, which r0 had already applied to its
    # local acceptor before giving up.  A refusal only says "not
    # promised durable"; once the partition healed, later merges carried
    # it to a quorum anyway.  Updates are at-least-once under retry, so
    # a client that re-issues a refused op must tolerate both outcomes.
    assert total == 9, total
    print("partition -> typed refusal -> heal -> automatic resumption: OK")


if __name__ == "__main__":
    main()
