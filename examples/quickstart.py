#!/usr/bin/env python3
"""Quickstart: a linearizable replicated G-Counter in ~40 lines.

Three replicas run the CRDT Paxos protocol in-process on asyncio.  Updates
complete in a single round trip without any leader; the read afterwards is
linearizable — it is guaranteed to include every increment that completed
before it was issued, no matter which replica serves it.

Run:  python examples/quickstart.py
"""

import asyncio

from repro.core import ClientQuery, ClientUpdate, CrdtPaxosReplica
from repro.crdt import GCounter, GCounterValue, Increment
from repro.runtime.asyncio_cluster import AsyncioCluster


async def main() -> None:
    cluster = AsyncioCluster(
        lambda node_id, peers: CrdtPaxosReplica(node_id, peers, GCounter.initial()),
        n_replicas=3,
    )
    async with cluster:
        client = cluster.client("quickstart")

        # Ten increments, spread over all three replicas — no leader, any
        # replica accepts updates directly.
        for i in range(10):
            replica = cluster.addresses[i % 3]
            await client.request(
                replica, ClientUpdate(request_id=f"u{i}", op=Increment())
            )
            print(f"increment #{i + 1} acknowledged by {replica}")

        # A linearizable read from yet another replica must see all ten.
        reply = await client.request(
            "r1", ClientQuery(request_id="q1", op=GCounterValue())
        )
        print(
            f"\nlinearizable read: counter = {reply.result} "
            f"(learned via {reply.learned_via!r} in {reply.round_trips} "
            f"round trip(s))"
        )
        assert reply.result == 10

        # Peek at the protocol's entire coordination state: one round per
        # replica.  No log anywhere.
        for address in cluster.addresses:
            node = cluster.node(address)
            print(
                f"{address}: payload={node.state.as_dict()} "
                f"round={node.acceptor.round}"
            )


if __name__ == "__main__":
    asyncio.run(main())
