#!/usr/bin/env python3
"""Quickstart: a linearizable replicated G-Counter in ~40 lines.

Three replicas run the CRDT Paxos protocol in-process on asyncio.  The
client surface is the ``repro.api`` Store: a typed handle per replicated
object, ``incr()`` completing in a single leaderless round trip, and a
linearizable read afterwards — guaranteed to include every increment
that completed before it was issued, no matter which replica serves it.

Run:  python examples/quickstart.py
"""

import asyncio

from repro.api import AsyncStore
from repro.core import CrdtPaxosReplica
from repro.crdt import GCounter, GCounterValue
from repro.runtime.asyncio_cluster import AsyncioCluster


async def main() -> None:
    cluster = AsyncioCluster(
        lambda node_id, peers: CrdtPaxosReplica(node_id, peers, GCounter.initial()),
        n_replicas=3,
    )
    async with cluster:
        store = AsyncStore(cluster, client="quickstart")
        counter = store.counter()

        # Ten increments, spread over all three replicas — no leader, any
        # replica accepts updates directly.
        for i in range(10):
            replica = cluster.addresses[i % 3]
            await counter.incr(via=replica)
            print(f"increment #{i + 1} acknowledged by {replica}")

        # A linearizable read from yet another replica must see all ten.
        # The generic query() returns the full receipt with the
        # protocol's diagnostics; counter.value() is the plain-int sugar.
        receipt = await counter.query(GCounterValue(), via="r1")
        print(
            f"\nlinearizable read: counter = {receipt.value} "
            f"(learned via {receipt.learned_via!r} in {receipt.round_trips} "
            f"round trip(s))"
        )
        assert receipt.value == 10

        # Peek at the protocol's entire coordination state: one round per
        # replica.  No log anywhere.
        for address in cluster.addresses:
            node = cluster.node(address)
            print(
                f"{address}: payload={node.state.as_dict()} "
                f"round={node.acceptor.round}"
            )


if __name__ == "__main__":
    asyncio.run(main())
