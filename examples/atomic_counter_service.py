#!/usr/bin/env python3
"""An atomic counter service — the use case the paper's introduction names.

"[Plain CRDTs'] usage is restricted to cases where relaxed consistency
models suffice.  For example, this prevents their use to implement atomic
counters, which are a ubiquitous primitive in distributed computing."

This example builds exactly that primitive: a rate-limiter-style atomic
counter where many concurrent workers increment and a supervisor takes
linearizable readings.  It contrasts the two consistency levels:

* an **eventually consistent** read (just query one replica's local
  payload) can under-report arbitrarily;
* the **linearizable** read through the protocol never misses a completed
  increment.

Run:  python examples/atomic_counter_service.py
"""

import asyncio

from repro.core import ClientQuery, ClientUpdate, CrdtPaxosReplica
from repro.crdt import GCounter, GCounterValue, Increment
from repro.runtime.asyncio_cluster import AsyncioCluster

WORKERS = 6
INCREMENTS_PER_WORKER = 25


async def worker(cluster: AsyncioCluster, index: int) -> None:
    """A closed-loop worker pinned to one replica."""
    client = cluster.client(f"worker-{index}")
    replica = cluster.addresses[index % len(cluster.addresses)]
    for i in range(INCREMENTS_PER_WORKER):
        await client.request(
            replica,
            ClientUpdate(request_id=f"w{index}-u{i}", op=Increment()),
        )


async def supervisor(cluster: AsyncioCluster, done: asyncio.Event) -> None:
    """Takes periodic linearizable readings while workers are busy."""
    client = cluster.client("supervisor")
    reading = 0
    last = -1
    while not done.is_set():
        reply = await client.request(
            "r0", ClientQuery(request_id=f"s-{reading}", op=GCounterValue())
        )
        assert reply.result >= last, "linearizable reads can never go backward"
        last = reply.result
        print(
            f"  supervisor reading #{reading}: {reply.result:4d} "
            f"({reply.round_trips} RT, via {reply.learned_via})"
        )
        reading += 1
        await asyncio.sleep(0.02)


async def main() -> None:
    cluster = AsyncioCluster(
        lambda node_id, peers: CrdtPaxosReplica(node_id, peers, GCounter.initial()),
        n_replicas=3,
    )
    async with cluster:
        done = asyncio.Event()
        supervisor_task = asyncio.create_task(supervisor(cluster, done))
        await asyncio.gather(
            *(worker(cluster, index) for index in range(WORKERS))
        )
        done.set()
        await supervisor_task

        expected = WORKERS * INCREMENTS_PER_WORKER

        # Eventually consistent read: one replica's local payload.  It may
        # lag (it only reflects merges that happened to reach r2 so far).
        local_only = cluster.node("r2").state.value()

        # Linearizable read through the protocol.
        client = cluster.client("final")
        reply = await client.request(
            "r2", ClientQuery(request_id="final", op=GCounterValue())
        )

        print(f"\nexpected increments : {expected}")
        print(f"local (EC) read at r2: {local_only}   <- may under-report")
        print(f"linearizable read    : {reply.result}   <- never does")
        assert reply.result == expected


if __name__ == "__main__":
    asyncio.run(main())
