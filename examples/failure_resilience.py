#!/usr/bin/env python3
"""Continuous availability through a replica crash (the Figure 4 story).

Leader-based systems go dark during leader failover: no commands commit
until a new leader is elected.  CRDT Paxos has no leader, so killing a
replica leaves the service available as long as a quorum survives — only
clients pinned to the dead replica pay a one-off failover timeout.

This example runs the deterministic simulator (so it finishes instantly
regardless of the simulated minute of traffic) and prints a side-by-side
availability timeline for CRDT Paxos and Raft with the same crash.

Run:  python examples/failure_resilience.py
"""

from repro.bench.calibration import paper_latency, paper_service_model
from repro.runtime.failures import FailureSchedule
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

DURATION = 20.0
CRASH_AT = 8.0
WINDOW = 1.0


def timeline(protocol: str) -> list[tuple[float, int]]:
    """Completed requests per second around the crash."""
    spec = WorkloadSpec(
        n_clients=24,
        read_ratio=0.9,
        duration=DURATION,
        warmup=2.0,
        client_timeout=0.4,
    )
    schedule = FailureSchedule().crash(CRASH_AT, "r2")
    result = run_workload(
        protocol,
        spec,
        seed=7,
        latency=paper_latency(),
        service_model=paper_service_model(),
        failure_schedule=schedule,
    )
    buckets: dict[int, int] = {}
    for record in result.records:
        buckets[int(record.completed_at // WINDOW)] = (
            buckets.get(int(record.completed_at // WINDOW), 0) + 1
        )
    return [
        (second * WINDOW, buckets.get(second, 0))
        for second in range(int(DURATION / WINDOW))
    ]


def main() -> None:
    print(f"replica r2 crashes at t={CRASH_AT:.0f}s; 24 clients, 90% reads\n")
    crdt = dict(timeline("crdt-paxos"))
    raft = dict(timeline("raft"))
    print(f"{'t':>4}  {'crdt-paxos req/s':>18}  {'raft req/s':>12}")
    for second in sorted(crdt):
        marker = "  <- crash" if second == CRASH_AT else ""
        print(f"{second:4.0f}  {crdt[second]:18d}  {raft[second]:12d}{marker}")

    # The leaderless protocol keeps serving through the crash window; it
    # never has a zero-throughput second after warm-up.
    after_warmup = [count for second, count in crdt.items() if second >= 2.0]
    assert all(count > 0 for count in after_warmup), "availability gap!"
    print("\nCRDT Paxos served requests in every second — no failover gap.")


if __name__ == "__main__":
    main()
