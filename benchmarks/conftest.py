"""Shared helpers for the benchmark suite.

Every figure benchmark renders its result table to stdout and to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n{table}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
