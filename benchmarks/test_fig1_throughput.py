"""Figure 1: throughput vs. clients for five read/update mixes.

Regenerates all five panels (100/95/90/50/0 % reads × four systems) and
asserts the paper's qualitative claims:

* CRDT Paxos with batching leads the read-heavy mixed panels at the
  higher client counts;
* unbatched CRDT Paxos degrades with client count under mixed load
  (read/update interference, §4.1);
* Raft's throughput is roughly mix-independent (reads go through the
  log);
* Multi-Paxos profits from reads (leases) but not from updates;
* conflict-free mixes (100 %/0 % reads) far outrun the contended 50 %
  mix for unbatched CRDT Paxos.
"""

from conftest import publish

from repro.bench.fig1 import render_fig1, run_fig1, throughput_of


def test_fig1_throughput(benchmark):
    cells = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    publish("fig1_throughput", render_fig1(cells))

    clients = sorted({cell.clients for cell in cells})
    low, mid, high = clients[0], clients[len(clients) // 2], clients[-1]

    # Batched CRDT Paxos leads read-heavy mixed panels at scale.
    for read_pct in (95, 90):
        batched = throughput_of(cells, "crdt-paxos-batching", read_pct, high)
        assert batched > throughput_of(cells, "raft", read_pct, high)
        assert batched > throughput_of(cells, "multi-paxos", read_pct, high)

    # Unbatched CRDT Paxos degrades under contention as clients grow.
    assert throughput_of(cells, "crdt-paxos", 90, high) < throughput_of(
        cells, "crdt-paxos", 90, mid
    )

    # Raft is roughly flat across mixes (same log path for reads/updates).
    raft = [throughput_of(cells, "raft", pct, mid) for pct in (100, 95, 90, 50, 0)]
    assert max(raft) / min(raft) < 2.0

    # Multi-Paxos: read-heavy beats update-only (leases vs. log writes).
    assert throughput_of(cells, "multi-paxos", 95, mid) > throughput_of(
        cells, "multi-paxos", 0, mid
    )

    # Conflict-free mixes far outrun the contended 50 % mix (paper: about
    # an order of magnitude at scale; we require a clear multiple).
    contended = throughput_of(cells, "crdt-paxos", 50, high)
    assert throughput_of(cells, "crdt-paxos", 100, high) > 2.5 * contended
    assert throughput_of(cells, "crdt-paxos", 0, high) > 2.5 * contended

    # Every cell produced a live measurement.
    assert all(cell.throughput > 0 for cell in cells if cell.clients >= low)
