"""Figure 2: 95th-percentile read/update latency at 10 % updates.

Asserts the paper's observations:

* update latency of CRDT Paxos stays low and flat (single round trip,
  no synchronization) while the system is unsaturated;
* its read tail exceeds its update tail (a fraction of reads retries
  after conflicting with updates);
* batching adds roughly its window to both paths at low concurrency but
  keeps the read tail bounded under load.
"""

from conftest import publish

from repro.bench.calibration import BATCH_WINDOW
from repro.bench.fig2 import cell_of, render_fig2, run_fig2


def test_fig2_latency(benchmark):
    cells = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    publish("fig2_latency", render_fig2(cells))

    clients = sorted({cell.clients for cell in cells})
    low, high = clients[0], clients[-1]

    # Unbatched CRDT Paxos: reads retry sometimes, updates never do.
    unbatched = cell_of(cells, "crdt-paxos", high)
    assert unbatched.update_p95_ms is not None
    assert unbatched.read_p95_ms is not None
    assert unbatched.read_p95_ms >= unbatched.update_p95_ms

    # Updates stay within a small multiple of the one-round-trip floor
    # while the cluster is far from saturation.
    floor_ms = 2 * 0.4  # two 400 µs legs
    low_load = cell_of(cells, "crdt-paxos", low)
    assert low_load.update_p95_ms is not None
    assert low_load.update_p95_ms < 6 * floor_ms

    # Batching pays its window at low concurrency...
    batched_low = cell_of(cells, "crdt-paxos-batching", low)
    assert batched_low.update_p95_ms is not None
    assert batched_low.update_p95_ms >= BATCH_WINDOW * 1e3 * 0.8
    # ...but keeps the read tail bounded under load (conflicts removed).
    batched_high = cell_of(cells, "crdt-paxos-batching", high)
    assert batched_high.read_p95_ms is not None
    assert batched_high.read_p95_ms < 4 * BATCH_WINDOW * 1e3

    # Every protocol produced latencies at every point.
    for cell in cells:
        assert cell.read_p95_ms is not None
        assert cell.update_p95_ms is not None
