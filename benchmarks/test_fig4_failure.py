"""Figure 4: 95th-percentile latency across a replica crash.

Asserts the §4.2 claims: because the protocol is leaderless, killing one
of three replicas leaves the service continuously available (every
post-crash window completes reads), with only a bounded latency increase
for the base protocol (a consistent quorum now needs the two survivors
to agree exactly).
"""

from conftest import publish

from repro.bench.fig4 import render_fig4, run_fig4


def test_fig4_node_failure(benchmark):
    series_list = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    publish("fig4_failure", render_fig4(series_list))

    for series in series_list:
        label = "batching" if series.batching else "base"

        # Continuous availability: every window after the crash (plus
        # failover margin) completed reads — no leader-election gap.
        assert series.windows_without_completions() == 0, label

        before = series.mean_read_before()
        after = series.mean_read_after()
        assert before is not None and after is not None, label

        # Latency may rise (likelier update interference with only two
        # acceptors) but must stay the same order of magnitude; clients
        # pinned to the dead replica paid one client-timeout each, which
        # the windowed p95 must absorb, not amplify.
        assert after < 10 * before + 5.0, label

    base = next(s for s in series_list if not s.batching)
    batched = next(s for s in series_list if s.batching)

    # Clients of the crashed replica failed over exactly once per client
    # (64 clients → at least the ~21 pinned to r2 timed out).
    assert base.client_timeouts >= 15
    assert batched.client_timeouts >= 15
