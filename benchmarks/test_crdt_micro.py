"""Micro-benchmarks of the CRDT substrate and protocol primitives.

These are classic pytest-benchmark measurements (many iterations of a
small operation) covering the inner loops every experiment leans on:
merge/compare of the counter used in all figures, the bigger OR-Set
payloads, and one full protocol step of the acceptor.
"""

from repro.core.acceptor import Acceptor
from repro.core.messages import Merge, Prepare
from repro.core.rounds import Round, RoundIdGenerator
from repro.crdt.gcounter import GCounter, Increment
from repro.crdt.orset import ORSet, ORSetAdd


def build_gcounter(slots: int = 3, value: int = 1000) -> GCounter:
    return GCounter.of({f"r{i}": value + i for i in range(slots)})


def build_orset(elements: int = 100) -> ORSet:
    state = ORSet.initial()
    for i in range(elements):
        state = state.with_add(f"item-{i}", f"r{i % 3}")
    return state


def test_gcounter_merge(benchmark):
    a = build_gcounter(value=1000)
    b = build_gcounter(value=2000)
    result = benchmark(a.merge, b)
    assert result.value() >= a.value()


def test_gcounter_compare(benchmark):
    a = build_gcounter(value=1000)
    b = a.merge(build_gcounter(value=2000))
    assert benchmark(a.compare, b)


def test_gcounter_increment(benchmark):
    state = build_gcounter()
    op = Increment()
    result = benchmark(op.apply, state, "r0")
    assert result.slot("r0") == state.slot("r0") + 1


def test_orset_merge(benchmark):
    a = build_orset(100)
    b = build_orset(100).with_add("extra", "r1")
    result = benchmark(a.merge, b)
    assert "extra" in result


def test_orset_add(benchmark):
    state = build_orset(100)
    op = ORSetAdd("new-item")
    result = benchmark(op.apply, state, "r2")
    assert "new-item" in result


def test_acceptor_merge_step(benchmark):
    acceptor = Acceptor(build_gcounter())
    message = Merge(request_id="m", state=build_gcounter(value=5000))
    benchmark(acceptor.handle_merge, message)


def test_acceptor_prepare_step(benchmark):
    acceptor = Acceptor(build_gcounter())
    generator = RoundIdGenerator(0)

    def prepare_once():
        message = Prepare(
            request_id="q",
            attempt=1,
            round=Round.incremental(generator.fresh()),
        )
        return acceptor.handle_prepare(message)

    reply = benchmark(prepare_once)
    assert reply is not None
