"""Micro-benchmarks of the CRDT substrate and protocol primitives.

These are classic pytest-benchmark measurements (many iterations of a
small operation) covering the inner loops every experiment leans on:
merge/compare of the counter used in all figures, the bigger OR-Set
payloads, and one full protocol step of the acceptor.

The ``TestHotPathSpeedup`` class additionally *asserts* the digest/join
short-circuits deliver ≥2× over the naive two-pass implementations on the
query fast path's dominant shape: a 5-ack quorum of structurally equal
1000-element OR-Set payloads.
"""

from repro.bench.perf_gate import build_quorum_acks, best_of_seconds
from repro.core.acceptor import Acceptor
from repro.core.messages import Merge, Prepare
from repro.core.rounds import Round, RoundIdGenerator
from repro.crdt.base import join_all
from repro.crdt.gcounter import GCounter, Increment
from repro.crdt.orset import ORSet, ORSetAdd


def build_gcounter(slots: int = 3, value: int = 1000) -> GCounter:
    return GCounter.of({f"r{i}": value + i for i in range(slots)})


def build_orset(elements: int = 100) -> ORSet:
    state = ORSet.initial()
    for i in range(elements):
        state = state.with_add(f"item-{i}", f"r{i % 3}")
    return state


def test_gcounter_merge(benchmark):
    a = build_gcounter(value=1000)
    b = build_gcounter(value=2000)
    result = benchmark(a.merge, b)
    assert result.value() >= a.value()


def test_gcounter_compare(benchmark):
    a = build_gcounter(value=1000)
    b = a.merge(build_gcounter(value=2000))
    assert benchmark(a.compare, b)


def test_gcounter_increment(benchmark):
    state = build_gcounter()
    op = Increment()
    result = benchmark(op.apply, state, "r0")
    assert result.slot("r0") == state.slot("r0") + 1


def test_orset_merge(benchmark):
    a = build_orset(100)
    b = build_orset(100).with_add("extra", "r1")
    result = benchmark(a.merge, b)
    assert "extra" in result


def test_orset_add(benchmark):
    state = build_orset(100)
    op = ORSetAdd("new-item")
    result = benchmark(op.apply, state, "r2")
    assert "new-item" in result


def test_orset_join_all_quorum(benchmark):
    acks = build_quorum_acks()
    lub = benchmark(join_all, acks)
    assert lub is acks[0]  # copy-on-write: first ack adopted untouched


def test_orset_equivalent_vs_lub(benchmark):
    acks = build_quorum_acks()
    lub = join_all(acks)

    def fast_path_check():
        return all(state.equivalent(lub) for state in acks)

    assert benchmark(fast_path_check)


def _naive_join_all(states):
    iterator = iter(states)
    result = next(iterator)
    for state in iterator:
        result = result.merge(state)
    return result


def _best_of(fn):
    return best_of_seconds(fn, repeats=5, iters=20)


class TestHotPathSpeedup:
    """Acceptance gates for the digest/join short-circuits (this PR)."""

    def test_join_all_at_least_2x_over_naive_fold(self):
        acks = build_quorum_acks()
        fast = _best_of(lambda: join_all(acks))
        naive = _best_of(lambda: _naive_join_all(acks))
        assert join_all(acks).equivalent(_naive_join_all(acks))
        assert naive / fast >= 2.0, f"join_all speedup only {naive / fast:.1f}x"

    def test_equivalent_vs_lub_at_least_2x_over_two_pass(self):
        acks = build_quorum_acks()
        lub = join_all(acks)

        def fast():
            return all(state.equivalent(lub) for state in acks)

        def naive():
            return all(
                state.compare(lub) and lub.compare(state) for state in acks
            )

        assert fast() and naive()
        speedup = _best_of(naive) / _best_of(fast)
        assert speedup >= 2.0, f"equivalent-vs-LUB speedup only {speedup:.1f}x"


def test_acceptor_merge_step(benchmark):
    acceptor = Acceptor(build_gcounter())
    message = Merge(request_id="m", state=build_gcounter(value=5000))
    benchmark(acceptor.handle_merge, message)


def test_acceptor_prepare_step(benchmark):
    acceptor = Acceptor(build_gcounter())
    generator = RoundIdGenerator(0)

    def prepare_once():
        message = Prepare(
            request_id="q",
            attempt=1,
            round=Round.incremental(generator.fresh()),
        )
        return acceptor.handle_prepare(message)

    reply = benchmark(prepare_once)
    assert reply is not None
