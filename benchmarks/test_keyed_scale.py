"""Keyed store at 100k–1M keys: memory density and timer-routing rails.

The ROADMAP's north star is a store hosting millions of independent
lattice registers.  Two things have to hold for that to be real:

* **Resident bytes/key must be flyweight.**  Acceptor-only keys (the
  common case: every key proposes at one home replica and is pure
  acceptor state at the others) must cost a small multiple of the
  payload itself — not a private copy of the whole replica machinery.
  The benchmark compares the flyweight build against ``eager=True``,
  which reconstructs the pre-flyweight shape (eager proposer, private
  per-key context and stats, eager namespace entry), and asserts the
  flyweight is at least 4× denser at 100k keys.
* **Timer routing must not degrade with keyspace size.**  The 10k-key
  events/s rail from PR 1 is re-measured at 100k keys; a 10× larger
  keyspace must stay within 20% of the 10k rail (dict lookups, no
  scans).

A third, slower check (marked ``slow``) exercises the 1M-key shape so
the store's big-O story is occasionally validated end to end; the
asserted bounds live at 100k to keep the default run fast.
"""

import pytest

from repro.bench.perf_gate import (
    build_keyed_replica,
    keyed_resident_bytes_per_key,
    keyed_timer_rate,
)

#: The ISSUE-2 acceptance bound: flyweight acceptor-only keys must be at
#: least this many times denser than eager full instances.
DENSITY_FACTOR = 4.0

#: Timer throughput at 100k keys must stay within this fraction of the
#: 10k rail (O(1) routing: a 10× keyspace must not slow the hot tick).
RAIL_TOLERANCE = 0.20


def test_flyweight_density_vs_eager_at_100k_keys():
    flyweight = keyed_resident_bytes_per_key(100_000, eager=False)
    eager = keyed_resident_bytes_per_key(100_000, eager=True)
    assert flyweight * DENSITY_FACTOR <= eager, (
        f"flyweight acceptor-only keys are only {eager / flyweight:.2f}× denser "
        f"than eager instances ({flyweight:.0f} vs {eager:.0f} B/key); "
        f"need ≥{DENSITY_FACTOR}×"
    )


def test_acceptor_only_keys_have_no_proposers():
    replica = build_keyed_replica(10_000)
    assert all(
        replica.instance(f"key-{i}").proposer is None for i in range(0, 10_000, 97)
    )


def test_timer_rail_holds_at_100k_keys():
    rail_10k = keyed_timer_rate(10_000)
    rate_100k = keyed_timer_rate(100_000)
    floor = rail_10k * (1.0 - RAIL_TOLERANCE)
    assert rate_100k >= floor, (
        f"keyed timer routing degraded with keyspace size: "
        f"{rate_100k:,.0f} events/s @100k vs {rail_10k:,.0f} @10k "
        f"(floor {floor:,.0f})"
    )


def test_eviction_caps_resident_set_at_scale():
    """With a cap, a long scan over 50k keys keeps the resident set near
    the cap and every key remains readable (frozen peeks)."""
    from repro.core.config import CrdtPaxosConfig
    from repro.core.keyspace import Keyed, KeyedCrdtReplica
    from repro.core.messages import Merge
    from repro.crdt.gcounter import GCounter, Increment

    replica = KeyedCrdtReplica(
        "r0",
        ["r0", "r1", "r2"],
        lambda key: GCounter.initial(),
        CrdtPaxosConfig(keyed_max_resident=1_000),
    )
    payload = Increment(1).apply(GCounter.initial(), "r1")
    for i in range(50_000):
        replica.on_message(
            "r1",
            Keyed(key=f"key-{i}", message=Merge(request_id=f"m{i}", state=payload)),
            float(i),
        )
    assert replica.resident_count() <= 1_100  # cap + eviction hysteresis
    assert replica.frozen_count() >= 48_000
    assert replica.evictions >= 48_000
    # Every key is still readable without rehydration churn.
    assert replica.state_of("key-0").value() == 1
    assert replica.state_of("key-49999").value() == 1


def test_million_key_zipf_spill_bounded_memory():
    """ISSUE-4 acceptance: a 1M-key Zipf workload with
    ``keyed_max_resident=512`` and the frozen-record spill tier enabled
    completes with the RAM tiers bounded by their caps — resident
    instances by the resident cap (plus the 10% eviction hysteresis),
    RAM-frozen records by ``keyed_max_frozen`` — while the rest of the
    touched keyspace lives in the spill store and every key stays
    readable."""
    from repro.core.config import CrdtPaxosConfig
    from repro.storage import InMemorySpillStore
    from repro.workload.runner import run_workload
    from repro.workload.spec import WorkloadSpec

    resident_cap, frozen_cap = 512, 1_024
    config = CrdtPaxosConfig(
        keyed_max_resident=resident_cap, keyed_max_frozen=frozen_cap
    )
    stores = {}

    def spill_factory(node_id):
        stores[node_id] = InMemorySpillStore()
        return stores[node_id]

    result = run_workload(
        "crdt-paxos",
        WorkloadSpec(
            n_clients=32,
            read_ratio=0.5,
            duration=1.0,
            warmup=0.2,
            client_timeout=2.0,
            n_keys=1_000_000,
            key_skew=1.1,
        ),
        seed=0,
        crdt_config=config,
        spill_store_factory=spill_factory,
    )
    assert result.completed_ops() > 0
    touched = result.distinct_keys_touched()
    assert touched > resident_cap + frozen_cap, (
        f"workload only touched {touched} distinct keys; the run cannot "
        "exercise the spill tier below the combined RAM caps"
    )
    for address, stats in result.keyed_stats.items():
        assert stats["resident"] <= resident_cap + resident_cap // 10 + 1, (
            f"{address}: resident {stats['resident']} exceeds the cap"
        )
        assert stats["frozen"] <= frozen_cap, (
            f"{address}: frozen {stats['frozen']} exceeds keyed_max_frozen"
        )
        assert stats["spills"] > 0, f"{address}: spill tier never engaged"
        # RAM holds at most the two capped tiers; everything else it ever
        # saw sits in the spill store.
        assert stats["resident"] + stats["frozen"] <= (
            resident_cap + resident_cap // 10 + 1 + frozen_cap
        )


def test_idle_sweep_cost_is_o_evicted_not_o_resident():
    """The heap-backed idle sweep pays per *evicted* key, not per
    resident key.  The pre-heap implementation sorted the whole resident
    set by last touch on every sweep — O(resident·log resident) even
    when nothing was idle.  Now a sweep peeks the heap front and stops
    at the first young entry: a no-op sweep costs O(1) regardless of
    keyspace size, and a sweep evicting K keys pays ~K heap pops."""
    from repro.core.config import CrdtPaxosConfig
    from repro.core.keyspace import Keyed, KeyedCrdtReplica
    from repro.core.messages import Merge
    from repro.crdt.gcounter import GCounter, Increment

    idle_s = 10.0

    def touched_replica(n_keys):
        replica = KeyedCrdtReplica(
            "r0",
            ["r0", "r1", "r2"],
            lambda key: GCounter.initial(),
            CrdtPaxosConfig(keyed_idle_evict_s=idle_s),
        )
        payload = Increment(1).apply(GCounter.initial(), "r1")
        for i in range(n_keys):
            replica.on_message(
                "r1",
                Keyed(key=f"key-{i}", message=Merge(request_id=f"m{i}", state=payload)),
                float(i) * 1e-3,
            )
        return replica

    # Nothing idle: the sweep must look at O(1) heap entries no matter
    # how many keys are resident.
    noop_costs = []
    for n_keys in (1_000, 10_000):
        replica = touched_replica(n_keys)
        before = replica.evict_scan_ops
        replica.on_timer("keyspace-sweep", (n_keys - 1) * 1e-3 + 1e-4)
        noop_costs.append(replica.evict_scan_ops - before)
    assert all(cost <= 4 for cost in noop_costs), (
        f"a no-op sweep scanned {noop_costs} heap entries; the heap front "
        "peek should stop at the first young key"
    )
    assert noop_costs[1] <= noop_costs[0] + 4, (
        f"no-op sweep cost grew with keyspace size: {noop_costs}"
    )

    # K idle keys: the sweep pays ~K pops and freezes exactly those K.
    n_keys, k = 10_000, 250
    replica = touched_replica(n_keys)  # key i last touched at i·1ms
    before_ops = replica.evict_scan_ops
    before_frozen = replica.frozen_count()
    replica.on_timer("keyspace-sweep", (k - 1) * 1e-3 + idle_s + 5e-4)
    assert replica.frozen_count() - before_frozen == k
    assert replica.evict_scan_ops - before_ops <= k + 8, (
        f"evicting {k} keys cost {replica.evict_scan_ops - before_ops} "
        "scan ops; the sweep should not look past the idle prefix"
    )


@pytest.mark.slow
def test_million_key_shape():
    """1M acceptor-only keys materialize and route timers; density stays
    in the same class as at 100k (no superlinear blow-up)."""
    bytes_100k = keyed_resident_bytes_per_key(100_000)
    bytes_1m = keyed_resident_bytes_per_key(1_000_000)
    assert bytes_1m <= bytes_100k * 1.5
