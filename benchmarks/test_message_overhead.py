"""Message-size overhead: CRDT Paxos vs. the original GLA protocol.

The quantitative form of the paper's §5/§6 argument for excluding
Falerio et al.'s protocol from the throughput evaluation: its proposals
carry an ever-growing command set, while CRDT Paxos messages are bounded
by the CRDT payload plus one round.
"""

from conftest import publish

from repro.bench.overhead import render_overhead, run_overhead


def test_message_overhead_growth(benchmark):
    points = benchmark.pedantic(
        run_overhead,
        kwargs={"segments": 6, "updates_per_segment": 50},
        rounds=1,
        iterations=1,
    )
    publish("message_overhead", render_overhead(points))

    crdt = [p.mean_bytes for p in points if p.protocol == "crdt-paxos"]
    gla = [p.mean_bytes for p in points if p.protocol == "gla"]

    # CRDT Paxos: bounded by the payload (3 slots) — flat after warm-up.
    assert max(crdt[1:]) / min(crdt[1:]) < 1.1

    # GLA: grows monotonically, severalfold over the run.
    assert all(later > earlier for earlier, later in zip(gla, gla[1:]))
    assert gla[-1] / gla[1] > 2.0

    # And the absolute gap is stark by the end.
    assert gla[-1] > 20 * crdt[-1]
