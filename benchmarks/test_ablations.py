"""Ablations of CRDT Paxos design choices (see repro.bench.ablations)."""

from conftest import publish

from repro.bench.ablations import render_ablations, run_ablations


def test_ablations(benchmark):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    publish("ablations", render_ablations(rows))
    by_name = {row.name: row for row in rows}

    base = by_name["base protocol"]
    assert base.fast_path_share is not None and base.fast_path_share > 0.3

    # Disabling the consistent-quorum fast path forces every learn
    # through the vote phase, which concurrent readers keep invalidating:
    # even at one eighth of the load the variant is crippled (§3.5's
    # "concurrent proposers can block each other indefinitely").  The
    # jittered exponential retry backoff caps how many round trips a
    # duel burns (proposers drift apart within a few rounds), so the
    # damage shows up as backoff waiting — collapsed throughput and a
    # higher read tail — rather than an unbounded round-trip count.
    no_fast = by_name["no fast path (4 clients)"]
    assert (no_fast.fast_path_share or 0.0) == 0.0
    assert no_fast.throughput < 0.25 * base.throughput
    if no_fast.mean_read_rts is not None and base.mean_read_rts is not None:
        assert no_fast.mean_read_rts > base.mean_read_rts

    # Dropping the payload from PREPAREs slows convergence: reads need at
    # least as many round trips on average.
    bare_prepare = by_name["no state in PREPARE"]
    assert bare_prepare.mean_read_rts is not None
    assert bare_prepare.mean_read_rts >= base.mean_read_rts * 0.95

    # Delta MERGEs shrink the update traffic.
    delta = by_name["delta MERGE"]
    assert delta.merge_bytes_mean is not None
    assert base.merge_bytes_mean is not None
    assert delta.merge_bytes_mean < base.merge_bytes_mean

    # GLA-Stability bookkeeping is essentially free.
    gla_stab = by_name["GLA-stability"]
    assert gla_stab.throughput > 0.5 * base.throughput

    # Wider batch windows trade latency for fewer conflicts: the 20 ms
    # batch must show a higher update p95 than the 1 ms batch.
    assert by_name["batching 20 ms"].update_p95_ms is not None
    assert by_name["batching 1 ms"].update_p95_ms is not None
    assert (
        by_name["batching 20 ms"].update_p95_ms
        > by_name["batching 1 ms"].update_p95_ms
    )
