"""Keyed-replica timer routing must be O(1) in the number of keys.

Before PR 1, :meth:`KeyedCrdtReplica.on_timer` resolved its namespace
by scanning ``repr(key)`` over every hosted key — at 10k keys that put an
O(#keys) string-formatting loop on every batch-flush tick.  The namespace
index makes it a dict lookup; this benchmark asserts the per-call cost no
longer grows with the keyspace.

Since PR 2 proposers are lazy, so the polled key's proposer is
materialized explicitly — the timer must route through the real flush
path, not the proposer-less short-circuit.
"""

import time

from repro.bench.perf_gate import build_keyed_replica
from repro.core.keyspace import KeyedCrdtReplica


def build_replica(n_keys: int, poll_key: str) -> KeyedCrdtReplica:
    return build_keyed_replica(n_keys, poll_key=poll_key)


def per_call_seconds(replica: KeyedCrdtReplica, key: str, iters: int = 2000) -> float:
    timer_key = f"{key!r}|flush"
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        for _ in range(iters):
            replica.on_timer(timer_key, 0.0)
        best = min(best, (time.perf_counter() - started) / iters)
    return best


def test_timer_routing_is_o1_in_keys():
    small = build_replica(100, "key-99")
    large = build_replica(10_000, "key-9999")
    # Route for the *last* key — the worst case of the old linear scan.
    cost_small = per_call_seconds(small, "key-99")
    cost_large = per_call_seconds(large, "key-9999")
    # O(1): a 100× larger keyspace must not make routing meaningfully
    # slower.  5× leaves generous headroom for cache effects and noise;
    # the old scan measured >50× here.
    assert cost_large <= cost_small * 5, (
        f"timer routing scales with keys: {cost_small * 1e6:.2f}µs @100 vs "
        f"{cost_large * 1e6:.2f}µs @10k"
    )


def test_timer_routing_throughput_at_10k_keys(benchmark):
    replica = build_replica(10_000, "key-9999")
    timer_key = f"{'key-9999'!r}|flush"
    benchmark(replica.on_timer, timer_key, 0.0)
