"""Figure 3: CDF of round trips needed to process reads.

Checks the paper's headline claim directly: with 5 ms batching, "more
than 97 % of reads can be processed within two round trips" — and that
without batching the distribution has the long retry tail the figure's
top panel shows.
"""

from conftest import publish

from repro.bench.fig3 import curve_of, render_fig3, run_fig3


def test_fig3_round_trips(benchmark):
    curves = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    publish("fig3_roundtrips", render_fig3(curves))

    clients = sorted({curve.clients for curve in curves})
    high = clients[-1]

    # The headline claim (§1, §4.1): >97 % of reads within two round
    # trips under batching, even at the highest contention level run.
    for n in clients:
        batched = curve_of(curves, batching=True, clients=n)
        assert batched.reads > 100
        assert batched.pct_within(2) > 97.0

    # Without batching, contention stretches the tail: strictly worse
    # 2-RT coverage, and some reads need many retries at high client
    # counts (the paper's x-axis reaches 14).
    unbatched = curve_of(curves, batching=False, clients=high)
    batched = curve_of(curves, batching=True, clients=high)
    assert unbatched.pct_within(2) < batched.pct_within(2)
    assert unbatched.pct_within(2) < 90.0
    assert unbatched.pct_within(6) < 100.0  # a real tail exists

    # CDFs are monotone.  Batched curves saturate at ~100 % within the
    # plotted range; the unbatched high-contention curve may still have a
    # small tail beyond 15 round trips (the paper's top panel likewise
    # asymptotes below 100 within its 14-RT axis).
    for curve in curves:
        assert list(curve.cumulative_pct) == sorted(curve.cumulative_pct)
        assert curve.cumulative_pct[-1] >= 85.0
        if curve.batching:
            assert curve.cumulative_pct[-1] >= 99.0
