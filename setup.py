"""Legacy setup shim.

The modern PEP 517 editable path requires the ``wheel`` package, which is
not available in offline environments; this shim lets ``pip install -e .``
fall back to the classic setuptools develop install.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
