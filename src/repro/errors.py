"""Shared exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TransportError(ReproError):
    """A message could not be routed, e.g. to an unregistered address."""


class ProtocolError(ReproError):
    """A replication protocol observed a message it cannot have produced.

    This indicates a bug in the protocol implementation (or a corrupted
    test harness), never a legal run-time condition: the protocols in this
    package tolerate loss, duplication and reordering by design.
    """


class QuorumError(ReproError):
    """A quorum system was queried with processes it does not know."""


class RequestTimeout(ReproError):
    """A client request did not complete within its deadline."""


class NotLeader(ReproError):
    """A leader-based protocol rejected a request at a non-leader node."""


class QuorumUnavailable(RequestTimeout):
    """A replica gave up on a request because no quorum is reachable.

    Raised by the :class:`~repro.api.store.Store` frontends when a replica
    answers with a ``Refused(code="quorum")`` — the proposer exhausted its
    bounded re-drive budget without assembling a quorum, so failing over to
    another replica of the *same* group is pointless.  Subclasses
    :class:`RequestTimeout` so existing "the request did not complete"
    handlers keep working; new code can catch it for the sharper diagnosis.
    """


class StorageUnavailable(RequestTimeout):
    """A durable write could not be persisted, so its ack was withheld.

    Raised by the spill-store layer when a ``write_through`` persist fails
    (injected or real IO fault) and surfaced by the ``Store`` frontends
    when every attempted replica answered ``Refused(code="storage")``.
    The protocol state itself is fine — retry once the store heals.
    """


class WrongGroupError(ReproError):
    """A sharded replica refused a command: its group does not own the key.

    Carries the refusing replica's forwarding hint — the highest routing
    ``epoch`` it can attest for the key and the ``group`` it believes
    owns it — so a stale client can fold the hint into its routing
    snapshot and retry at the right group.  Deliberately *not* a
    :class:`RequestTimeout`: the operation was answered promptly and was
    never attempted, it just knocked on the wrong door.
    """

    def __init__(self, message: str, *, epoch: int = 0, group: str = "") -> None:
        super().__init__(message)
        self.epoch = epoch
        self.group = group


class SerializationError(ReproError):
    """A durable record could not be encoded or decoded.

    Raised by :mod:`repro.crdt.serialize` for malformed blobs and by the
    spill stores when a record's framing is unusable.
    """


class SpillCorruption(SerializationError):
    """A spill-store segment failed its integrity checks.

    Distinguished from plain :class:`SerializationError` so recovery code
    can tell "this blob is not ours" from "our segment file is damaged".
    """


class StaleRecoveryError(ReproError):
    """A spill store was opened for recovery without a clean-shutdown marker.

    The store's records may predate promises the dead process made after
    its last durable write (a hard kill), so serving them directly could
    break linearizability.  Recover with ``rejoin=True`` (refreshing each
    key from a read quorum before first use) or run under
    ``durability="write_through"`` where every ack is persisted first.
    """


class HistoryViolation(ReproError):
    """A recorded operation history violates a correctness condition.

    Raised by :mod:`repro.checker` with a human-readable explanation of the
    violated condition (Validity, Stability, Consistency, Update Stability,
    Update Visibility or GLA-Stability).
    """
