"""Grow-only set.

Payloads are finite sets ordered by inclusion; ``merge`` is set union.
Elements must be hashable; for wire accounting they are sized through
:func:`repro.net.message.wire_size`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import wire_size as _wire_size


@dataclass(frozen=True, slots=True)
class GSet(StateCRDT):
    """Immutable grow-only set payload."""

    elements: frozenset = frozenset()

    @staticmethod
    def initial() -> "GSet":
        return GSet()

    @classmethod
    def of(cls, *elements: Hashable) -> "GSet":
        return cls(frozenset(elements))

    def added(self, element: Hashable) -> "GSet":
        if element in self.elements:
            return self
        return GSet(self.elements | {element})

    def __contains__(self, element: Hashable) -> bool:
        return element in self.elements

    def __len__(self) -> int:
        return len(self.elements)

    # ------------------------------------------------------------------
    def merge(self, other: "GSet") -> "GSet":
        if other is self:
            return self
        return GSet(self.elements | other.elements)

    def compare(self, other: "GSet") -> bool:
        if other is self:
            return True
        return self.elements <= other.elements

    def wire_size(self) -> int:
        return 4 + sum(_wire_size(element) for element in self.elements)


class GSetAdd(UpdateOp):
    """Insert an element (idempotent)."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: GSet, replica_id: str) -> GSet:
        return state.added(self.element)

    def delta(self, before: GSet, after: GSet, replica_id: str) -> GSet:
        return GSet(frozenset({self.element}))

    def wire_size(self) -> int:
        return 8 + _wire_size(self.element)

    def __repr__(self) -> str:
        return f"GSetAdd({self.element!r})"


class Contains(QueryOp):
    """Membership test."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: GSet) -> bool:
        return self.element in state

    def __repr__(self) -> str:
        return f"Contains({self.element!r})"


class Elements(QueryOp):
    """The full membership as a frozenset."""

    def apply(self, state: GSet) -> frozenset:
        return state.elements

    def __repr__(self) -> str:
        return "Elements()"
