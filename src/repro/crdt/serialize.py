"""Durable encoding of the acceptor's logless state.

The paper's acceptor keeps *all* durable state in the pair
``(payload, round)`` (§3.3) — extended by the §3.4 learned maximum when
GLA-Stability is on.  This module turns that triple into bytes and back,
for the :mod:`repro.storage` spill tier and any future snapshot
transport.

Encoding is a framed pickle: payloads are arbitrary immutable Python
value objects (set elements, map keys and register values are
caller-chosen hashables), so a structural per-type codec would re-invent
pickle badly.  What the frame adds on top is what pickle lacks:

* a **magic + version prefix** so a foreign or future-format blob is
  rejected before any unpickling happens;
* strict **shape validation** after decoding — the result must be a
  ``(StateCRDT, Round, StateCRDT | None)`` triple or
  :class:`SerializationError` is raised (a spill store must never hand
  the protocol a payload of the wrong type);
* cache hygiene: the hot-path identity caches (``_crdt_digest``,
  ``_crdt_stamp``, ``_crdt_eq_stamps``) are process-local and are
  stripped by :meth:`repro.crdt.base.StateCRDT.__getstate__`, so a
  decoded payload re-derives them lazily instead of trusting stale ones.

Integrity (checksums, truncation detection) is deliberately *not* this
module's job: the storage layer frames every record with a CRC over the
encoded bytes, so corruption is caught before :func:`decode_frozen` ever
runs — decoding only validates shape, not bit-rot.
"""

from __future__ import annotations

import pickle
from typing import Any, Hashable

from repro.core.rounds import Round
from repro.crdt.base import StateCRDT
from repro.errors import SerializationError

#: Format prefix: magic (2 bytes) + version (1 byte).
_MAGIC = b"Cf"
_VERSION = 1
_PREFIX = _MAGIC + bytes([_VERSION])


def encode_frozen(
    state: StateCRDT,
    round_: Round,
    learned_max: StateCRDT | None = None,
) -> bytes:
    """Encode a frozen record's ``(payload, round, learned_max)`` triple."""
    if not isinstance(state, StateCRDT):
        raise SerializationError(
            f"frozen payload must be a StateCRDT, got {type(state).__name__}"
        )
    if not isinstance(round_, Round):
        raise SerializationError(
            f"frozen round must be a Round, got {type(round_).__name__}"
        )
    if learned_max is not None and not isinstance(learned_max, StateCRDT):
        raise SerializationError(
            "frozen learned_max must be a StateCRDT or None, got "
            f"{type(learned_max).__name__}"
        )
    return _PREFIX + pickle.dumps(
        (state, round_, learned_max), protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_frozen(data: bytes) -> tuple[StateCRDT, Round, StateCRDT | None]:
    """Decode :func:`encode_frozen` output; raises on any malformed blob."""
    if len(data) < len(_PREFIX) or data[: len(_MAGIC)] != _MAGIC:
        raise SerializationError("not a frozen-record blob (bad magic)")
    version = data[len(_MAGIC)]
    if version != _VERSION:
        raise SerializationError(
            f"unsupported frozen-record version {version} (expected {_VERSION})"
        )
    try:
        decoded = pickle.loads(data[len(_PREFIX) :])
    except Exception as exc:  # unpickling failures are data errors here
        raise SerializationError(f"undecodable frozen record: {exc!r}") from exc
    if not (isinstance(decoded, tuple) and len(decoded) == 3):
        raise SerializationError(
            f"frozen record must decode to a triple, got {type(decoded).__name__}"
        )
    state, round_, learned_max = decoded
    if not isinstance(state, StateCRDT):
        raise SerializationError(
            f"decoded payload is not a StateCRDT: {type(state).__name__}"
        )
    if not isinstance(round_, Round):
        raise SerializationError(
            f"decoded round is not a Round: {type(round_).__name__}"
        )
    if learned_max is not None and not isinstance(learned_max, StateCRDT):
        raise SerializationError(
            f"decoded learned_max is not a StateCRDT: {type(learned_max).__name__}"
        )
    return state, round_, learned_max


def encode_key(key: Hashable) -> bytes:
    """Encode a store key (any hashable the keyed deployment accepts).

    Delegates to the wire codec's canonical key encoding
    (:mod:`repro.wire.keys`): the same bytes the router hashes for ring
    placement index spill records, so a recovered process looks keys up
    by exactly what it persisted regardless of hash seed.  Imported
    lazily — this module sits inside the protocol-package init chain the
    wire registry closes over, so the binding resolves at first use,
    after every package is fully loaded.
    """
    from repro.wire.keys import encode_key as wire_encode_key

    return wire_encode_key(key)


def decode_key(data: bytes) -> Any:
    from repro.wire.keys import decode_key as wire_decode_key

    return wire_decode_key(data)
