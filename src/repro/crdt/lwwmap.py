"""Last-writer-wins map with tombstoned removal.

Each key independently behaves like an LWW register whose stamps are
``(timestamp, sequence, replica)`` triples; a removal is a tombstone write
under the same stamp discipline, so adds and removes of one key resolve by
recency while distinct keys never interact.  The payload order is the
product order over keys, with an absent key at the bottom of its component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import wire_size as _wire_size

Stamp = tuple[float, int, str]

_INITIAL_STAMP: Stamp = (float("-inf"), 0, "")

#: Sentinel stored as the value of a removed key.
TOMBSTONE = "\x00__tombstone__"


@dataclass(frozen=True, slots=True)
class LWWMap(StateCRDT):
    """Immutable LWW-Map payload.

    ``entries`` maps key → ``(value, stamp)``; a value equal to
    :data:`TOMBSTONE` marks a removed key.
    """

    entries: tuple[tuple[Hashable, tuple[Any, Stamp]], ...] = ()

    @staticmethod
    def initial() -> "LWWMap":
        return LWWMap()

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[Hashable, tuple[Any, Stamp]]:
        return dict(self.entries)

    def get(self, key: Hashable) -> Any:
        """Current value for ``key`` or None if absent/removed."""
        for candidate, (value, _) in self.entries:
            if candidate == key:
                return None if value == TOMBSTONE else value
        return None

    def __contains__(self, key: Hashable) -> bool:
        for candidate, (value, _) in self.entries:
            if candidate == key:
                return value != TOMBSTONE
        return False

    def live_keys(self) -> frozenset:
        return frozenset(
            key for key, (value, _) in self.entries if value != TOMBSTONE
        )

    def _stamp_of(self, key: Hashable) -> Stamp:
        for candidate, (_, stamp) in self.entries:
            if candidate == key:
                return stamp
        return _INITIAL_STAMP

    def with_write(
        self, key: Hashable, value: Any, timestamp: float, replica_id: str
    ) -> "LWWMap":
        current = self._stamp_of(key)
        new_stamp: Stamp = (timestamp, current[1] + 1, replica_id)
        if new_stamp <= current:
            return self
        entries = self.as_dict()
        entries[key] = (value, new_stamp)
        return LWWMap(tuple(sorted(entries.items(), key=lambda kv: repr(kv[0]))))

    # ------------------------------------------------------------------
    def merge(self, other: "LWWMap") -> "LWWMap":
        if other is self:
            return self
        merged = self.as_dict()
        for key, (value, stamp) in other.entries:
            if key not in merged or merged[key][1] < stamp:
                merged[key] = (value, stamp)
        return LWWMap(tuple(sorted(merged.items(), key=lambda kv: repr(kv[0]))))

    def compare(self, other: "LWWMap") -> bool:
        if other is self:
            return True
        theirs = other.as_dict()
        for key, (_, stamp) in self.entries:
            if key not in theirs or theirs[key][1] < stamp:
                return False
        return True

    def wire_size(self) -> int:
        return 8 + sum(
            _wire_size(key) + _wire_size(value) + 24
            for key, (value, _) in self.entries
        )


class LWWMapPut(UpdateOp):
    """Write ``key = value`` with a caller-provided timestamp."""

    __slots__ = ("key", "value", "timestamp")

    def __init__(self, key: Hashable, value: Any, timestamp: float) -> None:
        if value == TOMBSTONE:
            raise ValueError("cannot store the tombstone sentinel as a value")
        self.key = key
        self.value = value
        self.timestamp = timestamp

    def apply(self, state: LWWMap, replica_id: str) -> LWWMap:
        return state.with_write(self.key, self.value, self.timestamp, replica_id)

    def wire_size(self) -> int:
        return 16 + _wire_size(self.key) + _wire_size(self.value)

    def __repr__(self) -> str:
        return f"LWWMapPut({self.key!r}, {self.value!r}, ts={self.timestamp})"


class LWWMapRemove(UpdateOp):
    """Remove ``key`` (a tombstone write; later puts can resurrect it)."""

    __slots__ = ("key", "timestamp")

    def __init__(self, key: Hashable, timestamp: float) -> None:
        self.key = key
        self.timestamp = timestamp

    def apply(self, state: LWWMap, replica_id: str) -> LWWMap:
        return state.with_write(self.key, TOMBSTONE, self.timestamp, replica_id)

    def wire_size(self) -> int:
        return 16 + _wire_size(self.key)

    def __repr__(self) -> str:
        return f"LWWMapRemove({self.key!r}, ts={self.timestamp})"


class LWWMapGet(QueryOp):
    """Read one key's value (None if absent or removed)."""

    __slots__ = ("key",)

    def __init__(self, key: Hashable) -> None:
        self.key = key

    def apply(self, state: LWWMap) -> Any:
        return state.get(self.key)

    def __repr__(self) -> str:
        return f"LWWMapGet({self.key!r})"


class LWWMapKeys(QueryOp):
    """All live (non-removed) keys."""

    def apply(self, state: LWWMap) -> frozenset:
        return state.live_keys()

    def __repr__(self) -> str:
        return "LWWMapKeys()"
