"""Foundations of the state-based CRDT model (§2.2, Definitions 1–3).

A state-based CRDT payload lives in a join semilattice: a set with a
partial order ``⊑`` (here :meth:`StateCRDT.compare`) and a least upper
bound ``⊔`` for every pair (here :meth:`StateCRDT.merge`).  All payloads in
this package are immutable value objects; ``merge`` returns a new payload.

Updates and queries are first-class objects (:class:`UpdateOp`,
:class:`QueryOp`) because the replication protocols ship them to replicas:
a client submits ``f_u ∈ U`` or ``f_q ∈ Q`` and the receiving replica
applies it to its local payload.  ``UpdateOp.apply`` receives the id of the
applying replica — exactly like ``my_replica_id()`` in Algorithm 1 of the
paper, which a G-Counter increment needs to pick its slot.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Iterable, TypeVar

S = TypeVar("S", bound="StateCRDT")

#: Process-wide monotonic stamp source (see :meth:`StateCRDT.version_stamp`).
_next_stamp = itertools.count(1).__next__


class StateCRDT(ABC):
    """A payload state in a join semilattice.

    Subclasses must guarantee the semilattice laws, which the property-based
    test-suite checks for every type in the package:

    * ``merge`` is idempotent, commutative and associative;
    * ``compare`` is a partial order and ``a.compare(a.merge(b))`` holds
      (the LUB is an upper bound);
    * ``merge(a, b)`` is the *least* upper bound: it is ``⊑`` any other
      common upper bound.

    Payloads are immutable value objects, which makes two cheap identity
    facts available to the hot paths (quorum evaluation, LUB folding):

    * :meth:`digest` — a cached structural digest.  Equal payloads always
      have equal digests, so an unequal digest proves two payloads differ
      structurally in O(1) (after the first computation); an equal digest
      plus ``==`` proves equivalence without two ``compare`` passes.
    * :meth:`version_stamp` — a process-wide monotonic identity stamp.
      Unlike ``id()`` it is never reused after garbage collection, so
      accumulators may memoize "already folded this payload object" by
      stamp.  (Named ``version_stamp`` rather than ``stamp`` so payloads
      with a ``stamp`` field, e.g. the LWW register, do not shadow it.)
    """

    @abstractmethod
    def merge(self: S, other: S) -> S:
        """Return the least upper bound ``self ⊔ other`` (pure)."""

    @abstractmethod
    def compare(self: S, other: S) -> bool:
        """Return True iff ``self ⊑ other`` in the lattice order."""

    @abstractmethod
    def wire_size(self) -> int:
        """Approximate serialized size in bytes, for traffic accounting."""

    # ------------------------------------------------------------------
    # Identity helpers (hot-path short-circuits)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Strip the identity caches when (de)serializing or deep-copying.

        Digests are built on ``hash()`` (salted per process) and version
        stamps are process-local counters; shipping either to another
        process would poison its caches.  No transport serializes payloads
        today — this keeps that future-safe.
        """
        state = super().__getstate__()
        if isinstance(state, tuple) and state and isinstance(state[0], dict):
            filtered = {
                key: value
                for key, value in state[0].items()
                if not key.startswith("_crdt_")
            }
            return (filtered or None, *state[1:])
        return state

    def digest(self) -> int:
        """A cached structural digest of this (immutable) payload.

        Computed once per object; payloads that are ``==`` have equal
        digests.  The converse does not hold (hashes collide), so digest
        equality is always confirmed with ``==`` before it is trusted, and
        digest *inequality* is never taken to mean non-equivalence — a
        lattice may hold equivalent-but-unequal payloads (e.g. a zero
        counter slot), for which :meth:`equivalent` still runs the full
        two-pass ``compare``.
        """
        cached = self.__dict__.get("_crdt_digest")
        if cached is None:
            try:
                cached = hash(self)
            except TypeError:
                # Unhashable payloads fall back to an identity digest:
                # fast-path equality then only triggers on the same object.
                cached = self.version_stamp()
            object.__setattr__(self, "_crdt_digest", cached)
        return cached

    def version_stamp(self) -> int:
        """A monotonic identity stamp, assigned lazily on first access.

        Distinct payload objects always carry distinct stamps, and stamps
        strictly increase in assignment order — a GC-safe substitute for
        ``id()`` in memoization keys (:class:`MergeAccumulator`).
        """
        cached = self.__dict__.get("_crdt_stamp")
        if cached is None:
            cached = _next_stamp()
            object.__setattr__(self, "_crdt_stamp", cached)
        return cached

    def same_payload(self: S, other: S) -> bool:
        """True for the same object or structurally equal payloads.

        The digest check makes the common negative case O(1) once both
        digests are cached; a positive digest match is confirmed by ``==``.
        Because payloads are immutable, a confirmed equality is memoized
        under the partner's :meth:`version_stamp` (bounded per object), so
        re-comparing the same pair — every ack of a read-heavy workload
        against an unchanged acceptor state — is O(1) after the first hit.
        """
        if self is other:
            return True
        if type(self) is not type(other) or self.digest() != other.digest():
            return False
        known_equal = self.__dict__.get("_crdt_eq_stamps")
        other_stamp = other.version_stamp()
        if known_equal is not None and other_stamp in known_equal:
            return True
        if self != other:
            return False
        for payload, partner_stamp in (
            (self, other_stamp),
            (other, self.version_stamp()),
        ):
            cache = payload.__dict__.get("_crdt_eq_stamps")
            if cache is None:
                cache = set()
                object.__setattr__(payload, "_crdt_eq_stamps", cache)
            if len(cache) < 64:  # bound the memo on pathological churn
                cache.add(partner_stamp)
        return True

    def equivalent(self: S, other: S) -> bool:
        """Payload equivalence: ``self ⊑ other`` and ``other ⊑ self``.

        Two equivalent payloads answer every query identically (§2.2).
        Identity and structural equality short-circuit the two ``compare``
        passes — the dominant case on the query fast path, where a quorum
        of acceptors acks with identical payloads.
        """
        if self.same_payload(other):
            return True
        return self.compare(other) and other.compare(self)

    def comparable(self: S, other: S) -> bool:
        """True iff the two payloads are ordered either way."""
        return self.compare(other) or other.compare(self)

    def join(self: S, other: S) -> S:
        """``merge`` with copy-avoiding short-circuits.

        Returns ``self`` (or ``other``) unchanged whenever one side already
        subsumes the other, so folding a quorum of equal payloads performs
        no allocation at all.  Semantically identical to :meth:`merge`.
        """
        if other is self:
            return self
        if self.same_payload(other):
            return self
        if other.compare(self):
            return self
        if self.compare(other):
            return other
        return self.merge(other)


def equivalent(a: StateCRDT, b: StateCRDT) -> bool:
    """Module-level alias of :meth:`StateCRDT.equivalent`."""
    return a.equivalent(b)


def join_all(states: Iterable[S], *, source: str = "join_all") -> S:
    """Fold the LUB over a non-empty iterable of payloads.

    Uses :meth:`StateCRDT.join`, so already-subsumed payloads are skipped
    instead of re-copied — a fold over n equal payloads returns the first
    object untouched.  ``source`` names the caller's iterable in the error
    raised for empty input.
    """
    result: S | None = None
    for state in states:
        result = state if result is None else result.join(state)
    if result is None:
        raise ValueError(
            f"{source} requires at least one state, but the iterable was empty"
        )
    return result


class MergeAccumulator:
    """Copy-on-write builder for the LUB of a stream of payloads.

    Used on the query fast path (one fold per PREPARE ack) and for delta
    folding in update batches.  Three properties make it cheaper than a
    naive ``merge`` chain:

    * the first payload is adopted as-is (no copy);
    * each further payload is folded with :meth:`StateCRDT.join`, so a
      payload the current value already subsumes costs one ``compare``
      pass and zero allocations;
    * payload objects already folded once (tracked by their GC-safe
      :meth:`StateCRDT.version_stamp`) are skipped outright — duplicated acks are
      free.  This is sound because the accumulated value only ever grows.
    """

    __slots__ = ("_value", "_folded")

    def __init__(self, initial: StateCRDT | None = None) -> None:
        self._value: StateCRDT | None = None
        self._folded: set[int] = set()
        if initial is not None:
            self.add(initial)

    @property
    def value(self) -> StateCRDT:
        if self._value is None:
            raise ValueError("MergeAccumulator holds no payload yet")
        return self._value

    @property
    def empty(self) -> bool:
        return self._value is None

    def add(self, state: StateCRDT) -> StateCRDT:
        """Fold one payload in; returns the accumulated LUB so far."""
        value = self._value
        if value is None:
            self._value = state
            self._folded.add(state.version_stamp())
            return state
        if state is value:
            return value
        mark = state.version_stamp()
        if mark in self._folded:
            return value
        self._folded.add(mark)
        self._value = value.join(state)
        return self._value

    def add_all(self, states: Iterable[StateCRDT]) -> StateCRDT:
        for state in states:
            self.add(state)
        return self.value


class UpdateOp(ABC):
    """A monotonically non-decreasing update function ``f_u ∈ U``.

    ``apply`` must be *inflationary*: ``state ⊑ apply(state, replica)`` for
    every state — Definition 3 of the paper.  It must also be deterministic
    in ``(state, replica_id)`` so that re-applying at the same point in a
    replica's serial history yields the same payload.
    """

    @abstractmethod
    def apply(self, state: Any, replica_id: str) -> Any:
        """Return the new payload after applying this update at a replica."""

    def delta(self, before: Any, after: Any, replica_id: str) -> Any:
        """A (possibly much smaller) payload carrying just this update.

        Must satisfy ``before ⊔ delta ≡ after`` and, when merged into *any*
        other payload, must make that payload include this update.  The
        default is the full ``after`` state, which trivially satisfies
        both; delta-capable ops override this with a minimal fragment
        (the delta-mutation idea of Almeida et al., referenced in §5).
        """
        return after

    def wire_size(self) -> int:
        return 16


class QueryOp(ABC):
    """A side-effect-free query function ``f_q ∈ Q``."""

    @abstractmethod
    def apply(self, state: Any) -> Any:
        """Evaluate the query against a payload state."""

    def wire_size(self) -> int:
        return 8


class IdentityQuery(QueryOp):
    """Returns the full learned payload state.

    Used by the correctness checker, which needs the *state* a query
    learned (not just a derived value) to verify the lattice conditions of
    §3.1 on recorded histories.
    """

    def apply(self, state: Any) -> Any:
        return state

    def __repr__(self) -> str:
        return "IdentityQuery()"
