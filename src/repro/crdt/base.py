"""Foundations of the state-based CRDT model (§2.2, Definitions 1–3).

A state-based CRDT payload lives in a join semilattice: a set with a
partial order ``⊑`` (here :meth:`StateCRDT.compare`) and a least upper
bound ``⊔`` for every pair (here :meth:`StateCRDT.merge`).  All payloads in
this package are immutable value objects; ``merge`` returns a new payload.

Updates and queries are first-class objects (:class:`UpdateOp`,
:class:`QueryOp`) because the replication protocols ship them to replicas:
a client submits ``f_u ∈ U`` or ``f_q ∈ Q`` and the receiving replica
applies it to its local payload.  ``UpdateOp.apply`` receives the id of the
applying replica — exactly like ``my_replica_id()`` in Algorithm 1 of the
paper, which a G-Counter increment needs to pick its slot.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, TypeVar

S = TypeVar("S", bound="StateCRDT")


class StateCRDT(ABC):
    """A payload state in a join semilattice.

    Subclasses must guarantee the semilattice laws, which the property-based
    test-suite checks for every type in the package:

    * ``merge`` is idempotent, commutative and associative;
    * ``compare`` is a partial order and ``a.compare(a.merge(b))`` holds
      (the LUB is an upper bound);
    * ``merge(a, b)`` is the *least* upper bound: it is ``⊑`` any other
      common upper bound.
    """

    @abstractmethod
    def merge(self: S, other: S) -> S:
        """Return the least upper bound ``self ⊔ other`` (pure)."""

    @abstractmethod
    def compare(self: S, other: S) -> bool:
        """Return True iff ``self ⊑ other`` in the lattice order."""

    @abstractmethod
    def wire_size(self) -> int:
        """Approximate serialized size in bytes, for traffic accounting."""

    def equivalent(self: S, other: S) -> bool:
        """Payload equivalence: ``self ⊑ other`` and ``other ⊑ self``.

        Two equivalent payloads answer every query identically (§2.2).
        """
        return self.compare(other) and other.compare(self)

    def comparable(self: S, other: S) -> bool:
        """True iff the two payloads are ordered either way."""
        return self.compare(other) or other.compare(self)


def equivalent(a: StateCRDT, b: StateCRDT) -> bool:
    """Module-level alias of :meth:`StateCRDT.equivalent`."""
    return a.equivalent(b)


def join_all(states: Iterable[S]) -> S:
    """Fold ``merge`` over a non-empty iterable of payloads."""
    iterator = iter(states)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("join_all requires at least one state") from None
    for state in iterator:
        result = result.merge(state)
    return result


class UpdateOp(ABC):
    """A monotonically non-decreasing update function ``f_u ∈ U``.

    ``apply`` must be *inflationary*: ``state ⊑ apply(state, replica)`` for
    every state — Definition 3 of the paper.  It must also be deterministic
    in ``(state, replica_id)`` so that re-applying at the same point in a
    replica's serial history yields the same payload.
    """

    @abstractmethod
    def apply(self, state: Any, replica_id: str) -> Any:
        """Return the new payload after applying this update at a replica."""

    def delta(self, before: Any, after: Any, replica_id: str) -> Any:
        """A (possibly much smaller) payload carrying just this update.

        Must satisfy ``before ⊔ delta ≡ after`` and, when merged into *any*
        other payload, must make that payload include this update.  The
        default is the full ``after`` state, which trivially satisfies
        both; delta-capable ops override this with a minimal fragment
        (the delta-mutation idea of Almeida et al., referenced in §5).
        """
        return after

    def wire_size(self) -> int:
        return 16


class QueryOp(ABC):
    """A side-effect-free query function ``f_q ∈ Q``."""

    @abstractmethod
    def apply(self, state: Any) -> Any:
        """Evaluate the query against a payload state."""

    def wire_size(self) -> int:
        return 8


class IdentityQuery(QueryOp):
    """Returns the full learned payload state.

    Used by the correctness checker, which needs the *state* a query
    learned (not just a derived value) to verify the lattice conditions of
    §3.1 on recorded histories.
    """

    def apply(self, state: Any) -> Any:
        return state

    def __repr__(self) -> str:
        return "IdentityQuery()"
