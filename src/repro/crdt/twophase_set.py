"""Two-phase set: add-once, remove-once, remove wins.

The payload is a pair of grow-only sets ``(added, removed)`` ordered
componentwise by inclusion.  An element is a member iff it has been added
and not removed; once removed it can never return (the tombstone persists).
This is the simplest set CRDT with removal, at the cost of tombstone
accumulation — the "state inflation" issue the paper's related-work section
points at garbage-collection research for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import wire_size as _wire_size


@dataclass(frozen=True, slots=True)
class TwoPhaseSet(StateCRDT):
    """Immutable 2P-Set payload."""

    added: frozenset = frozenset()
    removed: frozenset = frozenset()

    @staticmethod
    def initial() -> "TwoPhaseSet":
        return TwoPhaseSet()

    def live_elements(self) -> frozenset:
        return self.added - self.removed

    def __contains__(self, element: Hashable) -> bool:
        return element in self.added and element not in self.removed

    def with_added(self, element: Hashable) -> "TwoPhaseSet":
        if element in self.added:
            return self
        return TwoPhaseSet(self.added | {element}, self.removed)

    def with_removed(self, element: Hashable) -> "TwoPhaseSet":
        """Tombstone an element.

        Removing an element that was never added is recorded as well: the
        tombstone then suppresses any concurrent or later add, keeping the
        remove-wins semantics deterministic.
        """
        if element in self.removed:
            return self
        return TwoPhaseSet(self.added, self.removed | {element})

    # ------------------------------------------------------------------
    def merge(self, other: "TwoPhaseSet") -> "TwoPhaseSet":
        if other is self:
            return self
        return TwoPhaseSet(self.added | other.added, self.removed | other.removed)

    def compare(self, other: "TwoPhaseSet") -> bool:
        if other is self:
            return True
        return self.added <= other.added and self.removed <= other.removed

    def wire_size(self) -> int:
        return (
            8
            + sum(_wire_size(element) for element in self.added)
            + sum(_wire_size(element) for element in self.removed)
        )


class TwoPhaseAdd(UpdateOp):
    """Insert an element (ineffective if it was ever removed)."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: TwoPhaseSet, replica_id: str) -> TwoPhaseSet:
        return state.with_added(self.element)

    def wire_size(self) -> int:
        return 8 + _wire_size(self.element)

    def __repr__(self) -> str:
        return f"TwoPhaseAdd({self.element!r})"


class TwoPhaseRemove(UpdateOp):
    """Tombstone an element permanently."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: TwoPhaseSet, replica_id: str) -> TwoPhaseSet:
        return state.with_removed(self.element)

    def wire_size(self) -> int:
        return 8 + _wire_size(self.element)

    def __repr__(self) -> str:
        return f"TwoPhaseRemove({self.element!r})"


class TwoPhaseContains(QueryOp):
    """Membership test against the live (non-tombstoned) elements."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: TwoPhaseSet) -> bool:
        return self.element in state

    def __repr__(self) -> str:
        return f"TwoPhaseContains({self.element!r})"


class TwoPhaseElements(QueryOp):
    """The live membership as a frozenset."""

    def apply(self, state: TwoPhaseSet) -> frozenset:
        return state.live_elements()

    def __repr__(self) -> str:
        return "TwoPhaseElements()"
