"""State-based conflict-free replicated data types (CRDTs).

Implements the data model of §2.2 of the paper: a state-based CRDT is a
triple ``(S, Q, U)`` where the payload states ``S`` form a join semilattice
(:class:`~repro.crdt.base.StateCRDT` with ``merge`` = least upper bound and
``compare`` = the partial order), ``Q`` is a set of side-effect-free query
functions and ``U`` a set of inflationary update functions.

The portfolio covers the structures named by the paper and its references:

=====================  =====================================================
Type                   Semantics
=====================  =====================================================
:class:`GCounter`      grow-only counter (Algorithm 1 of the paper)
:class:`PNCounter`     increment/decrement counter (two G-Counters)
:class:`MaxRegister`   largest-value-wins integer register
:class:`GSet`          grow-only set
:class:`TwoPhaseSet`   add-once / remove-once set with tombstones
:class:`ORSet`         observed-remove (add-wins) set with unique tags
:class:`LWWRegister`   last-writer-wins register (totally ordered stamps)
:class:`MVRegister`    multi-value register (concurrent writes preserved)
:class:`LWWMap`        map with last-writer-wins entries and tombstones
:class:`GMap`          grow-only map of nested CRDTs, merged pointwise
:class:`VectorClock`   version vector (itself a lattice; used by MVRegister)
=====================  =====================================================

Updates are reified as :class:`~repro.crdt.base.UpdateOp` objects and
queries as :class:`~repro.crdt.base.QueryOp` objects so they can be shipped
to a replica and applied there — matching the paper's model where clients
submit update *functions* ``f_u ∈ U`` and query *functions* ``f_q ∈ Q``.
"""

from repro.crdt.base import (
    IdentityQuery,
    MergeAccumulator,
    QueryOp,
    StateCRDT,
    UpdateOp,
    equivalent,
    join_all,
)
from repro.crdt.gcounter import GCounter, GCounterValue, Increment
from repro.crdt.gset import Contains, Elements, GSet, GSetAdd
from repro.crdt.gmap import GMap, GMapApply, GMapGet
from repro.crdt.graph import (
    AddEdge,
    AddVertex,
    AsNetworkX,
    HasEdge,
    HasVertex,
    RemoveEdge,
    RemoveVertex,
    TwoPhaseGraph,
)
from repro.crdt.lwwmap import LWWMap, LWWMapGet, LWWMapKeys, LWWMapPut, LWWMapRemove
from repro.crdt.lwwregister import LWWRegister, LWWSet, LWWValue
from repro.crdt.maxregister import MaxRegister, MaxSet, MaxValue
from repro.crdt.mvregister import MVRegister, MVValues, MVWrite
from repro.crdt.orset import ORSet, ORSetAdd, ORSetContains, ORSetElements, ORSetRemove
from repro.crdt.pncounter import Decrement, PNCounter, PNCounterValue, PNIncrement
from repro.crdt.twophase_set import (
    TwoPhaseSet,
    TwoPhaseAdd,
    TwoPhaseContains,
    TwoPhaseElements,
    TwoPhaseRemove,
)
from repro.crdt.registry import crdt_registry, initial_state
from repro.crdt.vector_clock import VectorClock

__all__ = [
    "AddEdge",
    "AddVertex",
    "AsNetworkX",
    "Contains",
    "Decrement",
    "Elements",
    "GCounter",
    "GCounterValue",
    "GMap",
    "GMapApply",
    "GMapGet",
    "GSet",
    "GSetAdd",
    "HasEdge",
    "HasVertex",
    "IdentityQuery",
    "Increment",
    "LWWMap",
    "LWWMapGet",
    "LWWMapKeys",
    "LWWMapPut",
    "LWWMapRemove",
    "LWWRegister",
    "LWWSet",
    "LWWValue",
    "MergeAccumulator",
    "MaxRegister",
    "MaxSet",
    "MaxValue",
    "MVRegister",
    "MVValues",
    "MVWrite",
    "ORSet",
    "ORSetAdd",
    "ORSetContains",
    "ORSetElements",
    "ORSetRemove",
    "PNCounter",
    "PNCounterValue",
    "PNIncrement",
    "QueryOp",
    "RemoveEdge",
    "RemoveVertex",
    "StateCRDT",
    "TwoPhaseAdd",
    "TwoPhaseContains",
    "TwoPhaseElements",
    "TwoPhaseGraph",
    "TwoPhaseRemove",
    "TwoPhaseSet",
    "UpdateOp",
    "VectorClock",
    "crdt_registry",
    "equivalent",
    "initial_state",
    "join_all",
]
