"""Largest-value-wins register.

The simplest non-trivial join semilattice: totally ordered values under
``max``.  Useful on its own (high-water marks, epoch numbers) and as the
smallest fixture for property-based tests of the replication protocols.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp


@dataclass(frozen=True, slots=True)
class MaxRegister(StateCRDT):
    """Immutable max-register payload."""

    value: int = 0

    @staticmethod
    def initial() -> "MaxRegister":
        return MaxRegister()

    def merge(self, other: "MaxRegister") -> "MaxRegister":
        if other is self:
            return self
        return self if self.value >= other.value else other

    def compare(self, other: "MaxRegister") -> bool:
        if other is self:
            return True
        return self.value <= other.value

    def wire_size(self) -> int:
        return 8


class MaxSet(UpdateOp):
    """Raise the register to at least ``value`` (no-op if already higher)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def apply(self, state: MaxRegister, replica_id: str) -> MaxRegister:
        return state if state.value >= self.value else MaxRegister(self.value)

    def __repr__(self) -> str:
        return f"MaxSet({self.value})"


class MaxValue(QueryOp):
    """Read the current maximum."""

    def apply(self, state: MaxRegister) -> int:
        return state.value

    def __repr__(self) -> str:
        return "MaxValue()"
