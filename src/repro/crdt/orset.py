"""Observed-remove set (OR-Set) with add-wins semantics.

Every add is tagged with a unique ``(replica, sequence)`` pair; a remove
tombstones exactly the tags it has *observed* for the element.  An add that
is concurrent with a remove therefore survives (its tag was not observed),
which gives the intuitive "add wins" behaviour that made OR-Sets the
workhorse of systems like Riak.

Payload order: ``(entries, tombstones)`` pairs ordered componentwise by set
inclusion, so ``merge`` is the pairwise union — a join semilattice.

Tag uniqueness without external coordination: update functions execute
serially at one replica (the protocols apply them at the proposer's local
acceptor), so the next sequence number for replica ``r`` can be derived
deterministically from the payload itself — one more than the largest
sequence ``r`` has ever used in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import wire_size as _wire_size

Tag = tuple[str, int]


@dataclass(frozen=True, slots=True)
class ORSet(StateCRDT):
    """Immutable OR-Set payload.

    ``entries`` holds ``(element, tag)`` pairs; ``tombstones`` holds tags
    whose adds have been removed.  Tombstoned pairs are *kept* in
    ``entries`` — dropping them would make payloads incomparable across
    replicas and break the lattice order.
    """

    entries: frozenset = frozenset()
    tombstones: frozenset = frozenset()

    @staticmethod
    def initial() -> "ORSet":
        return ORSet()

    # ------------------------------------------------------------------
    def live_tags(self, element: Hashable) -> frozenset:
        return frozenset(
            tag
            for (candidate, tag) in self.entries
            if candidate == element and tag not in self.tombstones
        )

    def live_elements(self) -> frozenset:
        return frozenset(
            element
            for (element, tag) in self.entries
            if tag not in self.tombstones
        )

    def __contains__(self, element: Hashable) -> bool:
        return any(
            candidate == element and tag not in self.tombstones
            for (candidate, tag) in self.entries
        )

    def next_sequence(self, replica_id: str) -> int:
        highest = 0
        for _, (replica, seq) in self.entries:
            if replica == replica_id and seq > highest:
                highest = seq
        for replica, seq in self.tombstones:
            if replica == replica_id and seq > highest:
                highest = seq
        return highest + 1

    def with_add(self, element: Hashable, replica_id: str) -> "ORSet":
        tag: Tag = (replica_id, self.next_sequence(replica_id))
        return ORSet(self.entries | {(element, tag)}, self.tombstones)

    def with_remove(self, element: Hashable) -> "ORSet":
        observed = self.live_tags(element)
        if not observed:
            return self
        return ORSet(self.entries, self.tombstones | observed)

    # ------------------------------------------------------------------
    def merge(self, other: "ORSet") -> "ORSet":
        if other is self:
            return self
        return ORSet(
            self.entries | other.entries,
            self.tombstones | other.tombstones,
        )

    def compare(self, other: "ORSet") -> bool:
        if other is self:
            return True
        return (
            self.entries <= other.entries
            and self.tombstones <= other.tombstones
        )

    def wire_size(self) -> int:
        entry_bytes = sum(
            _wire_size(element) + len(tag[0]) + 8 for (element, tag) in self.entries
        )
        tombstone_bytes = sum(len(replica) + 8 for (replica, _) in self.tombstones)
        return 8 + entry_bytes + tombstone_bytes


class ORSetAdd(UpdateOp):
    """Add an element under a fresh unique tag."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: ORSet, replica_id: str) -> ORSet:
        return state.with_add(self.element, replica_id)

    def delta(self, before: ORSet, after: ORSet, replica_id: str) -> ORSet:
        return ORSet(after.entries - before.entries, frozenset())

    def wire_size(self) -> int:
        return 8 + _wire_size(self.element)

    def __repr__(self) -> str:
        return f"ORSetAdd({self.element!r})"


class ORSetRemove(UpdateOp):
    """Remove an element by tombstoning all tags observed *in the state the
    update is applied to* — unobserved concurrent adds survive."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: ORSet, replica_id: str) -> ORSet:
        return state.with_remove(self.element)

    def delta(self, before: ORSet, after: ORSet, replica_id: str) -> ORSet:
        # Tombstones alone reproduce the removal when merged anywhere; a
        # receiver lacking the tagged entries just records them early.
        return ORSet(frozenset(), after.tombstones - before.tombstones)

    def wire_size(self) -> int:
        return 8 + _wire_size(self.element)

    def __repr__(self) -> str:
        return f"ORSetRemove({self.element!r})"


class ORSetContains(QueryOp):
    """Membership test."""

    __slots__ = ("element",)

    def __init__(self, element: Hashable) -> None:
        self.element = element

    def apply(self, state: ORSet) -> bool:
        return self.element in state

    def __repr__(self) -> str:
        return f"ORSetContains({self.element!r})"


class ORSetElements(QueryOp):
    """The live membership as a frozenset."""

    def apply(self, state: ORSet) -> frozenset:
        return state.live_elements()

    def __repr__(self) -> str:
        return "ORSetElements()"
