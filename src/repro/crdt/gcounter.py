"""Grow-only counter — Algorithm 1 of the paper.

The payload maps replica ids to per-replica increment totals.  ``merge``
takes the pointwise maximum, ``compare`` is pointwise ``≤`` (absent slots
count as zero), and the counter's value is the sum of all slots.  Each
replica only ever raises its own slot, so no increment can be lost.

The paper uses this exact data type (replicated on three nodes) for every
benchmark; it is also the type for which the correctness checker can verify
*inclusion* of individual updates precisely, because the k-th increment
applied at replica ``r`` is included in a state iff slot ``r`` is ≥ k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp


@dataclass(frozen=True, slots=True)
class GCounter(StateCRDT):
    """Immutable G-Counter payload: ``entries[replica] = local total``."""

    entries: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def initial() -> "GCounter":
        """The bottom element — a shared singleton.  Payloads are
        immutable, and a keyed store creates one bottom per key; sharing
        it makes cold keys cost zero payload bytes until they diverge."""
        return _BOTTOM

    @classmethod
    def of(cls, mapping: Mapping[str, int]) -> "GCounter":
        for replica, count in mapping.items():
            if count < 0:
                raise ValueError(f"negative slot for {replica}: {count}")
        return cls(tuple(sorted(mapping.items())))

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, int]:
        return dict(self.entries)

    def slot(self, replica_id: str) -> int:
        for replica, count in self.entries:
            if replica == replica_id:
                return count
        return 0

    def value(self) -> int:
        return sum(count for _, count in self.entries)

    def incremented(self, replica_id: str, amount: int = 1) -> "GCounter":
        if amount <= 0:
            raise ValueError(f"increment must be positive, got {amount}")
        entries = self.as_dict()
        entries[replica_id] = entries.get(replica_id, 0) + amount
        return GCounter(tuple(sorted(entries.items())))

    # ------------------------------------------------------------------
    # Lattice interface
    # ------------------------------------------------------------------
    def merge(self, other: "GCounter") -> "GCounter":
        if other is self:
            return self
        merged = self.as_dict()
        for replica, count in other.entries:
            if count > merged.get(replica, 0):
                merged[replica] = count
        return GCounter(tuple(sorted(merged.items())))

    def compare(self, other: "GCounter") -> bool:
        if other is self:
            return True
        theirs = other.as_dict()
        return all(count <= theirs.get(replica, 0) for replica, count in self.entries)

    def wire_size(self) -> int:
        # One (replica id, 64-bit slot) pair per entry.
        return 4 + sum(len(replica) + 8 for replica, _ in self.entries)


#: Shared bottom element returned by :meth:`GCounter.initial`.
_BOTTOM = GCounter()


class Increment(UpdateOp):
    """``update()`` of Algorithm 1: raise the applying replica's slot."""

    __slots__ = ("amount",)

    def __init__(self, amount: int = 1) -> None:
        if amount <= 0:
            raise ValueError(f"increment must be positive, got {amount}")
        self.amount = amount

    def apply(self, state: GCounter, replica_id: str) -> GCounter:
        return state.incremented(replica_id, self.amount)

    def delta(self, before: GCounter, after: GCounter, replica_id: str) -> GCounter:
        # A single slot suffices: slot values are per-replica monotone, so
        # merging ``{replica: new total}`` reproduces the increment anywhere.
        return GCounter(((replica_id, after.slot(replica_id)),))

    def __repr__(self) -> str:
        return f"Increment({self.amount})"


class GCounterValue(QueryOp):
    """``query()`` of Algorithm 1: the sum of all slots."""

    def apply(self, state: GCounter) -> int:
        return state.value()

    def __repr__(self) -> str:
        return "GCounterValue()"
