"""Last-writer-wins register.

Every write carries a totally ordered stamp ``(timestamp, replica sequence,
replica id)``; ``merge`` keeps the entry with the larger stamp.  Total
order of stamps makes the payload set a chain-structured semilattice.

The replica-sequence component breaks ties between writes that carry the
same client timestamp and are applied at the same replica — without it two
such writes with different values would violate the lattice laws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import wire_size as _wire_size

#: Stamp of the initial (never written) register: below every real write.
_INITIAL_STAMP: tuple[float, int, str] = (float("-inf"), 0, "")


@dataclass(frozen=True, slots=True)
class LWWRegister(StateCRDT):
    """Immutable LWW-Register payload."""

    value: Any = None
    stamp: tuple[float, int, str] = _INITIAL_STAMP

    @staticmethod
    def initial() -> "LWWRegister":
        return LWWRegister()

    def written(
        self, value: Any, timestamp: float, replica_id: str
    ) -> "LWWRegister":
        sequence = self.stamp[1] + 1
        new_stamp = (timestamp, sequence, replica_id)
        if new_stamp <= self.stamp:
            # Late write with an older stamp loses; state is unchanged,
            # which keeps the update inflationary.
            return self
        return LWWRegister(value, new_stamp)

    # ------------------------------------------------------------------
    def merge(self, other: "LWWRegister") -> "LWWRegister":
        if other is self:
            return self
        return self if self.stamp >= other.stamp else other

    def compare(self, other: "LWWRegister") -> bool:
        if other is self:
            return True
        return self.stamp <= other.stamp

    def wire_size(self) -> int:
        return 24 + _wire_size(self.value)


class LWWSet(UpdateOp):
    """Write a value with a caller-provided timestamp."""

    __slots__ = ("value", "timestamp")

    def __init__(self, value: Any, timestamp: float) -> None:
        self.value = value
        self.timestamp = timestamp

    def apply(self, state: LWWRegister, replica_id: str) -> LWWRegister:
        return state.written(self.value, self.timestamp, replica_id)

    def wire_size(self) -> int:
        return 16 + _wire_size(self.value)

    def __repr__(self) -> str:
        return f"LWWSet({self.value!r}, ts={self.timestamp})"


class LWWValue(QueryOp):
    """Read the register's current value (None if never written)."""

    def apply(self, state: LWWRegister) -> Any:
        return state.value

    def __repr__(self) -> str:
        return "LWWValue()"
