"""Version vectors (vector clocks) — themselves a join semilattice.

Used by :class:`~repro.crdt.mvregister.MVRegister` to track causality of
concurrent writes, and independently useful as a CRDT of per-replica event
counters merged by pointwise maximum (structurally a G-Counter, but with
happened-before comparison semantics as the API focus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.crdt.base import StateCRDT


@dataclass(frozen=True, slots=True)
class VectorClock(StateCRDT):
    """Immutable version vector: ``entries[replica] = events observed``."""

    entries: tuple[tuple[str, int], ...] = ()

    @classmethod
    def of(cls, mapping: Mapping[str, int]) -> "VectorClock":
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict[str, int]:
        return dict(self.entries)

    def get(self, replica_id: str) -> int:
        for replica, count in self.entries:
            if replica == replica_id:
                return count
        return 0

    def ticked(self, replica_id: str) -> "VectorClock":
        """Advance this replica's component by one."""
        entries = self.as_dict()
        entries[replica_id] = entries.get(replica_id, 0) + 1
        return VectorClock(tuple(sorted(entries.items())))

    # ------------------------------------------------------------------
    # Causality predicates
    # ------------------------------------------------------------------
    def dominates(self, other: "VectorClock") -> bool:
        """True iff ``other ⊑ self`` (self has seen everything other has)."""
        return other.compare(self)

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff neither clock dominates the other."""
        return not self.compare(other) and not other.compare(self)

    # ------------------------------------------------------------------
    # Lattice interface
    # ------------------------------------------------------------------
    def merge(self, other: "VectorClock") -> "VectorClock":
        if other is self:
            return self
        merged = self.as_dict()
        for replica, count in other.entries:
            if count > merged.get(replica, 0):
                merged[replica] = count
        return VectorClock(tuple(sorted(merged.items())))

    def compare(self, other: "VectorClock") -> bool:
        if other is self:
            return True
        theirs = other.as_dict()
        return all(count <= theirs.get(replica, 0) for replica, count in self.entries)

    def wire_size(self) -> int:
        return 4 + sum(len(replica) + 8 for replica, _ in self.entries)
