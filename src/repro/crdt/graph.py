"""Two-phase-two-phase (2P2P) directed graph.

The graph type from the original CRDT catalogue (the paper's introduction
lists "certain types of graphs" among the structures CRDTs cover): both
the vertex set and the edge set are two-phase sets, merged componentwise.
An edge is *live* only when it was added, not removed, and both endpoints
are live — the endpoint check happens at query time, which is what makes
concurrent ``add_edge`` / ``remove_vertex`` conflict-free: the edge simply
stops being observable once an endpoint dies.

Removal is permanent (2P semantics).  The payload is a product of four
grow-only sets and therefore a join semilattice with all CRDT laws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import wire_size as _wire_size

Edge = tuple[Hashable, Hashable]


@dataclass(frozen=True, slots=True)
class TwoPhaseGraph(StateCRDT):
    """Immutable 2P2P-graph payload."""

    vertices_added: frozenset = frozenset()
    vertices_removed: frozenset = frozenset()
    edges_added: frozenset = frozenset()
    edges_removed: frozenset = frozenset()

    @staticmethod
    def initial() -> "TwoPhaseGraph":
        return TwoPhaseGraph()

    # ------------------------------------------------------------------
    def has_vertex(self, vertex: Hashable) -> bool:
        return (
            vertex in self.vertices_added and vertex not in self.vertices_removed
        )

    def has_edge(self, edge: Edge) -> bool:
        if edge not in self.edges_added or edge in self.edges_removed:
            return False
        return self.has_vertex(edge[0]) and self.has_vertex(edge[1])

    def live_vertices(self) -> frozenset:
        return self.vertices_added - self.vertices_removed

    def live_edges(self) -> frozenset:
        return frozenset(
            edge
            for edge in self.edges_added - self.edges_removed
            if self.has_vertex(edge[0]) and self.has_vertex(edge[1])
        )

    # ------------------------------------------------------------------
    def with_vertex(self, vertex: Hashable) -> "TwoPhaseGraph":
        if vertex in self.vertices_added:
            return self
        return TwoPhaseGraph(
            self.vertices_added | {vertex},
            self.vertices_removed,
            self.edges_added,
            self.edges_removed,
        )

    def without_vertex(self, vertex: Hashable) -> "TwoPhaseGraph":
        if vertex in self.vertices_removed:
            return self
        return TwoPhaseGraph(
            self.vertices_added,
            self.vertices_removed | {vertex},
            self.edges_added,
            self.edges_removed,
        )

    def with_edge(self, edge: Edge) -> "TwoPhaseGraph":
        """Record an edge; it only becomes observable while both endpoints
        are live, so no cross-object precondition is needed."""
        if edge in self.edges_added:
            return self
        return TwoPhaseGraph(
            self.vertices_added,
            self.vertices_removed,
            self.edges_added | {edge},
            self.edges_removed,
        )

    def without_edge(self, edge: Edge) -> "TwoPhaseGraph":
        if edge in self.edges_removed:
            return self
        return TwoPhaseGraph(
            self.vertices_added,
            self.vertices_removed,
            self.edges_added,
            self.edges_removed | {edge},
        )

    # ------------------------------------------------------------------
    def merge(self, other: "TwoPhaseGraph") -> "TwoPhaseGraph":
        if other is self:
            return self
        return TwoPhaseGraph(
            self.vertices_added | other.vertices_added,
            self.vertices_removed | other.vertices_removed,
            self.edges_added | other.edges_added,
            self.edges_removed | other.edges_removed,
        )

    def compare(self, other: "TwoPhaseGraph") -> bool:
        if other is self:
            return True
        return (
            self.vertices_added <= other.vertices_added
            and self.vertices_removed <= other.vertices_removed
            and self.edges_added <= other.edges_added
            and self.edges_removed <= other.edges_removed
        )

    def wire_size(self) -> int:
        return 16 + sum(
            _wire_size(item)
            for component in (
                self.vertices_added,
                self.vertices_removed,
                self.edges_added,
                self.edges_removed,
            )
            for item in component
        )


class AddVertex(UpdateOp):
    __slots__ = ("vertex",)

    def __init__(self, vertex: Hashable) -> None:
        self.vertex = vertex

    def apply(self, state: TwoPhaseGraph, replica_id: str) -> TwoPhaseGraph:
        return state.with_vertex(self.vertex)

    def __repr__(self) -> str:
        return f"AddVertex({self.vertex!r})"


class RemoveVertex(UpdateOp):
    """Tombstone a vertex; its incident edges become unobservable."""

    __slots__ = ("vertex",)

    def __init__(self, vertex: Hashable) -> None:
        self.vertex = vertex

    def apply(self, state: TwoPhaseGraph, replica_id: str) -> TwoPhaseGraph:
        return state.without_vertex(self.vertex)

    def __repr__(self) -> str:
        return f"RemoveVertex({self.vertex!r})"


class AddEdge(UpdateOp):
    __slots__ = ("edge",)

    def __init__(self, source: Hashable, target: Hashable) -> None:
        self.edge: Edge = (source, target)

    def apply(self, state: TwoPhaseGraph, replica_id: str) -> TwoPhaseGraph:
        return state.with_edge(self.edge)

    def __repr__(self) -> str:
        return f"AddEdge{self.edge!r}"


class RemoveEdge(UpdateOp):
    __slots__ = ("edge",)

    def __init__(self, source: Hashable, target: Hashable) -> None:
        self.edge: Edge = (source, target)

    def apply(self, state: TwoPhaseGraph, replica_id: str) -> TwoPhaseGraph:
        return state.without_edge(self.edge)

    def __repr__(self) -> str:
        return f"RemoveEdge{self.edge!r}"


class HasVertex(QueryOp):
    __slots__ = ("vertex",)

    def __init__(self, vertex: Hashable) -> None:
        self.vertex = vertex

    def apply(self, state: TwoPhaseGraph) -> bool:
        return state.has_vertex(self.vertex)

    def __repr__(self) -> str:
        return f"HasVertex({self.vertex!r})"


class HasEdge(QueryOp):
    __slots__ = ("edge",)

    def __init__(self, source: Hashable, target: Hashable) -> None:
        self.edge: Edge = (source, target)

    def apply(self, state: TwoPhaseGraph) -> bool:
        return state.has_edge(self.edge)

    def __repr__(self) -> str:
        return f"HasEdge{self.edge!r}"


class AsNetworkX(QueryOp):
    """Materialize the live graph as a ``networkx.DiGraph``.

    Lets applications run any graph algorithm against a linearizable
    snapshot of the replicated structure.
    """

    def apply(self, state: TwoPhaseGraph) -> networkx.DiGraph:
        graph = networkx.DiGraph()
        graph.add_nodes_from(state.live_vertices())
        graph.add_edges_from(state.live_edges())
        return graph

    def __repr__(self) -> str:
        return "AsNetworkX()"
