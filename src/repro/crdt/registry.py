"""Name-indexed registry of CRDT types and their initial states.

Benchmarks and examples select payload types by name (e.g. on a command
line); the registry maps those names to classes and bottom elements.
"""

from __future__ import annotations

from typing import Callable

from repro.crdt.base import StateCRDT
from repro.crdt.gcounter import GCounter
from repro.crdt.gmap import GMap
from repro.crdt.graph import TwoPhaseGraph
from repro.crdt.gset import GSet
from repro.crdt.lwwmap import LWWMap
from repro.crdt.lwwregister import LWWRegister
from repro.crdt.maxregister import MaxRegister
from repro.crdt.mvregister import MVRegister
from repro.crdt.orset import ORSet
from repro.crdt.pncounter import PNCounter
from repro.crdt.twophase_set import TwoPhaseSet

#: name → (class, initial-state factory)
crdt_registry: dict[str, tuple[type[StateCRDT], Callable[[], StateCRDT]]] = {
    "g-counter": (GCounter, GCounter.initial),
    "pn-counter": (PNCounter, PNCounter.initial),
    "max-register": (MaxRegister, MaxRegister.initial),
    "g-set": (GSet, GSet.initial),
    "2p-set": (TwoPhaseSet, TwoPhaseSet.initial),
    "or-set": (ORSet, ORSet.initial),
    "lww-register": (LWWRegister, LWWRegister.initial),
    "mv-register": (MVRegister, MVRegister.initial),
    "lww-map": (LWWMap, LWWMap.initial),
    "g-map": (GMap, GMap.initial),
    "2p2p-graph": (TwoPhaseGraph, TwoPhaseGraph.initial),
}


def initial_state(name: str) -> StateCRDT:
    """Return a fresh bottom element for the named CRDT type."""
    if name not in crdt_registry:
        known = ", ".join(sorted(crdt_registry))
        raise KeyError(f"unknown CRDT type {name!r}; known types: {known}")
    _, factory = crdt_registry[name]
    return factory()
