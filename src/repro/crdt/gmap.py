"""Grow-only map of nested CRDTs, merged pointwise.

The composition pattern behind Riak-style CRDT maps: each key holds a
nested state-based CRDT, ``merge`` joins matching keys pointwise (the union
of key sets), and the payload order is the product order with absent keys
at the bottom.  Keys can never be removed — removal of nested entries is a
concern of the nested type (e.g. nest an :class:`~repro.crdt.orset.ORSet`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import wire_size as _wire_size


@dataclass(frozen=True, slots=True)
class GMap(StateCRDT):
    """Immutable grow-only map payload: key → nested CRDT state."""

    entries: tuple[tuple[Hashable, StateCRDT], ...] = ()

    @staticmethod
    def initial() -> "GMap":
        return GMap()

    def as_dict(self) -> dict[Hashable, StateCRDT]:
        return dict(self.entries)

    def get(self, key: Hashable) -> StateCRDT | None:
        for candidate, value in self.entries:
            if candidate == key:
                return value
        return None

    def __contains__(self, key: Hashable) -> bool:
        return any(candidate == key for candidate, _ in self.entries)

    def keys(self) -> frozenset:
        return frozenset(key for key, _ in self.entries)

    def with_entry(self, key: Hashable, value: StateCRDT) -> "GMap":
        entries = self.as_dict()
        existing = entries.get(key)
        if existing is not None:
            joined = existing.join(value)
            if joined is existing:  # nested value already subsumed
                return self
            entries[key] = joined
            # Key set unchanged: the existing order is already sorted.
            return GMap(tuple((k, entries[k]) for k, _ in self.entries))
        entries[key] = value
        return GMap(tuple(sorted(entries.items(), key=lambda kv: repr(kv[0]))))

    # ------------------------------------------------------------------
    def merge(self, other: "GMap") -> "GMap":
        """Pointwise LUB with per-entry short-circuits.

        Nested values fold with :meth:`~repro.crdt.base.StateCRDT.join`,
        whose digest cache proves "already subsumed" in O(1) — so merging
        a map that changes nothing returns ``self`` untouched (no re-sort,
        no allocation), and a merge touching one entry re-sorts only when
        the key *set* grew (otherwise the existing order is reused).
        """
        if other is self:
            return self
        if not self.entries:
            return other
        if not other.entries:
            return self
        merged = self.as_dict()
        changed = False
        grew = False
        for key, value in other.entries:
            existing = merged.get(key)
            if existing is None:
                merged[key] = value
                changed = grew = True
            else:
                joined = existing.join(value)
                if joined is not existing:
                    merged[key] = joined
                    changed = True
        if not changed:
            return self
        if not grew:
            # Same key set: preserve the already-sorted entry order.
            return GMap(tuple((k, merged[k]) for k, _ in self.entries))
        return GMap(tuple(sorted(merged.items(), key=lambda kv: repr(kv[0]))))

    def compare(self, other: "GMap") -> bool:
        if other is self:
            return True
        theirs = other.as_dict()
        for key, value in self.entries:
            if key not in theirs or not value.compare(theirs[key]):
                return False
        return True

    def wire_size(self) -> int:
        return 8 + sum(
            _wire_size(key) + value.wire_size() for key, value in self.entries
        )


class GMapApply(UpdateOp):
    """Apply a nested update to the CRDT stored under ``key``.

    If the key is absent it is created from ``initial`` first, so the
    operation is deterministic wherever it is applied.
    """

    __slots__ = ("key", "initial", "update")

    def __init__(self, key: Hashable, initial: StateCRDT, update: UpdateOp) -> None:
        self.key = key
        self.initial = initial
        self.update = update

    def apply(self, state: GMap, replica_id: str) -> GMap:
        current = state.get(self.key)
        base = self.initial if current is None else current
        return state.with_entry(self.key, self.update.apply(base, replica_id))

    def wire_size(self) -> int:
        return 8 + _wire_size(self.key) + self.update.wire_size()

    def __repr__(self) -> str:
        return f"GMapApply({self.key!r}, {self.update!r})"


class GMapGet(QueryOp):
    """Evaluate a nested query against the CRDT stored under ``key``.

    Returns None when the key is absent.
    """

    __slots__ = ("key", "query")

    def __init__(self, key: Hashable, query: QueryOp) -> None:
        self.key = key
        self.query = query

    def apply(self, state: GMap) -> object:
        nested = state.get(self.key)
        if nested is None:
            return None
        return self.query.apply(nested)

    def __repr__(self) -> str:
        return f"GMapGet({self.key!r}, {self.query!r})"
