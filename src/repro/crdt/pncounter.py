"""Increment/decrement counter built from two G-Counters.

The classic PN-Counter: one grow-only counter ``p`` accumulates increments,
a second one ``n`` accumulates decrements; the value is ``p − n``.  The
product of two semilattices ordered componentwise is again a semilattice,
so all CRDT laws are inherited from :class:`~repro.crdt.gcounter.GCounter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.crdt.gcounter import GCounter


@dataclass(frozen=True, slots=True)
class PNCounter(StateCRDT):
    """Immutable PN-Counter payload: a pair of G-Counters."""

    positive: GCounter = GCounter()
    negative: GCounter = GCounter()

    @staticmethod
    def initial() -> "PNCounter":
        return PNCounter()

    def value(self) -> int:
        return self.positive.value() - self.negative.value()

    def incremented(self, replica_id: str, amount: int = 1) -> "PNCounter":
        return PNCounter(self.positive.incremented(replica_id, amount), self.negative)

    def decremented(self, replica_id: str, amount: int = 1) -> "PNCounter":
        return PNCounter(self.positive, self.negative.incremented(replica_id, amount))

    # ------------------------------------------------------------------
    def merge(self, other: "PNCounter") -> "PNCounter":
        if other is self:
            return self
        return PNCounter(
            self.positive.merge(other.positive),
            self.negative.merge(other.negative),
        )

    def compare(self, other: "PNCounter") -> bool:
        if other is self:
            return True
        return self.positive.compare(other.positive) and self.negative.compare(
            other.negative
        )

    def wire_size(self) -> int:
        return self.positive.wire_size() + self.negative.wire_size()


class PNIncrement(UpdateOp):
    """Add ``amount`` to the counter."""

    __slots__ = ("amount",)

    def __init__(self, amount: int = 1) -> None:
        if amount <= 0:
            raise ValueError(f"increment must be positive, got {amount}")
        self.amount = amount

    def apply(self, state: PNCounter, replica_id: str) -> PNCounter:
        return state.incremented(replica_id, self.amount)

    def delta(self, before: PNCounter, after: PNCounter, replica_id: str) -> PNCounter:
        return PNCounter(
            GCounter(((replica_id, after.positive.slot(replica_id)),)),
            GCounter(),
        )

    def __repr__(self) -> str:
        return f"PNIncrement({self.amount})"


class Decrement(UpdateOp):
    """Subtract ``amount`` from the counter."""

    __slots__ = ("amount",)

    def __init__(self, amount: int = 1) -> None:
        if amount <= 0:
            raise ValueError(f"decrement must be positive, got {amount}")
        self.amount = amount

    def apply(self, state: PNCounter, replica_id: str) -> PNCounter:
        return state.decremented(replica_id, self.amount)

    def delta(self, before: PNCounter, after: PNCounter, replica_id: str) -> PNCounter:
        return PNCounter(
            GCounter(),
            GCounter(((replica_id, after.negative.slot(replica_id)),)),
        )

    def __repr__(self) -> str:
        return f"Decrement({self.amount})"


class PNCounterValue(QueryOp):
    """The counter's value: total increments minus total decrements."""

    def apply(self, state: PNCounter) -> int:
        return state.value()

    def __repr__(self) -> str:
        return "PNCounterValue()"
