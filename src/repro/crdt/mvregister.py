"""Multi-value register.

Unlike the LWW register, concurrent writes are *preserved*: the payload is
an antichain of ``(value, version vector)`` entries, and a read returns all
values whose version vectors are maximal.  A write observes every current
entry (its vector is the join of theirs, ticked at the writing replica) and
therefore supersedes them, collapsing the antichain to one entry until the
next concurrency.

Lattice structure: antichains of the version-vector poset under the Hoare
order — ``a ⊑ b`` iff every entry of ``a`` is dominated by (or equal to)
some entry of ``b``; the join is the set of maximal elements of the union.
Uniqueness of version vectors per write (each write ticks its replica's
slot) keeps the order antisymmetric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.crdt.vector_clock import VectorClock
from repro.net.message import wire_size as _wire_size

Entry = tuple[Any, VectorClock]


def _maximal_entries(entries: frozenset) -> frozenset:
    """Drop entries whose version vector is strictly dominated by another."""
    kept = []
    for value, clock in entries:
        dominated = any(
            clock.compare(other_clock) and not other_clock.compare(clock)
            for other_value, other_clock in entries
            if (other_value, other_clock) != (value, clock)
        )
        if not dominated:
            kept.append((value, clock))
    return frozenset(kept)


@dataclass(frozen=True, slots=True)
class MVRegister(StateCRDT):
    """Immutable MV-Register payload: an antichain of stamped values."""

    entries: frozenset = frozenset()

    @staticmethod
    def initial() -> "MVRegister":
        return MVRegister()

    def values(self) -> frozenset:
        """All concurrently-written current values."""
        return frozenset(value for value, _ in self.entries)

    def written(self, value: Any, replica_id: str) -> "MVRegister":
        observed = VectorClock()
        for _, clock in self.entries:
            observed = observed.merge(clock)
        return MVRegister(frozenset({(value, observed.ticked(replica_id))}))

    # ------------------------------------------------------------------
    def merge(self, other: "MVRegister") -> "MVRegister":
        if other is self:
            return self
        return MVRegister(_maximal_entries(self.entries | other.entries))

    def compare(self, other: "MVRegister") -> bool:
        if other is self:
            return True
        return all(
            any(clock.compare(other_clock) for _, other_clock in other.entries)
            for _, clock in self.entries
        )

    def wire_size(self) -> int:
        return 8 + sum(
            _wire_size(value) + clock.wire_size() for value, clock in self.entries
        )


class MVWrite(UpdateOp):
    """Write a value, superseding every currently observed entry."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def apply(self, state: MVRegister, replica_id: str) -> MVRegister:
        return state.written(self.value, replica_id)

    def wire_size(self) -> int:
        return 8 + _wire_size(self.value)

    def __repr__(self) -> str:
        return f"MVWrite({self.value!r})"


class MVValues(QueryOp):
    """Read all concurrent values (a frozenset; empty if never written)."""

    def apply(self, state: MVRegister) -> frozenset:
        return state.values()

    def __repr__(self) -> str:
        return "MVValues()"
