"""Configuration of the CRDT Paxos protocol.

Defaults mirror the paper's base protocol; the optimizations of §3.6 and
the GLA-Stability extension of §3.4 are opt-in flags so experiments can
ablate them individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.crdt.base import StateCRDT
from repro.errors import ConfigurationError

#: Extracts an opaque inclusion token from (payload after update, replica).
InclusionTagger = Callable[[StateCRDT, str], Any]


@dataclass
class CrdtPaxosConfig:
    """Protocol knobs for one replica group.

    ``initial_prepare`` / ``retry_prepare``
        ``"incremental"`` leaves the round number ``⊥`` (always accepted;
        required for the eventual-liveness argument of §3.5) while
        ``"fixed"`` picks ``highest observed number + 1``.  The paper's
        proposers start incremental and retry incremental.
    ``fast_path``
        Enables learning by *consistent quorum* (§3.2 case (a)) — skipping
        the vote phase when a quorum answered with equivalent payloads.
        Disabling it is an ablation, not a recommended mode.
    ``include_state_in_prepare``
        Ship the proposer's local payload in PREPARE messages to speed up
        convergence (never ships ``s0``; §3.6).
    ``batching`` / ``batch_window``
        Per-proposer update and query batches (§3.6).  Buffered commands
        are applied locally; message count and size are independent of the
        batch size.
    ``update_pipeline``
        How many *update* batches one proposer may have in flight at once
        when batching.  CRDT merges commute and are idempotent, so update
        batches need no ordering between them — a new batch may be
        broadcast while earlier ones still await their quorum of MERGED
        acks, hiding the round-trip latency.  Queries stay single-flight
        per proposer: interleaving prepare rounds from one proposer would
        reintroduce the dueling-proposer hazard of the §3.5 liveness
        argument.  ``1`` (the default) reproduces the paper's
        stop-and-wait behaviour.
    ``gla_stability``
        §3.4: proposers remember their largest learned state so states
        learned at the same proposer increase monotonically even across
        concurrent (overlapping) queries.
    ``delta_merge``
        Extension (related-work pointer to delta-CRDTs): MERGE messages
        carry only the update's delta instead of the full payload.  A
        quorum still durably stores every completed update, so the §3.1
        conditions are preserved; payload convergence then relies on the
        query path.
    ``anti_entropy`` / ``anti_entropy_threshold`` / ``anti_entropy_interval``
        Delta-mode repair loop (requires ``delta_merge``).  Every MERGE
        carries the proposer's full-state digest; each MERGED ack says
        whether the acceptor's post-join state hashed differently.  A peer
        answering ``diverged`` ``anti_entropy_threshold`` consecutive
        times gets one full-state MERGE push (request id prefixed
        ``ae:``), rate-limited to one push per peer per
        ``anti_entropy_interval`` seconds.  This closes the delta-mode
        dissemination gap: a peer that missed a delta (dropped MERGE whose
        batch reached quorum without it) would otherwise stay divergent
        until the next query touches it.  Off by default — the probe costs
        a full-state digest per MERGE on both sides.
    ``request_timeout``
        Client-request supervision: how long a proposer waits before
        re-driving an open request (resending MERGEs / starting a fresh
        query attempt).  ``None`` disables (fine on lossless fabrics).
    ``retry_backoff``
        Delay before a failed query attempt is retried.  0 retries
        immediately, which matches the evaluation's behaviour.
    ``backoff_multiplier`` / ``backoff_cap`` / ``backoff_jitter``
        Adaptive supervision: each fruitless re-drive round (an update
        timeout with no new MERGED ack, a query timeout, a contended query
        retry, a rejoin re-broadcast that learned nothing) multiplies the
        next delay by ``backoff_multiplier``, capped at ``backoff_cap``
        seconds, with a deterministic per-request jitter of up to
        ``backoff_jitter`` (fraction of the delay) to de-synchronize
        duelling proposers (§3.5 observes growing timeouts restore
        liveness).  Progress — a new ack from a previously silent peer —
        resets the round counter.  ``backoff_multiplier=1.0`` reproduces
        the old fixed timers.
    ``redrive_limit``
        Give up gracefully: after this many consecutive fruitless re-drive
        rounds the proposer abandons the request and answers the client
        with ``Refused(code="quorum")`` instead of re-driving forever —
        the fail-fast half of partition tolerance.  ``None`` (default)
        keeps the retry-forever behaviour (correct, but a client behind a
        durable partition only ever observes its own timeout).
    ``inclusion_tagger``
        Optional extractor of inclusion tokens for the correctness checker
        (see :class:`~repro.core.messages.UpdateDone`).
    ``keyed_max_resident``
        Keyed deployments only: soft cap on fully materialized per-key
        instances one :class:`~repro.core.keyspace.KeyedCrdtReplica`
        keeps resident.  Past the cap, the least-recently-touched
        *quiescent* keys are demoted to a compact frozen record (payload +
        round watermark) and rehydrated on the next touch.  Safe without a
        log because the acceptor's durable state is exactly those two
        fields (§3.3); keys with open requests are never evicted.  ``None``
        (default) disables capacity eviction.
    ``keyed_idle_evict_s``
        Keyed deployments only: demote a quiescent key after this many
        seconds without a touch, swept periodically.  ``None`` (default)
        disables idle eviction.
    ``keyed_max_frozen``
        Keyed deployments only: soft cap on RAM-frozen records a
        :class:`~repro.core.keyspace.KeyedCrdtReplica` keeps before the
        oldest-frozen records are *spilled* — their ``(payload, round,
        learned-max)`` triple serialized to the replica's
        :class:`~repro.storage.base.SpillStore` and dropped from RAM,
        rehydrating transparently on the next touch.  Extends the same
        no-log safety argument to disk: the spilled triple is the
        acceptor's entire durable state (§3.3).  Requires a spill store
        to be attached; ``None`` (default) keeps every frozen record in
        RAM.
    ``keyed_coalesce_window``
        Keyed deployments only: buffer peer-bound :class:`Keyed` envelopes
        for up to this many seconds and flush them as one framed
        :class:`~repro.core.keyspace.KeyedBatch` per destination — at high
        key counts one replica emits many small per-key messages to the
        same peer per tick, and batching them amortizes the per-envelope
        overhead.  Replies to clients are never delayed.  ``None``
        (default) sends every envelope immediately.
    ``keyed_coalesce_adaptive`` / ``keyed_coalesce_min_window``
        Adapt the coalesce window to the observed per-peer traffic rate:
        an EWMA of the enqueue interval per destination sizes the next
        window at roughly eight envelopes' worth of arrivals, clamped to
        ``[keyed_coalesce_min_window, keyed_coalesce_window]`` — a hot
        peer flushes near the floor (latency), a trickling peer waits the
        full window (batching).  ``keyed_coalesce_min_window=None``
        defaults the floor to an eighth of the window.  Requires
        ``keyed_coalesce_window``.
    ``keyed_outbox_byte_budget``
        Flush a destination's parked envelopes early once their summed
        wire size exceeds this many bytes, regardless of the window —
        bounds both the burst one KeyedBatch frame puts on the wire and
        the staleness a byte-heavy peer accumulates.  ``None`` (default)
        leaves flushing purely time-driven.
    ``durability``
        Keyed deployments only: when a spill store is attached, how the
        §3.3 ``(payload, round)`` pair is persisted relative to the acks
        the replica emits.  ``"none"`` (default) persists only on
        demotion/``spill_all`` — a hard kill may lose promises.
        ``"write_through"`` persists and flushes a key's ``(payload,
        round, learned-max)`` triple *before* any effect of the handling
        step escapes — the log-less analogue of an acceptor fsync; every
        ack a peer or client sees rests on durable state.
        ``"group_sync"`` writes through but defers the flush: certifying
        acks (MERGED / PREPARE-ACK / VOTED / the client's done messages)
        are parked until a group-commit tick covers them, amortizing the
        fsync across a window while keeping the same guarantee.
    ``durability_sync_window``
        ``group_sync`` only: how many seconds acks may park before the
        batched flush releases them.
    """

    batching: bool = False
    batch_window: float = 0.005
    update_pipeline: int = 1
    initial_prepare: str = "incremental"
    retry_prepare: str = "incremental"
    retry_backoff: float = 0.0
    request_timeout: float | None = 1.0
    backoff_multiplier: float = 2.0
    backoff_cap: float = 30.0
    backoff_jitter: float = 0.1
    redrive_limit: int | None = None
    gla_stability: bool = False
    fast_path: bool = True
    include_state_in_prepare: bool = True
    delta_merge: bool = False
    anti_entropy: bool = False
    anti_entropy_threshold: int = 3
    anti_entropy_interval: float = 1.0
    inclusion_tagger: InclusionTagger | None = None
    keyed_max_resident: int | None = None
    keyed_max_frozen: int | None = None
    keyed_idle_evict_s: float | None = None
    keyed_coalesce_window: float | None = None
    keyed_coalesce_adaptive: bool = False
    keyed_coalesce_min_window: float | None = None
    keyed_outbox_byte_budget: int | None = None
    durability: str = "none"
    durability_sync_window: float = 0.002

    def __post_init__(self) -> None:
        for field_name in ("initial_prepare", "retry_prepare"):
            value = getattr(self, field_name)
            if value not in ("incremental", "fixed"):
                raise ConfigurationError(
                    f"{field_name} must be 'incremental' or 'fixed', got {value!r}"
                )
        if self.batch_window <= 0:
            raise ConfigurationError("batch_window must be positive")
        if self.update_pipeline < 1:
            raise ConfigurationError(
                f"update_pipeline must be >= 1, got {self.update_pipeline}"
            )
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1.0, got {self.backoff_multiplier}"
            )
        if self.backoff_cap <= 0:
            raise ConfigurationError("backoff_cap must be positive")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.redrive_limit is not None and self.redrive_limit < 1:
            raise ConfigurationError(
                f"redrive_limit must be >= 1 or None, got {self.redrive_limit}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive or None")
        if self.keyed_max_resident is not None and self.keyed_max_resident < 1:
            raise ConfigurationError(
                f"keyed_max_resident must be >= 1 or None, got {self.keyed_max_resident}"
            )
        if self.keyed_max_frozen is not None and self.keyed_max_frozen < 0:
            raise ConfigurationError(
                f"keyed_max_frozen must be >= 0 or None, got {self.keyed_max_frozen}"
            )
        if self.keyed_idle_evict_s is not None and self.keyed_idle_evict_s <= 0:
            raise ConfigurationError("keyed_idle_evict_s must be positive or None")
        if self.keyed_coalesce_window is not None and self.keyed_coalesce_window <= 0:
            raise ConfigurationError(
                "keyed_coalesce_window must be positive or None"
            )
        if self.anti_entropy and not self.delta_merge:
            raise ConfigurationError(
                "anti_entropy requires delta_merge (full-state MERGEs are "
                "their own anti-entropy)"
            )
        if self.anti_entropy_threshold < 1:
            raise ConfigurationError(
                f"anti_entropy_threshold must be >= 1, got {self.anti_entropy_threshold}"
            )
        if self.anti_entropy_interval <= 0:
            raise ConfigurationError("anti_entropy_interval must be positive")
        if self.keyed_coalesce_adaptive and self.keyed_coalesce_window is None:
            raise ConfigurationError(
                "keyed_coalesce_adaptive requires keyed_coalesce_window (the "
                "adaptive window's ceiling)"
            )
        if self.keyed_coalesce_min_window is not None:
            if self.keyed_coalesce_min_window <= 0:
                raise ConfigurationError(
                    "keyed_coalesce_min_window must be positive or None"
                )
            if (
                self.keyed_coalesce_window is not None
                and self.keyed_coalesce_min_window > self.keyed_coalesce_window
            ):
                raise ConfigurationError(
                    "keyed_coalesce_min_window must not exceed keyed_coalesce_window"
                )
        if self.keyed_outbox_byte_budget is not None and self.keyed_outbox_byte_budget < 1:
            raise ConfigurationError(
                f"keyed_outbox_byte_budget must be >= 1 or None, got "
                f"{self.keyed_outbox_byte_budget}"
            )
        if self.durability not in ("none", "write_through", "group_sync"):
            raise ConfigurationError(
                "durability must be 'none', 'write_through' or 'group_sync', "
                f"got {self.durability!r}"
            )
        if self.durability_sync_window <= 0:
            raise ConfigurationError("durability_sync_window must be positive")
