"""Shared peer-message dispatch for CRDT Paxos replicas.

Both deployment shapes — the single-instance
:class:`~repro.core.replica.CrdtPaxosReplica` and the per-key instances
hosted by :class:`~repro.core.keyspace.KeyedCrdtReplica` — route the same
eight peer message types to the same acceptor/proposer handlers.  This
module is the one copy of that table, dispatched O(1) by message type:

* acceptor *requests* (MERGE / PREPARE / VOTE) are handled by the acceptor
  and the reply is sent straight back to the source;
* proposer *replies* (MERGED / PREPARE-ACK / PREPARE-NACK / VOTED /
  VOTE-NACK) feed the proposer's quorum bookkeeping.

``proposer`` may be ``None`` — the keyed store materializes proposers
lazily, so a key that only ever served acceptor traffic has none.  A
proposer reply arriving for such a key is necessarily stale (this node
never originated a request for it) and is dropped, exactly as the
per-batch guards would drop it.

Unknown messages yield ``None`` so callers can drop them, like any
unreliable channel would.
"""

from __future__ import annotations

from typing import Any

from repro.core.acceptor import Acceptor
from repro.core.messages import (
    Merge,
    Merged,
    Prepare,
    PrepareAck,
    PrepareNack,
    Vote,
    Voted,
    VoteNack,
)
from repro.core.proposer import Proposer
from repro.net.node import Effects


def _acceptor_request(handler_name: str):
    def handle(
        acceptor: Acceptor,
        proposer: Proposer | None,
        src: str,
        message: Any,
        now: float,
    ) -> Effects:
        effects = Effects()
        effects.send(src, getattr(acceptor, handler_name)(message))
        return effects

    return handle


def _proposer_reply(handler_name: str):
    def handle(
        acceptor: Acceptor,
        proposer: Proposer | None,
        src: str,
        message: Any,
        now: float,
    ) -> Effects:
        if proposer is None:
            return Effects()
        return getattr(proposer, handler_name)(src, message, now)

    return handle


#: message type → handler(acceptor, proposer, src, message, now) -> Effects
PEER_DISPATCH = {
    Merge: _acceptor_request("handle_merge"),
    Prepare: _acceptor_request("handle_prepare"),
    Vote: _acceptor_request("handle_vote"),
    Merged: _proposer_reply("on_merged"),
    PrepareAck: _proposer_reply("on_prepare_ack"),
    PrepareNack: _proposer_reply("on_prepare_nack"),
    Voted: _proposer_reply("on_voted"),
    VoteNack: _proposer_reply("on_vote_nack"),
}


def dispatch_peer_message(
    acceptor: Acceptor,
    proposer: Proposer | None,
    src: str,
    message: Any,
    now: float,
) -> Effects | None:
    """Route one peer message; ``None`` means the type is not a peer message."""
    handler = PEER_DISPATCH.get(type(message))
    if handler is None:
        return None
    return handler(acceptor, proposer, src, message, now)
