"""Wire messages of CRDT Paxos.

Replica-to-replica messages carry at most one payload state and one round —
the paper's "message size overhead for coordination consists of a single
counter per message".  ``request_id`` strings correlate replies with the
originating request (or batch); acceptors echo them verbatim.

VOTED deliberately carries **no payload** (§3.6): the proposer already
knows the state it proposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.rounds import Round
from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import cached_wire_size as _cached_wire_size
from repro.net.message import wire_size as _wire_size


def _state_size(state: StateCRDT | None) -> int:
    # Memoized: one MERGE/PREPARE payload is broadcast to every peer and
    # its envelope sized per destination.
    return 0 if state is None else _cached_wire_size(state)


# ----------------------------------------------------------------------
# Client ↔ proposer
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ClientUpdate:
    """Submit an update function ``f_u ∈ U``; completes with UpdateDone."""

    request_id: str
    op: UpdateOp

    def wire_size(self) -> int:
        return 8 + self.op.wire_size()


@dataclass(frozen=True, slots=True)
class ClientQuery:
    """Submit a query function ``f_q ∈ Q``; completes with QueryDone."""

    request_id: str
    op: QueryOp

    def wire_size(self) -> int:
        return 8 + self.op.wire_size()


@dataclass(frozen=True, slots=True)
class UpdateDone:
    """Update completed (a quorum stores it).

    ``inclusion_tag`` is an opaque token identifying the update's effect in
    later payload states (e.g. ``(replica, slot value)`` for a G-Counter
    increment); the correctness checker uses it to verify Update Stability
    and Update Visibility.  It is None unless the replica was configured
    with an extractor.
    """

    request_id: str
    inclusion_tag: Any = None

    def wire_size(self) -> int:
        return 8 + _wire_size(self.inclusion_tag)


@dataclass(frozen=True, slots=True)
class QueryDone:
    """Query completed with ``result = f_q(learned state)``.

    Diagnostic fields: how many round trips the request cost, over how many
    attempts, whether the final learn came from the consistent-quorum fast
    path (``"fast"``) or a vote (``"vote"``), and the per-proposer learn
    sequence number (used to check GLA-Stability).
    """

    request_id: str
    result: Any
    round_trips: int
    attempts: int
    learned_via: str
    proposer: str
    learn_seq: int

    def wire_size(self) -> int:
        return 8 + _wire_size(self.result) + 20


# ----------------------------------------------------------------------
# Proposer → acceptor (and replies)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Merge:
    """Update path: merge this payload into the acceptor's state."""

    request_id: str
    state: StateCRDT

    def wire_size(self) -> int:
        return 8 + _state_size(self.state)


@dataclass(frozen=True, slots=True)
class Merged:
    """Acceptor acknowledgement of a Merge."""

    request_id: str

    def wire_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class Prepare:
    """Phase 1: announce intent to learn; round may be incremental.

    ``state`` is optional (§3.6: never ship ``s0``; shipping a recent local
    state speeds convergence but is not needed for safety).
    """

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT | None = None

    def wire_size(self) -> int:
        return 12 + self.round.wire_size() + _state_size(self.state)


@dataclass(frozen=True, slots=True)
class PrepareAck:
    """Acceptor accepted the prepare; carries its round and payload."""

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT

    def wire_size(self) -> int:
        return 12 + self.round.wire_size() + _state_size(self.state)


@dataclass(frozen=True, slots=True)
class PrepareNack:
    """Acceptor rejected a fixed prepare with a stale round number.

    Carries the acceptor's current round and payload so the proposer can
    retry with a larger number and a fresher state (§3.2, Retrying
    Requests).
    """

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT

    def wire_size(self) -> int:
        return 12 + self.round.wire_size() + _state_size(self.state)


@dataclass(frozen=True, slots=True)
class Vote:
    """Phase 2: propose to learn ``state`` under the prepared round."""

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT

    def wire_size(self) -> int:
        return 12 + self.round.wire_size() + _state_size(self.state)


@dataclass(frozen=True, slots=True)
class Voted:
    """Acceptor voted for the proposal (payload elided, §3.6)."""

    request_id: str
    attempt: int

    def wire_size(self) -> int:
        return 12


@dataclass(frozen=True, slots=True)
class VoteNack:
    """Acceptor denied the vote (its round moved); proposer must retry."""

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT

    def wire_size(self) -> int:
        return 12 + self.round.wire_size() + _state_size(self.state)
