"""Wire messages of CRDT Paxos.

Replica-to-replica messages carry at most one payload state and one round —
the paper's "message size overhead for coordination consists of a single
counter per message".  ``request_id`` strings correlate replies with the
originating request (or batch); acceptors echo them verbatim.

VOTED deliberately carries **no payload** (§3.6): the proposer already
knows the state it proposed.

Sizing is interned at both layers: the CRDT payload's size is memoized on
the payload object (next to its digest cache, via ``cached_wire_size``),
and the payload-carrying messages additionally memoize their *total* size
in a ``_size`` slot — a MERGE/PREPARE broadcast to N peers is sized once
on the protocol message, not once per envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.rounds import Round
from repro.crdt.base import QueryOp, StateCRDT, UpdateOp
from repro.net.message import cached_wire_size as _cached_wire_size
from repro.net.message import wire_size as _wire_size


def _state_size(state: StateCRDT | None) -> int:
    # Memoized: one MERGE/PREPARE payload is broadcast to every peer and
    # its envelope sized per destination.
    return 0 if state is None else _cached_wire_size(state)


#: Memo slot for a message's total wire size (init=False keeps it out of
#: the constructor, compare=False out of equality and hashing).
def _size_slot():
    return field(default=None, init=False, repr=False, compare=False)


def _intern_size(message, total: int) -> int:
    """Store a message's computed total size in its ``_size`` slot.

    One shared helper so the six payload-carrying messages do not each
    carry a private copy of the memoization logic.  ``total`` is computed
    by the caller only on a miss (``wire_size`` checks the slot first).
    """
    object.__setattr__(message, "_size", total)
    return total


# ----------------------------------------------------------------------
# Client ↔ proposer
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ClientUpdate:
    """Submit an update function ``f_u ∈ U``; completes with UpdateDone."""

    request_id: str
    op: UpdateOp

    def wire_size(self) -> int:
        return 8 + self.op.wire_size()


@dataclass(frozen=True, slots=True)
class ClientQuery:
    """Submit a query function ``f_q ∈ Q``; completes with QueryDone."""

    request_id: str
    op: QueryOp

    def wire_size(self) -> int:
        return 8 + self.op.wire_size()


@dataclass(frozen=True, slots=True)
class UpdateDone:
    """Update completed (a quorum stores it).

    ``inclusion_tag`` is an opaque token identifying the update's effect in
    later payload states (e.g. ``(replica, slot value)`` for a G-Counter
    increment); the correctness checker uses it to verify Update Stability
    and Update Visibility.  It is None unless the replica was configured
    with an extractor.
    """

    request_id: str
    inclusion_tag: Any = None

    def wire_size(self) -> int:
        return 8 + _wire_size(self.inclusion_tag)


@dataclass(frozen=True, slots=True)
class QueryDone:
    """Query completed with ``result = f_q(learned state)``.

    Diagnostic fields: how many round trips the request cost, over how many
    attempts, whether the final learn came from the consistent-quorum fast
    path (``"fast"``) or a vote (``"vote"``), and the per-proposer learn
    sequence number (used to check GLA-Stability).
    """

    request_id: str
    result: Any
    round_trips: int
    attempts: int
    learned_via: str
    proposer: str
    learn_seq: int

    def wire_size(self) -> int:
        return 8 + _wire_size(self.result) + 20


@dataclass(frozen=True, slots=True)
class Refused:
    """The replica gave up on a request and says so instead of going dark.

    ``code`` names the provable obstacle: ``"quorum"`` (the proposer's
    bounded re-drive budget expired without assembling a quorum — §2.1
    liveness needs a majority, and none is answering) or ``"storage"``
    (a ``write_through`` persist failed, so the ack that would promise
    durability is withheld).  A refusal is *not* a completion: the
    operation may be retried verbatim once the fault heals, and nothing
    about it has been promised to the client.
    """

    request_id: str
    code: str
    detail: str = ""

    def wire_size(self) -> int:
        return 8 + len(self.code) + len(self.detail)


# ----------------------------------------------------------------------
# Sharded routing / key migration (repro.sharding)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WrongGroup:
    """Refusal: this replica's group does not (or no longer does) own
    the key the command addressed.

    ``epoch`` is the highest routing epoch the refusing replica can
    attest for the key and ``group`` the owner it forwards to — a frozen
    or moved-out key answers with its migration's target, an
    unowned-by-table key with the ring owner.  Stale clients converge by
    folding ``(epoch, group)`` into their routing snapshot and retrying
    at the hint; like :class:`Refused`, nothing about the operation has
    been performed or promised.
    """

    request_id: str
    epoch: int
    group: str

    def wire_size(self) -> int:
        return 16 + len(self.group)


@dataclass(frozen=True, slots=True)
class MigrateFreeze:
    """Coordinator → source replicas: freeze one key for migration.

    On receipt the replica stops serving the key (clients get
    :class:`WrongGroup` forwarding to ``target`` at ``epoch``, peer
    protocol traffic for the key is dropped) and snapshots its §3.3
    ``(payload, round, learned-max)`` triple in a :class:`MigrateFrozen`
    reply.  The freeze is what makes the coordinator's quorum read
    sound: a frozen replica can never again ack a merge or vote, so any
    update that ever completes has pre-freeze acks at a quorum — which
    intersects the snapshot quorum.
    """

    request_id: str
    epoch: int
    target: str

    def wire_size(self) -> int:
        return 16 + len(self.target)


@dataclass(frozen=True, slots=True)
class MigrateFrozen:
    """Source replica → coordinator: the frozen key's durable triple."""

    request_id: str
    epoch: int
    round: Round
    state: StateCRDT
    learned_max: StateCRDT | None = None
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            return _intern_size(
                self,
                16
                + self.round.wire_size()
                + _state_size(self.state)
                + _state_size(self.learned_max),
            )
        return self._size


@dataclass(frozen=True, slots=True)
class MigrateInstall:
    """Coordinator → destination replicas: install the joined triple.

    ``state`` is the join over a source read quorum of frozen snapshots,
    ``round`` their maximum — exactly the rejoin-style refresh a
    hard-killed replica performs, pointed at a different group.  The
    destination folds the triple into its local pair (join / max) and
    buffers client commands for the key until :class:`MigrateCommit`.
    """

    request_id: str
    epoch: int
    round: Round
    state: StateCRDT
    learned_max: StateCRDT | None = None
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            return _intern_size(
                self,
                16
                + self.round.wire_size()
                + _state_size(self.state)
                + _state_size(self.learned_max),
            )
        return self._size


@dataclass(frozen=True, slots=True)
class MigrateInstalled:
    """Destination replica → coordinator: the triple is durable here."""

    request_id: str
    epoch: int

    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class MigrateCommit:
    """Coordinator → source *and* destination replicas: the move is law.

    Sent once a write quorum of the destination group holds the
    installed triple.  Source replicas drop the key's record and keep a
    durable moved-out mark (``epoch``/``target``) so late traffic gets a
    forwarding :class:`WrongGroup`; destination replicas mark the key
    moved-in and replay the client commands they buffered since install.
    """

    request_id: str
    epoch: int
    target: str

    def wire_size(self) -> int:
        return 16 + len(self.target)


@dataclass(frozen=True, slots=True)
class MigrateCommitAck:
    """Replica → coordinator: commit applied (idempotent re-ack)."""

    request_id: str
    epoch: int

    def wire_size(self) -> int:
        return 16


# ----------------------------------------------------------------------
# Proposer → acceptor (and replies)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Merge:
    """Update path: merge this payload into the acceptor's state.

    ``digest`` is the anti-entropy probe (delta mode only, see
    ``config.anti_entropy``): the proposer's *full-state* stable digest
    at send time.  The acceptor compares it against its own post-join
    digest and flags divergence in the MERGED ack — the cost on the wire
    is one integer, the paper's "single counter per message" discipline.
    ``None`` (the default, and always in full-state mode) disables the
    comparison.
    """

    request_id: str
    state: StateCRDT
    digest: int | None = None
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            extra = 0 if self.digest is None else 5
            return _intern_size(self, 8 + _state_size(self.state) + extra)
        return self._size


@dataclass(frozen=True, slots=True)
class Merged:
    """Acceptor acknowledgement of a Merge.

    ``diverged`` answers the Merge's anti-entropy probe: the acceptor's
    post-join full state hashed differently from the sender's digest —
    the two replicas hold different payloads (either may hold updates
    the other lacks).  Always ``False`` when the Merge carried no digest.
    """

    request_id: str
    diverged: bool = False

    def wire_size(self) -> int:
        return 9 if self.diverged else 8


@dataclass(frozen=True, slots=True)
class Prepare:
    """Phase 1: announce intent to learn; round may be incremental.

    ``state`` is optional (§3.6: never ship ``s0``; shipping a recent local
    state speeds convergence but is not needed for safety).
    """

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT | None = None
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            return _intern_size(
                self, 12 + self.round.wire_size() + _state_size(self.state)
            )
        return self._size


@dataclass(frozen=True, slots=True)
class PrepareAck:
    """Acceptor accepted the prepare; carries its round and payload."""

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            return _intern_size(
                self, 12 + self.round.wire_size() + _state_size(self.state)
            )
        return self._size


@dataclass(frozen=True, slots=True)
class PrepareNack:
    """Acceptor rejected a fixed prepare with a stale round number.

    Carries the acceptor's current round and payload so the proposer can
    retry with a larger number and a fresher state (§3.2, Retrying
    Requests).
    """

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            return _intern_size(
                self, 12 + self.round.wire_size() + _state_size(self.state)
            )
        return self._size


@dataclass(frozen=True, slots=True)
class Vote:
    """Phase 2: propose to learn ``state`` under the prepared round."""

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            return _intern_size(
                self, 12 + self.round.wire_size() + _state_size(self.state)
            )
        return self._size


@dataclass(frozen=True, slots=True)
class Voted:
    """Acceptor voted for the proposal (payload elided, §3.6)."""

    request_id: str
    attempt: int

    def wire_size(self) -> int:
        return 12


@dataclass(frozen=True, slots=True)
class VoteNack:
    """Acceptor denied the vote (its round moved); proposer must retry."""

    request_id: str
    attempt: int
    round: Round
    state: StateCRDT
    _size: int | None = _size_slot()

    def wire_size(self) -> int:
        if self._size is None:
            return _intern_size(
                self, 12 + self.round.wire_size() + _state_size(self.state)
            )
        return self._size
