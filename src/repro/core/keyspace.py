"""Keyed CRDT store: many independent protocol instances on one replica.

The paper's implementation lives inside the Scalaris key-value store —
"linearizable access on CRDT data on a fine-granular scale" (§1).  This
module provides that deployment shape: a :class:`KeyedCrdtReplica` hosts
one protocol instance *per key*, created on first touch from a per-key
initial state.  Keys are completely independent — an update to
``"cart:42"`` never synchronizes with a read of ``"views:7"`` — which is
exactly why the fine-granular deployment scales: contention is per key,
not per store.

Wire format: client messages and the inter-replica protocol messages are
wrapped in :class:`Keyed` envelopes carrying the key; unwrapped handling
is delegated to the shared peer-message router
(:mod:`repro.core.router`) against the per-key acceptor/proposer pair.

Million-key scaling rests on three mechanisms:

* **Flyweight sharing** — all per-key-identical state (config, peer
  list, quorum system, round-id source, batching phase, stats sink)
  lives in one :class:`~repro.core.proposer.ProposerShared` per replica;
  a key's own footprint is its acceptor (payload + round + counters) and,
  only if it ever proposes, slim open-request bookkeeping.
* **Lazy proposers** — a key materializes its proposer on the first
  *local* client command.  Keys this replica only ever serves acceptor
  traffic for (every key has exactly one such replica per client in the
  common single-home pattern, and N-1 such replicas in general) stay
  proposer-free forever.
* **Cold-key eviction** — past ``config.keyed_max_resident`` (or after
  ``config.keyed_idle_evict_s`` without a touch) the least-recently
  touched *quiescent* keys are demoted to a compact frozen record and
  rehydrated on the next touch.
* **Frozen-record spill** — with a :class:`~repro.storage.base.SpillStore`
  attached and ``config.keyed_max_frozen`` set, the oldest RAM-frozen
  records past the cap serialize their ``(payload, round, learned-max)``
  triple to the store and leave RAM entirely; a touch rehydrates them
  transparently.  The keyspace is then bounded by storage, not RAM.

**Two-tier demotion** (every arrow is transparent to clients)::

      resident instance  --freeze-->  RAM-frozen record  --spill-->  SpillStore
      (acceptor [+ lazy      |        (payload, round,       |       (same triple,
       proposer])            |         learned-max)          |        serialized)
            ^                |              ^                |
            +---- touch -----+              +---- touch -----+
                (rehydrate)                   (load + decode)

**Why eviction — and spill — needs no log (safety argument).**  The
paper's acceptor is logless: its entire durable state is the lattice
payload ``s`` and the highest observed round ``r`` (§3.3, "memory
overhead of a single counter per replica").  A frozen key preserves
exactly that pair, so rehydration is indistinguishable from an acceptor
that simply received no messages in between — there is no log suffix to
lose and no applied index to corrupt.  The same argument extends the
pair to disk: a spilled record *is* the acceptor's durable state, so
recovery (:meth:`KeyedCrdtReplica.recover`) needs no replay — attach
the store and every key's state is already final (Zheng & Garg make the
identical observation for lattice-agreement RSMs: join-semilattice
state subsumes the log).  Proposer state is bookkeeping for *open*
requests only; eviction requires
:attr:`~repro.core.proposer.Proposer.idle` (no open batches, buffers or
armed flush), and the one cross-request proposer field, the §3.4
learned maximum, only strengthens overlapping queries — which would
themselves be open batches and block eviction.  The only state that
must *outlive* keys is the trio of node-wide monotone counters (batch
ids, learn sequence, round ids); ``spill_all`` persists their snapshot
as store metadata so a recovered node can never reuse an identifier a
stale in-flight message might still answer.  Keys with envelopes parked
in the coalescing outbox are pinned resident until the flush — demotion
must never separate a key's record from its undelivered traffic.

Timer routing stays O(1) in the number of keys (a namespace→key index,
maintained on proposer materialization, replaces any scan), and
:meth:`Keyed.wire_size` memoizes like
:class:`~repro.net.message.Envelope` does, so broadcasting one keyed
payload to many peers sizes the inner CRDT once.

Two refinements ride on the frozen-record design:

* **Cross-key envelope coalescing** — with
  ``config.keyed_coalesce_window`` set, peer-bound ``Keyed`` envelopes
  park in a per-destination outbox and leave as one framed
  :class:`KeyedBatch` per peer per flush, amortizing per-envelope
  overhead at high key counts.  Replies to clients are never delayed.
  The savings are counted in the shared
  :class:`~repro.core.acceptor.AcceptorStats` sink.
* **GLA-Stability across eviction** — the §3.4 learned maximum is
  persisted in the frozen record next to the acceptor pair and seeds
  the rehydrated proposer, so states learned at this node for one key
  stay monotone in learn order across freeze/thaw generations (learn
  sequence numbers already come from a node-wide counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.core.acceptor import Acceptor, AcceptorStats
from repro.core.config import CrdtPaxosConfig
from repro.core.messages import ClientQuery, ClientUpdate
from repro.core.proposer import Proposer, ProposerShared, ProposerStats
from repro.core.router import dispatch_peer_message
from repro.crdt.base import StateCRDT
from repro.errors import ConfigurationError
from repro.net.message import ENVELOPE_OVERHEAD_BYTES
from repro.net.message import wire_size as _wire_size
from repro.net.node import Effects, ProtocolNode
from repro.quorum.system import MajorityQuorum, QuorumSystem
from repro.storage.base import SpillRecord, SpillStore

#: Reserved timer key for the idle-eviction sweep.  Cannot collide with
#: per-key timers, which are always namespaced ``<repr(key)>|<timer>``
#: (a repr never equals this bare token).
_SWEEP_TIMER = "keyspace-sweep"

#: Reserved timer key for the cross-key envelope-coalescing flush.
_COALESCE_TIMER = "keyspace-coalesce"


# No ``slots=True``: the memoized wire size lives in the instance dict
# (same pattern as Envelope.size_bytes).
@dataclass(frozen=True)
class Keyed:
    """Wrapper routing any protocol or client message to one key."""

    key: Hashable
    message: Any

    @property
    def request_id(self) -> Any:
        """Delegate correlation ids so request/reply clients (e.g. the
        asyncio client) can match keyed replies transparently."""
        return getattr(self.message, "request_id", None)

    def wire_size(self) -> int:
        """Total size of key + inner message; memoized — one Keyed object
        is broadcast to every peer, and sizing a large CRDT payload per
        envelope was a top profile entry at 10k-key scale."""
        cached = self.__dict__.get("_size")
        if cached is None:
            cached = _wire_size(self.key) + _wire_size(self.message)
            object.__setattr__(self, "_size", cached)
        return cached


# No ``slots=True`` for the same memoized-size reason as Keyed.
@dataclass(frozen=True)
class KeyedBatch:
    """One framed envelope carrying many per-key messages to one peer.

    At high key counts a replica emits many small :class:`Keyed` messages
    to the same destination per flush; packing them into one envelope
    amortizes the per-message framing overhead
    (``config.keyed_coalesce_window``).  The receiving replica unpacks
    and routes each item through the ordinary keyed dispatch, so the
    batch is pure transport framing — it carries no protocol meaning.
    """

    items: tuple[Keyed, ...]

    def wire_size(self) -> int:
        cached = self.__dict__.get("_size")
        if cached is None:
            cached = 8 + sum(item.wire_size() for item in self.items)
            object.__setattr__(self, "_size", cached)
        return cached


class _FrozenKey:
    """A demoted quiescent key: the acceptor's entire durable state.

    Payload plus round watermark — the paper's logless acceptor state,
    bit for bit — plus the §3.4 learned maximum when GLA-Stability is on,
    so the per-proposer monotonicity window survives freeze/thaw.
    Everything else about the instance is reconstructed on rehydration
    (observability counters restart at zero).
    """

    __slots__ = ("state", "round", "learned_max")

    def __init__(
        self,
        state: StateCRDT,
        round: Any,
        learned_max: StateCRDT | None = None,
    ) -> None:
        self.state = state
        self.round = round
        self.learned_max = learned_max


class _KeyInstance:
    """One resident key's machinery: acceptor always, proposer lazily."""

    __slots__ = ("acceptor", "proposer", "touch_seq", "touched_at", "learned_max")

    def __init__(self, acceptor: Acceptor) -> None:
        self.acceptor = acceptor
        self.proposer: Proposer | None = None
        #: Monotonic recency stamp (LRU order for capacity eviction).
        self.touch_seq = 0
        #: Driver time of the last message/timer touch (idle eviction).
        #: None until the first clocked touch — admissions via bare
        #: instance()/materialize_proposer() carry no clock.
        self.touched_at: float | None = None
        #: §3.4 learned maximum thawed from a frozen record, parked here
        #: until (unless) the key materializes a proposer to adopt it.
        self.learned_max: StateCRDT | None = None


class KeyedCrdtReplica(ProtocolNode):
    """A replica hosting an independent CRDT Paxos instance per key.

    Parameters
    ----------
    initial_state_for:
        ``key → bottom payload`` factory; called once per key on first
        touch and must be deterministic across replicas (all members must
        agree on a key's type).
    eager:
        Ablation/benchmark baseline: materialize the full pre-flyweight
        instance on first touch — a private
        :class:`~repro.core.proposer.ProposerShared` (config, peer list,
        round-id source and stats copied per key), an eagerly built
        proposer and an eager timer-namespace registration.  This is the
        shape the seed design gave every key; the keyed-scale benchmark
        measures the flyweight's resident bytes/key against it.
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        initial_state_for: Callable[[Hashable], StateCRDT],
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
        eager: bool = False,
        spill_store: SpillStore | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.config = config or CrdtPaxosConfig()
        self.quorum = quorum or MajorityQuorum(peers)
        self._initial_state_for = initial_state_for
        self._eager = eager
        if self.config.keyed_max_frozen is not None and spill_store is None:
            raise ConfigurationError(
                "keyed_max_frozen requires a spill_store (frozen records "
                "past the cap must have somewhere to go)"
            )
        self._spill_store = spill_store
        #: Flyweight context shared by every per-key proposer (stats too:
        #: the counters aggregate across keys, one sink per replica).
        self._shared = ProposerShared(
            node_id, self.peers, self.quorum, self.config, stats=ProposerStats()
        )
        #: One acceptor-stats sink per replica too (counters aggregate).
        self._acceptor_stats = AcceptorStats()
        self._resident: dict[Hashable, _KeyInstance] = {}
        self._frozen: dict[Hashable, _FrozenKey] = {}
        #: Cross-key envelope coalescing: peer-bound Keyed envelopes wait
        #: here until the coalesce flush packs one KeyedBatch per peer.
        #: Per destination, an insertion-ordered map whose slot key is
        #: ``(key, message type, request id, attempt)`` — parking a fresh
        #: envelope for an already-parked slot *supersedes* the old one in
        #: place (same position, newer payload) instead of queueing a
        #: duplicate; this is what makes update-timeout re-drives
        #: coalescing-aware (the re-driven MERGE replaces the parked one).
        self._remote_peers = frozenset(peers) - {node_id}
        self._outbox: dict[str, dict[tuple, Keyed]] = {}
        #: How many outbox envelopes reference each key; a parked key is
        #: pinned resident (demotion must not separate a key's record
        #: from its undelivered traffic).
        self._parked_count: dict[Hashable, int] = {}
        self._coalesce_armed = False
        #: Timer-namespace index: ``repr(key)`` → key.  Keeps
        #: :meth:`on_timer` O(1) in the number of keys.  Registered only
        #: when a key materializes a proposer — acceptor-only keys never
        #: arm timers, so they never pay the repr-string entry.
        self._namespaces: dict[str, Hashable] = {}
        self._touch_seq = 0
        #: Eviction observability.
        self.evictions = 0
        self.rehydrations = 0
        #: Spill-tier observability: records written to / loaded from the
        #: spill store (spill_loads also count toward rehydrations).
        self.spills = 0
        self.spill_loads = 0

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        spill_store: SpillStore,
        node_id: str,
        peers: list[str],
        initial_state_for: Callable[[Hashable], StateCRDT],
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
    ) -> "KeyedCrdtReplica":
        """Rebuild a replica purely from its spill store after a restart.

        Recovery is O(1) in the number of keys: no record is replayed or
        even read — every spilled ``(payload, round, learned-max)``
        triple *is* its key's final durable state (§3.3; there is no
        log), so keys stay in the store and rehydrate lazily on first
        touch.  The only eagerly restored state is the store's metadata
        snapshot of the node-wide monotone counters (batch ids, learn
        sequence, round ids), which must survive the restart so the new
        process generation cannot reuse an identifier a stale in-flight
        message might still answer.

        The snapshot is complete only if the previous generation called
        :meth:`spill_all` before dying (the shutdown/kill hook); state
        that never reached the store died with the process, exactly like
        an acceptor that synced its pair before acking and crashed
        before the next write.
        """
        replica = cls(
            node_id,
            peers,
            initial_state_for,
            config,
            quorum,
            spill_store=spill_store,
        )
        meta = spill_store.get_meta()
        if meta is not None:
            replica._shared.restore_counters(meta)
        return replica

    @property
    def stats(self) -> ProposerStats:
        """Aggregate proposer counters across every key (flyweight sink)."""
        return self._shared.stats

    @property
    def acceptor_stats(self) -> AcceptorStats:
        """Aggregate acceptor counters across every key — including the
        KeyedBatch coalescing savings (packed/unpacked/bytes saved)."""
        return self._acceptor_stats

    def instance(self, key: Hashable, now: float | None = None) -> _KeyInstance:
        """The per-key machinery, created (or rehydrated) on first touch.

        Capacity eviction deliberately does NOT run here: the caller may
        be mid-delivery, about to open protocol state on this instance,
        and evicting it (or a key the caller also holds) under its feet
        would orphan that state.  :meth:`on_message`/:meth:`on_timer`
        evict *after* the handling step, when open requests are visible
        to the quiescence check.
        """
        inst = self._resident.get(key)
        if inst is None:
            inst = self._admit(key)
        self._touch_seq += 1
        inst.touch_seq = self._touch_seq
        if now is not None:
            inst.touched_at = now
        return inst

    def _admit(self, key: Hashable) -> _KeyInstance:
        # Eager (pre-flyweight) instances carry private stats sinks, like
        # the seed design; flyweight instances share the replica's.
        stats = AcceptorStats() if self._eager else self._acceptor_stats
        frozen = self._frozen.pop(key, None)
        if frozen is None and self._spill_store is not None:
            # Second demotion tier: the key may live in the spill store
            # (either spilled by this generation or recovered from a
            # previous one).  The loaded triple is bit-for-bit the frozen
            # record, so rehydration is the same code path.
            record = self._spill_store.get(key)
            if record is not None:
                frozen = _FrozenKey(record.state, record.round, record.learned_max)
                self.spill_loads += 1
        if frozen is not None:
            acceptor = Acceptor(frozen.state, round=frozen.round, stats=stats)
            self.rehydrations += 1
        else:
            acceptor = Acceptor(self._initial_state_for(key), stats=stats)
        inst = _KeyInstance(acceptor)
        if frozen is not None:
            inst.learned_max = frozen.learned_max
        self._resident[key] = inst
        if self._eager:
            self._materialize(key, inst)
        return inst

    def _materialize(self, key: Hashable, inst: _KeyInstance) -> Proposer:
        """Build the key's proposer on its first local client command."""
        if inst.proposer is None:
            if self._eager:
                # Pre-flyweight shape: nothing hoisted, every key carries
                # its own context (and its own stats sink).
                shared = ProposerShared(
                    self.node_id, self.peers, self.quorum, self.config
                )
            else:
                shared = self._shared
            inst.proposer = Proposer(
                shared,
                inst.acceptor,
                self._initial_state_for(key),
                learned_max=inst.learned_max,
            )
            # First registration wins, matching the old first-match scan
            # for (pathological) distinct keys sharing a repr.
            self._namespaces.setdefault(repr(key), key)
        return inst.proposer

    def materialize_proposer(self, key: Hashable) -> Proposer:
        """Public hook (benchmarks, warm-up): force a key's proposer."""
        return self._materialize(key, self.instance(key))

    def keys(self) -> list[Hashable]:
        known: dict[Hashable, None] = dict.fromkeys(self._resident)
        known.update(dict.fromkeys(self._frozen))
        if self._spill_store is not None:
            # A rehydrated key may still hold a (stale) spilled record;
            # the dict union dedupes it.
            known.update(dict.fromkeys(self._spill_store.keys()))
        return list(known)

    def resident_count(self) -> int:
        return len(self._resident)

    def frozen_count(self) -> int:
        return len(self._frozen)

    def spilled_count(self) -> int:
        """Records currently held by the spill store (may include stale
        copies of keys that have since been rehydrated; refreshed on the
        next spill of those keys)."""
        return len(self._spill_store) if self._spill_store is not None else 0

    def state_of(self, key: Hashable) -> StateCRDT:
        """Diagnostic peek at a key's payload — never admits or rehydrates.

        Checks the three tiers in order (resident, RAM-frozen, spilled);
        a key this replica has never seen answers with its bottom
        element, exactly what a fresh admission would hold, without
        creating one (a monitoring scan over a watchlist must not grow
        the resident set past its cap).
        """
        resident = self._resident.get(key)
        if resident is not None:
            return resident.acceptor.state
        frozen = self._frozen.get(key)
        if frozen is not None:  # no rehydration churn
            return frozen.state
        if self._spill_store is not None:
            record = self._spill_store.get(key)
            if record is not None:  # decode without admitting
                return record.state
        return self._initial_state_for(key)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _freeze(self, key: Hashable, inst: _KeyInstance) -> bool:
        """Demote one quiescent key to its frozen record; False if busy.

        A key with envelopes parked in the coalescing outbox counts as
        busy: demoting (and potentially spilling) it while its traffic
        is undelivered could strand those envelopes across a shutdown —
        the key stays pinned until the coalesce flush drains them.
        """
        proposer = inst.proposer
        if proposer is not None and not proposer.idle:
            return False
        if self._parked_count.get(key):
            return False
        # Persist the §3.4 learned maximum alongside the acceptor pair —
        # either the live proposer's or one thawed earlier that never got
        # adopted (the key froze again before proposing locally).
        learned_max = (
            proposer.learned_max if proposer is not None else inst.learned_max
        )
        self._frozen[key] = _FrozenKey(
            inst.acceptor.state, inst.acceptor.round, learned_max
        )
        del self._resident[key]
        namespace = repr(key)
        if self._namespaces.get(namespace) == key:
            del self._namespaces[namespace]
        self.evictions += 1
        return True

    def _evict_excess(self) -> None:
        cap = self.config.keyed_max_resident
        if cap is None or len(self._resident) <= cap:
            return
        # Demote ~10% below the cap (at least one extra) so a store
        # sitting at capacity does not re-sort the resident set on every
        # admission (amortized O(log n) per admission).  Busy keys are
        # skipped — the cap is soft by design; open protocol requests pin
        # their instances (and if everything is pinned, the sort repeats
        # until some key quiesces).
        target = (len(self._resident) - cap) + max(1, cap // 10)
        by_age = sorted(self._resident.items(), key=lambda kv: kv[1].touch_seq)
        for key, inst in by_age:
            if target <= 0:
                break
            if self._freeze(key, inst):
                target -= 1
        self._spill_excess()

    def _spill_excess(self) -> None:
        """Second demotion tier: oldest RAM-frozen records past
        ``keyed_max_frozen`` serialize to the spill store and leave RAM.

        Freeze order is dict insertion order, so iteration from the
        front spills the records frozen longest ago — the coldest of the
        cold.  Safe by the same §3.3 argument as freezing itself: the
        serialized triple is the acceptor's entire durable state.
        """
        cap = self.config.keyed_max_frozen
        if cap is None or len(self._frozen) <= cap:
            return
        store = self._spill_store
        assert store is not None  # enforced at construction
        overflow = len(self._frozen) - cap
        for key in list(self._frozen)[:overflow]:
            frozen = self._frozen.pop(key)
            store.put(
                key, SpillRecord(frozen.state, frozen.round, frozen.learned_max)
            )
            self.spills += 1

    def spill_all(self) -> Effects:
        """Persist a complete durable snapshot (shutdown/kill hook).

        Flushes the coalescing outbox first (parked envelopes must not
        be stranded by a shutdown), then writes *every* key's
        ``(payload, round, learned-max)`` triple to the spill store:
        frozen records are spilled and dropped from RAM, quiescent
        resident keys are frozen, spilled and dropped, and busy resident
        keys (open batches pin them) are snapshotted but stay resident —
        their open client requests die with the process, exactly like a
        crash, but their acceptor state is durable.  Finally the shared
        monotone counters are persisted as store metadata and the store
        is flushed.

        Returns the outbox-flush effects; a driver shutting the node
        down should still deliver them (they are acks and replies that
        "made it out" before the process died).
        """
        store = self._spill_store
        if store is None:
            raise ConfigurationError(
                "spill_all requires a spill_store attached to this replica"
            )
        effects = self._flush_outbox()
        for key, frozen in list(self._frozen.items()):
            store.put(
                key, SpillRecord(frozen.state, frozen.round, frozen.learned_max)
            )
            del self._frozen[key]
            self.spills += 1
        for key, inst in list(self._resident.items()):
            proposer = inst.proposer
            learned_max = (
                proposer.learned_max if proposer is not None else inst.learned_max
            )
            store.put(
                key,
                SpillRecord(inst.acceptor.state, inst.acceptor.round, learned_max),
            )
            self.spills += 1
            if self._freeze(key, inst):
                # Quiescent: _freeze moved it to the frozen dict (and
                # cleaned up its namespace entry); it is already spilled,
                # so drop the RAM record too.
                del self._frozen[key]
        store.put_meta(self._shared.counter_snapshot())
        store.flush()
        return effects

    def flush(self) -> Effects:
        """Operator-side maintenance flush (the api ``Store.flush()``).

        Drains the coalescing outbox and, when a spill store is
        attached, persists the full durable snapshot via
        :meth:`spill_all`.  Returns the effects the driver must still
        execute (the drained outbox envelopes).
        """
        if self._spill_store is not None:
            return self.spill_all()
        return self._flush_outbox()

    def _sweep(self, now: float) -> Effects:
        effects = Effects()
        idle_s = self.config.keyed_idle_evict_s
        if idle_s is None:
            return effects
        cutoff = now - idle_s
        for key, inst in list(self._resident.items()):
            if inst.touched_at is None:
                # Admitted without a clock (warm-up via instance() or
                # materialize_proposer()): start its idle window at this
                # sweep instead of freezing the just-warmed key.
                inst.touched_at = now
            elif inst.touched_at <= cutoff:
                self._freeze(key, inst)
        self._spill_excess()
        effects.set_timer(_SWEEP_TIMER, idle_s)
        return effects

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> Effects:
        effects = Effects()
        if self.config.keyed_idle_evict_s is not None:
            effects.set_timer(_SWEEP_TIMER, self.config.keyed_idle_evict_s)
        # Crash recovery loses timers but not internal state: envelopes
        # parked in the outbox must get a fresh flush tick.
        self._coalesce_armed = False
        if self._outbox:
            self._coalesce_armed = True
            effects.set_timer(_COALESCE_TIMER, self.config.keyed_coalesce_window or 0.001)
        return effects

    def on_message(self, src: str, message: Any, now: float) -> Effects:
        if isinstance(message, KeyedBatch):
            # Transport framing only: route every item through the
            # ordinary keyed dispatch, folding the effects in order.
            self._acceptor_stats.keyed_batches_unpacked += 1
            effects = Effects()
            for item in message.items:
                effects.merge(self.on_message(src, item, now))
            return effects
        if not isinstance(message, Keyed):
            return Effects()  # unkeyed traffic is not ours
        key = message.key
        inner = message.message
        instance = self.instance(key, now)

        if isinstance(inner, ClientUpdate):
            effects = self._materialize(key, instance).client_update(
                src, inner.request_id, inner.op, now
            )
        elif isinstance(inner, ClientQuery):
            effects = self._materialize(key, instance).client_query(
                src, inner.request_id, inner.op, now
            )
        else:
            effects = self._on_peer_message(instance, src, inner, now)
        wrapped = self._wrap(key, effects)
        self._evict_excess()
        return wrapped

    def _on_peer_message(
        self, instance: _KeyInstance, src: str, inner: Any, now: float
    ) -> Effects:
        effects = dispatch_peer_message(
            instance.acceptor, instance.proposer, src, inner, now
        )
        return effects if effects is not None else Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        if key == _SWEEP_TIMER:
            return self._sweep(now)
        if key == _COALESCE_TIMER:
            return self._flush_outbox()
        # Timer keys are namespaced "<repr(key)>|<proposer key>"; the
        # namespace index resolves them in O(1) regardless of keyspace
        # size.  Split at the LAST '|' — proposer timer keys never
        # contain one, but a key's repr may.  A timer for an evicted (or
        # never-proposing) key is stale by construction — eviction
        # requires an idle proposer, whose timers have all fired or been
        # cancelled — and is dropped.
        namespace, _, proposer_key = key.rpartition("|")
        candidate = self._namespaces.get(namespace)
        if candidate is None:
            return Effects()
        instance = self._resident.get(candidate)
        if instance is None or instance.proposer is None:
            return Effects()
        self._touch_seq += 1
        instance.touch_seq = self._touch_seq
        instance.touched_at = now
        wrapped = self._wrap(candidate, instance.proposer.on_timer(proposer_key, now))
        self._evict_excess()
        return wrapped

    # ------------------------------------------------------------------
    def _wrap(self, key: Hashable, effects: Effects) -> Effects:
        """Wrap outgoing sends in Keyed envelopes and namespace timers.

        Replies to clients are wrapped too, so client code can route by
        key; adapters unwrap transparently.  A broadcast lists the same
        inner message once per destination; sharing one ``Keyed`` wrapper
        across those sends is what makes its ``wire_size`` memo pay — the
        payload is sized once per broadcast instead of once per envelope.

        With ``keyed_coalesce_window`` set, peer-bound envelopes detour
        through the outbox and leave as one :class:`KeyedBatch` per peer
        at the next coalesce flush; client-bound replies always go out
        immediately (a reply delayed is a request slowed).  Parking is
        *superseding*: a fresh envelope whose (key, message type,
        request id, attempt) slot is already parked for the destination
        replaces the old envelope in place — same flush position, newer
        payload.  This is what makes update-timeout re-drives
        coalescing-aware: a re-driven MERGE for a batch whose original
        MERGE still sits parked replaces it instead of queueing a
        duplicate behind it (the re-drive payload subsumes the parked
        one, so nothing is lost and nothing arrives out of date).
        """
        wrapped = Effects()
        coalesce = self.config.keyed_coalesce_window
        shared: dict[int, Keyed] = {}
        for dst, message in effects.sends:
            keyed = shared.get(id(message))
            if keyed is None:
                keyed = Keyed(key=key, message=message)
                shared[id(message)] = keyed
            if coalesce is not None and dst in self._remote_peers:
                bucket = self._outbox.setdefault(dst, {})
                slot = (
                    key,
                    type(message).__name__,
                    getattr(message, "request_id", None),
                    getattr(message, "attempt", None),
                )
                if slot in bucket:
                    self._acceptor_stats.keyed_envelopes_superseded += 1
                else:
                    self._parked_count[key] = self._parked_count.get(key, 0) + 1
                bucket[slot] = keyed
                if not self._coalesce_armed:
                    self._coalesce_armed = True
                    wrapped.set_timer(_COALESCE_TIMER, coalesce)
            else:
                wrapped.send(dst, keyed)
        for timer_key, delay in effects.timers:
            wrapped.set_timer(f"{key!r}|{timer_key}", delay)
        for timer_key in effects.cancels:
            wrapped.cancel_timer(f"{key!r}|{timer_key}")
        return wrapped

    def _flush_outbox(self) -> Effects:
        """Coalesce flush: one framed envelope per peer with traffic."""
        effects = Effects()
        self._coalesce_armed = False
        if not self._outbox:
            return effects
        outbox, self._outbox = self._outbox, {}
        self._parked_count.clear()
        stats = self._acceptor_stats
        for dst, bucket in outbox.items():
            items = list(bucket.values())
            if len(items) == 1:  # nothing to amortize; skip the framing
                effects.send(dst, items[0])
                continue
            effects.send(dst, KeyedBatch(items=tuple(items)))
            stats.keyed_batches_packed += 1
            stats.keyed_batch_messages += len(items)
            stats.keyed_batch_bytes_saved += (
                len(items) - 1
            ) * ENVELOPE_OVERHEAD_BYTES
        return effects
