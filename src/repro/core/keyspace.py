"""Keyed CRDT store: many independent protocol instances on one replica.

The paper's implementation lives inside the Scalaris key-value store —
"linearizable access on CRDT data on a fine-granular scale" (§1).  This
module provides that deployment shape: a :class:`KeyedCrdtReplica` hosts
one protocol instance *per key*, created on first touch from a per-key
initial state.  Keys are completely independent — an update to
``"cart:42"`` never synchronizes with a read of ``"views:7"`` — which is
exactly why the fine-granular deployment scales: contention is per key,
not per store.

Wire format: client messages and the inter-replica protocol messages are
wrapped in :class:`Keyed` envelopes carrying the key; unwrapped handling
is delegated to the shared peer-message router
(:mod:`repro.core.router`) against the per-key acceptor/proposer pair.

Million-key scaling rests on three mechanisms:

* **Flyweight sharing** — all per-key-identical state (config, peer
  list, quorum system, round-id source, batching phase, stats sink)
  lives in one :class:`~repro.core.proposer.ProposerShared` per replica;
  a key's own footprint is its acceptor (payload + round + counters) and,
  only if it ever proposes, slim open-request bookkeeping.
* **Lazy proposers** — a key materializes its proposer on the first
  *local* client command.  Keys this replica only ever serves acceptor
  traffic for (every key has exactly one such replica per client in the
  common single-home pattern, and N-1 such replicas in general) stay
  proposer-free forever.
* **Cold-key eviction** — past ``config.keyed_max_resident`` (or after
  ``config.keyed_idle_evict_s`` without a touch) the least-recently
  touched *quiescent* keys are demoted to a compact frozen record and
  rehydrated on the next touch.
* **Frozen-record spill** — with a :class:`~repro.storage.base.SpillStore`
  attached and ``config.keyed_max_frozen`` set, the oldest RAM-frozen
  records past the cap serialize their ``(payload, round, learned-max)``
  triple to the store and leave RAM entirely; a touch rehydrates them
  transparently.  The keyspace is then bounded by storage, not RAM.

**Two-tier demotion** (every arrow is transparent to clients)::

      resident instance  --freeze-->  RAM-frozen record  --spill-->  SpillStore
      (acceptor [+ lazy      |        (payload, round,       |       (same triple,
       proposer])            |         learned-max)          |        serialized)
            ^                |              ^                |
            +---- touch -----+              +---- touch -----+
                (rehydrate)                   (load + decode)

**Why eviction — and spill — needs no log (safety argument).**  The
paper's acceptor is logless: its entire durable state is the lattice
payload ``s`` and the highest observed round ``r`` (§3.3, "memory
overhead of a single counter per replica").  A frozen key preserves
exactly that pair, so rehydration is indistinguishable from an acceptor
that simply received no messages in between — there is no log suffix to
lose and no applied index to corrupt.  The same argument extends the
pair to disk: a spilled record *is* the acceptor's durable state, so
recovery (:meth:`KeyedCrdtReplica.recover`) needs no replay — attach
the store and every key's state is already final (Zheng & Garg make the
identical observation for lattice-agreement RSMs: join-semilattice
state subsumes the log).  Proposer state is bookkeeping for *open*
requests only; eviction requires
:attr:`~repro.core.proposer.Proposer.idle` (no open batches, buffers or
armed flush), and the one cross-request proposer field, the §3.4
learned maximum, only strengthens overlapping queries — which would
themselves be open batches and block eviction.  The only state that
must *outlive* keys is the trio of node-wide monotone counters (batch
ids, learn sequence, round ids); ``spill_all`` persists their snapshot
as store metadata so a recovered node can never reuse an identifier a
stale in-flight message might still answer.  Keys with envelopes parked
in the coalescing outbox are pinned resident until the flush — demotion
must never separate a key's record from its undelivered traffic.

Timer routing stays O(1) in the number of keys (a namespace→key index,
maintained on proposer materialization, replaces any scan), and
:meth:`Keyed.wire_size` memoizes like
:class:`~repro.net.message.Envelope` does, so broadcasting one keyed
payload to many peers sizes the inner CRDT once.

Two refinements ride on the frozen-record design:

* **Cross-key envelope coalescing** — with
  ``config.keyed_coalesce_window`` set, peer-bound ``Keyed`` envelopes
  park in a per-destination outbox and leave as one framed
  :class:`KeyedBatch` per peer per flush, amortizing per-envelope
  overhead at high key counts.  Replies to clients are never delayed.
  The savings are counted in the shared
  :class:`~repro.core.acceptor.AcceptorStats` sink.
* **GLA-Stability across eviction** — the §3.4 learned maximum is
  persisted in the frozen record next to the acceptor pair and seeds
  the rehydrated proposer, so states learned at this node for one key
  stay monotone in learn order across freeze/thaw generations (learn
  sequence numbers already come from a node-wide counter).

**Surviving kill -9.**  ``config.durability`` turns the spill store into
the acceptor's fsync target: ``write_through`` persists a key's triple
inside the handling step, before any ack escapes (see
:mod:`repro.storage` for the mode semantics), and ``group_sync`` batches
the flush behind a group-commit tick while parking the certifying acks.
A replica recovered from a store *without* those guarantees (no
clean-shutdown marker, dead generation ran ``durability="none"``) must
pass ``rejoin=True`` to :meth:`KeyedCrdtReplica.recover`: every stored
key is then refreshed from a read quorum — one §3.3 prepare, no log
shipping — before it serves traffic again (:meth:`rejoin`).
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.core.acceptor import Acceptor, AcceptorStats
from repro.core.config import CrdtPaxosConfig
from repro.core.messages import (
    ClientQuery,
    ClientUpdate,
    Merged,
    MigrateCommit,
    MigrateCommitAck,
    MigrateFreeze,
    MigrateFrozen,
    MigrateInstall,
    MigrateInstalled,
    Prepare,
    PrepareAck,
    PrepareNack,
    QueryDone,
    Refused,
    UpdateDone,
    Voted,
    WrongGroup,
)
from repro.core.proposer import Proposer, ProposerShared, ProposerStats
from repro.core.rounds import Round
from repro.core.router import dispatch_peer_message
from repro.crdt.base import StateCRDT
from repro.errors import ConfigurationError, StaleRecoveryError, StorageUnavailable
from repro.net.message import ENVELOPE_OVERHEAD_BYTES
from repro.net.message import wire_size as _wire_size
from repro.net.node import Effects, ProtocolNode
from repro.quorum.system import MajorityQuorum, QuorumSystem
from repro.storage.base import SpillRecord, SpillStore

#: Reserved timer key for the idle-eviction sweep.  Cannot collide with
#: per-key timers, which are always namespaced ``<repr(key)>|<timer>``
#: (a repr never equals this bare token).
_SWEEP_TIMER = "keyspace-sweep"

#: Reserved timer key for the cross-key envelope-coalescing flush.
_COALESCE_TIMER = "keyspace-coalesce"

#: Adaptive coalescing aims for about this many parked envelopes per
#: flush window: small enough to keep added latency near one batch's
#: worth of arrivals, large enough to amortize the per-envelope overhead.
_COALESCE_TARGET_BATCH = 8

#: EWMA smoothing for the per-peer enqueue-interval estimate.
_COALESCE_EWMA_ALPHA = 0.2

#: Reserved timer key for the group-commit flush (``durability="group_sync"``).
_SYNC_TIMER = "keyspace-sync"

#: Per-key timer token for re-driving an open quorum-rejoin refresh.
#: Namespaced like proposer timers (``<repr(key)>|rejoin``); proposer
#: timer keys are ``flush``/``retry:*``/``uto:*``/``qto:*``, so no clash.
_REJOIN_TIMER = "rejoin"

#: How far ahead of the persisted watermark the node-wide monotone
#: counters are reserved.  Persisting every bump would double the write
#: rate; instead the meta snapshot leases a margin and a recovered node
#: skips to the end of it (ids may be skipped, never reused).
_COUNTER_LEASE = 256

#: Message types whose receipt certifies durable state at this replica —
#: the protocol acks a learn certificate can rest on (MERGED /
#: PREPARE-ACK / VOTED) plus the client-visible completions.  The
#: migration replies belong here too: a MIGRATE-FROZEN snapshot, an
#: installed triple and a commit ack are promises the coordinator builds
#: the move on, so they must rest on persisted state.  Under
#: ``group_sync`` these park until a flush covers the state they attest;
#: requests and nacks leak nothing a certificate can use, so they flow.
_CERTIFYING = (
    Merged,
    PrepareAck,
    Voted,
    UpdateDone,
    QueryDone,
    MigrateFrozen,
    MigrateInstalled,
    MigrateCommitAck,
)

#: Migration commands a replica handles from a coordinator (the replies
#: above are the coordinator's side of the conversation).
_MIGRATION_COMMANDS = (MigrateFreeze, MigrateInstall, MigrateCommit)


# No ``slots=True``: the memoized wire size lives in the instance dict
# (same pattern as Envelope.size_bytes).
@dataclass(frozen=True)
class Keyed:
    """Wrapper routing any protocol or client message to one key."""

    key: Hashable
    message: Any

    @property
    def request_id(self) -> Any:
        """Delegate correlation ids so request/reply clients (e.g. the
        asyncio client) can match keyed replies transparently."""
        return getattr(self.message, "request_id", None)

    def wire_size(self) -> int:
        """Total size of key + inner message; memoized — one Keyed object
        is broadcast to every peer, and sizing a large CRDT payload per
        envelope was a top profile entry at 10k-key scale."""
        cached = self.__dict__.get("_size")
        if cached is None:
            cached = _wire_size(self.key) + _wire_size(self.message)
            object.__setattr__(self, "_size", cached)
        return cached


# No ``slots=True`` for the same memoized-size reason as Keyed.
@dataclass(frozen=True)
class KeyedBatch:
    """One framed envelope carrying many per-key messages to one peer.

    At high key counts a replica emits many small :class:`Keyed` messages
    to the same destination per flush; packing them into one envelope
    amortizes the per-message framing overhead
    (``config.keyed_coalesce_window``).  The receiving replica unpacks
    and routes each item through the ordinary keyed dispatch, so the
    batch is pure transport framing — it carries no protocol meaning.
    """

    items: tuple[Keyed, ...]

    def wire_size(self) -> int:
        cached = self.__dict__.get("_size")
        if cached is None:
            cached = 8 + sum(item.wire_size() for item in self.items)
            object.__setattr__(self, "_size", cached)
        return cached


class _FrozenKey:
    """A demoted quiescent key: the acceptor's entire durable state.

    Payload plus round watermark — the paper's logless acceptor state,
    bit for bit — plus the §3.4 learned maximum when GLA-Stability is on,
    so the per-proposer monotonicity window survives freeze/thaw.
    Everything else about the instance is reconstructed on rehydration
    (observability counters restart at zero).
    """

    __slots__ = ("state", "round", "learned_max")

    def __init__(
        self,
        state: StateCRDT,
        round: Any,
        learned_max: StateCRDT | None = None,
    ) -> None:
        self.state = state
        self.round = round
        self.learned_max = learned_max


class _KeyInstance:
    """One resident key's machinery: acceptor always, proposer lazily."""

    __slots__ = (
        "acceptor",
        "proposer",
        "touch_seq",
        "touched_at",
        "learned_max",
    )

    def __init__(self, acceptor: Acceptor) -> None:
        self.acceptor = acceptor
        self.proposer: Proposer | None = None
        #: Monotonic recency stamp (LRU order for capacity eviction).
        self.touch_seq = 0
        #: Driver time of the last message/timer touch (idle eviction).
        #: None until the first clocked touch — admissions via bare
        #: instance()/materialize_proposer() carry no clock.
        self.touched_at: float | None = None
        #: §3.4 learned maximum thawed from a frozen record, parked here
        #: until (unless) the key materializes a proposer to adopt it.
        self.learned_max: StateCRDT | None = None


class _RejoinState:
    """One key's open quorum refresh on a rejoining replica.

    Client commands arriving before the quorum answers are buffered and
    replayed through the normal path once the refreshed pair is in
    place; peer protocol requests are dropped (loss-tolerant by design)
    until then — a possibly-stale pair must not grant promises or votes.
    """

    __slots__ = ("request_id", "replied", "buffered", "rounds")

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self.replied: set[str] = set()
        self.buffered: list[tuple[str, Any]] = []
        #: Consecutive fruitless re-broadcast rounds (no new peer replied
        #: since the last one) — drives the jittered exponential backoff
        #: on the re-drive timer; reset whenever a new peer answers.
        self.rounds = 0


class _OutboundMigration:
    """A key frozen at this (source) replica, awaiting commit."""

    __slots__ = ("request_id", "epoch", "target")

    def __init__(self, request_id: str, epoch: int, target: str) -> None:
        self.request_id = request_id
        self.epoch = epoch
        self.target = target


class _InboundMigration:
    """A key installed at this (destination) replica, awaiting commit.

    Client commands arriving between install and commit buffer here:
    serving them early would let a destination read quorum form before
    the installed triple is replicated widely enough to be learned.
    """

    __slots__ = ("request_id", "epoch", "buffered")

    def __init__(
        self,
        request_id: str,
        epoch: int,
        buffered: list[tuple[str, Any]] | None = None,
    ) -> None:
        self.request_id = request_id
        self.epoch = epoch
        self.buffered: list[tuple[str, Any]] = buffered if buffered is not None else []


class GroupOwnership:
    """Which keys this replica's group serves — table plus migration marks.

    ``table`` is the routing table the replica was born under (duck-typed:
    ``.epoch`` and ``.owner(key)`` — see
    :class:`repro.sharding.routing.RoutingTable`); it never changes in
    place.  Every later change of ownership arrives as an explicit,
    epoch-stamped migration and leaves a per-key mark:

    * ``moved_out[key] = (epoch, target)`` — committed away; refuse with
      a forwarding :class:`~repro.core.messages.WrongGroup`.
    * ``moved_in[key] = epoch`` — committed here; serve even though the
      birth table says another group owns it (this is also how a group
      added *after* the ring was born acquires its keys: its replicas
      own nothing by default and accrue keys move by move).
    * ``freezing[key]`` — freeze received, commit pending: refuse
      clients with the forwarding hint, drop peer protocol traffic (a
      frozen replica must never ack again — that is what makes the
      coordinator's snapshot quorum intersect every completed update's
      write quorum).
    * ``incoming[key]`` — install received, commit pending: buffer
      client commands, drop peer traffic.

    ``max_epoch`` tracks the highest routing epoch this replica has
    attested; it is persisted in the spill meta (with the moved marks)
    so ownership survives recovery and only ever moves forward.
    """

    __slots__ = (
        "group",
        "table",
        "max_epoch",
        "moved_out",
        "moved_in",
        "freezing",
        "incoming",
    )

    def __init__(self, group: str, table: Any) -> None:
        self.group = group
        self.table = table
        self.max_epoch = int(table.epoch)
        self.moved_out: dict[Hashable, tuple[int, str]] = {}
        self.moved_in: dict[Hashable, int] = {}
        self.freezing: dict[Hashable, _OutboundMigration] = {}
        self.incoming: dict[Hashable, _InboundMigration] = {}

    def note_epoch(self, epoch: int) -> None:
        if epoch > self.max_epoch:
            self.max_epoch = epoch

    def owns(self, key: Hashable) -> bool:
        """Does this group serve the key (ignoring in-flight freezes)?"""
        if key in self.moved_in:
            return True
        return self.table.owner(key) == self.group

    def forward_hint(self, key: Hashable) -> tuple[int, str] | None:
        """The ``(epoch, owner)`` to refuse with, or None when served."""
        mark = self.moved_out.get(key)
        if mark is not None:
            return mark
        out = self.freezing.get(key)
        if out is not None:
            return (out.epoch, out.target)
        if not self.owns(key):
            return (self.table.epoch, self.table.owner(key))
        return None

    # -- spill-meta persistence -------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Ownership fields for the spill meta (see ``_write_meta``)."""
        return {
            "routing_epoch": self.max_epoch,
            "moved_out": [
                [key, epoch, target]
                for key, (epoch, target) in self.moved_out.items()
            ],
            "moved_in": [[key, epoch] for key, epoch in self.moved_in.items()],
            "migrating_out": [
                [key, out.request_id, out.epoch, out.target]
                for key, out in self.freezing.items()
            ],
        }

    def restore(self, meta: dict[str, Any]) -> None:
        """Fold a recovered meta snapshot in (forward-only epochs).

        Freeze marks are restored as freezes: a source replica that
        snapshotted, died and recovered must stay frozen — serving (or
        acking) again could complete an update the coordinator's already
        collected snapshot quorum never saw.  Inbound installs need no
        mark: the installed triple lives in the key's own spill record,
        and the re-driven commit re-marks moved-in.
        """
        self.note_epoch(int(meta.get("routing_epoch", 0)))
        for key, epoch, target in meta.get("moved_out", ()):  # type: ignore[misc]
            current = self.moved_out.get(key)
            if current is None or current[0] < epoch:
                self.moved_out[key] = (int(epoch), target)
        for key, epoch in meta.get("moved_in", ()):  # type: ignore[misc]
            if self.moved_in.get(key, -1) < epoch:
                self.moved_in[key] = int(epoch)
        for key, request_id, epoch, target in meta.get("migrating_out", ()):  # type: ignore[misc]
            out = self.freezing.get(key)
            if out is None or out.epoch < epoch:
                self.freezing[key] = _OutboundMigration(
                    request_id, int(epoch), target
                )


class KeyedCrdtReplica(ProtocolNode):
    """A replica hosting an independent CRDT Paxos instance per key.

    Parameters
    ----------
    initial_state_for:
        ``key → bottom payload`` factory; called once per key on first
        touch and must be deterministic across replicas (all members must
        agree on a key's type).
    eager:
        Ablation/benchmark baseline: materialize the full pre-flyweight
        instance on first touch — a private
        :class:`~repro.core.proposer.ProposerShared` (config, peer list,
        round-id source and stats copied per key), an eagerly built
        proposer and an eager timer-namespace registration.  This is the
        shape the seed design gave every key; the keyed-scale benchmark
        measures the flyweight's resident bytes/key against it.
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        initial_state_for: Callable[[Hashable], StateCRDT],
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
        eager: bool = False,
        spill_store: SpillStore | None = None,
        ownership: GroupOwnership | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.config = config or CrdtPaxosConfig()
        self.quorum = quorum or MajorityQuorum(peers)
        self._initial_state_for = initial_state_for
        self._eager = eager
        if self.config.keyed_max_frozen is not None and spill_store is None:
            raise ConfigurationError(
                "keyed_max_frozen requires a spill_store (frozen records "
                "past the cap must have somewhere to go)"
            )
        if self.config.durability != "none" and spill_store is None:
            raise ConfigurationError(
                f"durability={self.config.durability!r} requires a spill_store "
                "(write-through persistence must have somewhere to write)"
            )
        self._spill_store = spill_store
        self._durability = self.config.durability
        #: Sharded deployments: which keys this replica's group serves
        #: (None = unsharded, every key is ours — today's behaviour).
        self._ownership = ownership
        #: Flyweight context shared by every per-key proposer (stats too:
        #: the counters aggregate across keys, one sink per replica).
        self._shared = ProposerShared(
            node_id, self.peers, self.quorum, self.config, stats=ProposerStats()
        )
        #: One acceptor-stats sink per replica too (counters aggregate).
        self._acceptor_stats = AcceptorStats()
        self._resident: dict[Hashable, _KeyInstance] = {}
        self._frozen: dict[Hashable, _FrozenKey] = {}
        #: Cross-key envelope coalescing: peer-bound Keyed envelopes wait
        #: here until the coalesce flush packs one KeyedBatch per peer.
        #: Per destination, an insertion-ordered map whose slot key is
        #: ``(key, message type, request id, attempt)`` — parking a fresh
        #: envelope for an already-parked slot *supersedes* the old one in
        #: place (same position, newer payload) instead of queueing a
        #: duplicate; this is what makes update-timeout re-drives
        #: coalescing-aware (the re-driven MERGE replaces the parked one).
        self._remote_peers = frozenset(peers) - {node_id}
        self._outbox: dict[str, dict[tuple, Keyed]] = {}
        #: How many outbox envelopes reference each key; a parked key is
        #: pinned resident (demotion must not separate a key's record
        #: from its undelivered traffic).
        self._parked_count: dict[Hashable, int] = {}
        self._coalesce_armed = False
        #: Adaptive coalescing (``keyed_coalesce_adaptive``): per-peer
        #: EWMA of the interval between parked envelopes and the last
        #: park instant feeding it; the flush window tracks the observed
        #: traffic rate instead of a fixed figure.
        self._coalesce_ewma: dict[str, float] = {}
        self._coalesce_last: dict[str, float] = {}
        #: Parked wire bytes per destination (``keyed_outbox_byte_budget``
        #: or adaptive mode): crossing the budget flushes that peer early.
        self._parked_bytes: dict[str, int] = {}
        #: The current handling step's timestamp — captured at the
        #: :meth:`on_message`/:meth:`on_timer` entry points so inner
        #: plumbing (:meth:`_wrap`) can sample time without threading
        #: ``now`` through every call chain.
        self._now = 0.0
        #: Timer-namespace index: ``repr(key)`` → key.  Keeps
        #: :meth:`on_timer` O(1) in the number of keys.  Registered only
        #: when a key materializes a proposer — acceptor-only keys never
        #: arm timers, so they never pay the repr-string entry.
        self._namespaces: dict[str, Hashable] = {}
        self._touch_seq = 0
        #: Lazy min-heap over (touch_seq, key): capacity eviction and the
        #: idle sweep pop the genuinely oldest entries instead of sorting
        #: the whole resident set.  Entries whose key was re-touched are
        #: stale (the instance's touch_seq moved on) and discarded on pop.
        self._evict_heap: list[tuple[int, Hashable]] = []
        #: Write-through durability stamps, kept beside the instances
        #: rather than on them: the last (payload, round, learned-max)
        #: triple persisted per key, so the per-step persist hook is a
        #: no-op when the step changed nothing.  A side table because
        #: only durable builds pay for it — the flyweight density rail
        #: covers ``durability="none"``, where this stays empty.
        self._durable_stamps: dict[Hashable, tuple] = {}
        #: Group commit (``durability="group_sync"``): certifying acks
        #: wait here until a flush covers the state they attest.
        self._sync_parked: list[tuple[str, Keyed]] = []
        self._sync_dirty = False
        self._sync_armed = False
        #: Durable-generation bookkeeping: bumped on every recover and
        #: stamped into spill meta, so artifacts of a dead generation
        #: (rejoin request ids, stale stores) are distinguishable.
        self._node_epoch = 0
        self._dirty_marked = False
        self._counter_watermarks: dict[str, int] = {}
        #: Quorum re-join: keys recovered from a possibly-stale store that
        #: must refresh their pair from a read quorum before first use.
        self._rejoin_pending: set[Hashable] = set()
        self._rejoin_active: dict[Hashable, _RejoinState] = {}
        self._rejoin_seq = 0
        #: Sharding observability: client commands refused with a
        #: forwarding WrongGroup, and migrations committed out of / into
        #: this replica's group at this replica.
        self.wrong_group_refusals = 0
        self.migrations_out = 0
        self.migrations_in = 0
        #: Eviction observability.
        self.evictions = 0
        self.rehydrations = 0
        #: Heap pops performed by eviction/sweep passes — the O(evicted)
        #: bound on sweep work is asserted against this.
        self.evict_scan_ops = 0
        #: Spill-tier observability: records written to / loaded from the
        #: spill store (spill_loads also count toward rehydrations).
        self.spills = 0
        self.spill_loads = 0
        #: Durability observability: in-step persists of a key's triple,
        #: batched flushes that released parked acks, and per-key quorum
        #: refreshes completed by a rejoining replica.
        self.write_through_persists = 0
        self.group_commits = 0
        self.rejoin_refreshes = 0
        #: Handling steps whose persist failed: certifying acks were
        #: suppressed and client completions answered with
        #: ``Refused(code="storage")`` instead of escaping un-durable.
        self.persist_refusals = 0

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        spill_store: SpillStore,
        node_id: str,
        peers: list[str],
        initial_state_for: Callable[[Hashable], StateCRDT],
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
        rejoin: bool = False,
        ownership: GroupOwnership | None = None,
    ) -> "KeyedCrdtReplica":
        """Rebuild a replica purely from its spill store after a restart.

        Recovery is O(1) in the number of keys: no record is replayed or
        even read — every spilled ``(payload, round, learned-max)``
        triple *is* its key's final durable state (§3.3; there is no
        log), so keys stay in the store and rehydrate lazily on first
        touch.  The only eagerly restored state is the store's metadata
        snapshot of the node-wide monotone counters (batch ids, learn
        sequence, round ids), which must survive the restart so the new
        process generation cannot reuse an identifier a stale in-flight
        message might still answer.

        Whether the store is *trustworthy* depends on how the previous
        generation died.  A clean-shutdown marker (written by
        :meth:`spill_all`) or a generation that ran write-through
        durability means every externally visible promise is in the
        store; otherwise the records may predate promises the dead
        process made after its last write, and serving them directly
        could break linearizability — :class:`StaleRecoveryError` is
        raised unless ``rejoin=True``, which instead marks every stored
        key pending a read-quorum refresh (a §3.3 prepare) before it is
        served (see :meth:`rejoin`).
        """
        replica = cls(
            node_id,
            peers,
            initial_state_for,
            config,
            quorum,
            spill_store=spill_store,
            ownership=ownership,
        )
        meta = spill_store.get_meta()
        if meta is not None:
            replica._shared.restore_counters(meta)
            if ownership is not None:
                # Routing epochs and moved-out/frozen marks are part of
                # the durable state: a recovered source replica must keep
                # refusing (and must stay frozen) for keys that migrated
                # away while it was alive — or mid-kill.
                ownership.restore(meta)
        clean = (
            meta.get("clean_shutdown") is True
            if meta is not None
            else len(spill_store) == 0
        )
        dead_mode = meta.get("durability", "none") if meta is not None else "none"
        if not clean and not rejoin and dead_mode == "none":
            raise StaleRecoveryError(
                f"spill store for {node_id!r} has no clean-shutdown marker and "
                "the dead generation did not run write-through durability; its "
                "records may predate promises that escaped before the crash — "
                "recover with rejoin=True to refresh each key from a read "
                "quorum before serving it"
            )
        replica._node_epoch = (
            int(meta.get("node_epoch", 0)) if meta is not None else 0
        ) + 1
        if rejoin and not replica.quorum.is_quorum({node_id}):
            # When this node alone is a read quorum (single-member
            # group) there is no peer to refresh from — and none whose
            # certificate could outrun the local pair — so rejoin
            # degenerates to a plain recovery.
            replica._rejoin_pending = set(spill_store.keys())
        if not clean or replica._durability != "none":
            # This generation is live (and may itself die hard): persist
            # the bumped epoch and an opened-dirty marker up front.
            replica._write_meta(clean=False)
            if replica._durability == "write_through":
                spill_store.flush()
        return replica

    @property
    def stats(self) -> ProposerStats:
        """Aggregate proposer counters across every key (flyweight sink)."""
        return self._shared.stats

    @property
    def acceptor_stats(self) -> AcceptorStats:
        """Aggregate acceptor counters across every key — including the
        KeyedBatch coalescing savings (packed/unpacked/bytes saved)."""
        return self._acceptor_stats

    def instance(self, key: Hashable, now: float | None = None) -> _KeyInstance:
        """The per-key machinery, created (or rehydrated) on first touch.

        Capacity eviction deliberately does NOT run here: the caller may
        be mid-delivery, about to open protocol state on this instance,
        and evicting it (or a key the caller also holds) under its feet
        would orphan that state.  :meth:`on_message`/:meth:`on_timer`
        evict *after* the handling step, when open requests are visible
        to the quiescence check.
        """
        inst = self._resident.get(key)
        if inst is None:
            inst = self._admit(key)
        self._note_touch(key, inst, now)
        return inst

    def _note_touch(self, key: Hashable, inst: _KeyInstance, now: float | None) -> None:
        """Bump a key's recency and record it in the eviction heap.

        The heap is lazy: a re-touched key's older entries stay behind
        and are discarded when popped (the stamp no longer matches).
        When stale entries outnumber residents ~4:1 the heap is rebuilt
        from the resident set, keeping its size O(resident) amortized.
        """
        self._touch_seq += 1
        inst.touch_seq = self._touch_seq
        if now is not None:
            inst.touched_at = now
        heap = self._evict_heap
        heapq.heappush(heap, (self._touch_seq, key))
        if len(heap) > 4 * len(self._resident) + 64:
            self._evict_heap = [
                (resident.touch_seq, resident_key)
                for resident_key, resident in self._resident.items()
            ]
            heapq.heapify(self._evict_heap)

    def _admit(self, key: Hashable) -> _KeyInstance:
        # Eager (pre-flyweight) instances carry private stats sinks, like
        # the seed design; flyweight instances share the replica's.
        stats = AcceptorStats() if self._eager else self._acceptor_stats
        frozen = self._frozen.pop(key, None)
        if frozen is None and self._spill_store is not None:
            # Second demotion tier: the key may live in the spill store
            # (either spilled by this generation or recovered from a
            # previous one).  The loaded triple is bit-for-bit the frozen
            # record, so rehydration is the same code path.
            record = self._spill_store.get(key)
            if record is not None:
                frozen = _FrozenKey(record.state, record.round, record.learned_max)
                self.spill_loads += 1
        if frozen is not None:
            acceptor = Acceptor(frozen.state, round=frozen.round, stats=stats)
            self.rehydrations += 1
        else:
            acceptor = Acceptor(self._initial_state_for(key), stats=stats)
        inst = _KeyInstance(acceptor)
        if frozen is not None:
            inst.learned_max = frozen.learned_max
        # The admitted snapshot counts as durable: a thawed/loaded triple
        # equals the last persisted one (the write-through hook persists
        # every mutating step, so demotion never outruns the store), and
        # a fresh bottom is reconstructible from initial_state_for alone.
        if self._durability != "none":
            self._durable_stamps[key] = (
                acceptor.state,
                acceptor.round,
                inst.learned_max,
            )
        self._resident[key] = inst
        if self._eager:
            self._materialize(key, inst)
        return inst

    def _materialize(self, key: Hashable, inst: _KeyInstance) -> Proposer:
        """Build the key's proposer on its first local client command."""
        if inst.proposer is None:
            if self._eager:
                # Pre-flyweight shape: nothing hoisted, every key carries
                # its own context (and its own stats sink).
                shared = ProposerShared(
                    self.node_id, self.peers, self.quorum, self.config
                )
            else:
                shared = self._shared
            inst.proposer = Proposer(
                shared,
                inst.acceptor,
                self._initial_state_for(key),
                learned_max=inst.learned_max,
            )
            # First registration wins, matching the old first-match scan
            # for (pathological) distinct keys sharing a repr.
            self._namespaces.setdefault(repr(key), key)
        return inst.proposer

    def materialize_proposer(self, key: Hashable) -> Proposer:
        """Public hook (benchmarks, warm-up): force a key's proposer."""
        return self._materialize(key, self.instance(key))

    def keys(self) -> list[Hashable]:
        known: dict[Hashable, None] = dict.fromkeys(self._resident)
        known.update(dict.fromkeys(self._frozen))
        if self._spill_store is not None:
            # A rehydrated key may still hold a (stale) spilled record;
            # the dict union dedupes it.
            known.update(dict.fromkeys(self._spill_store.keys()))
        return list(known)

    def resident_count(self) -> int:
        return len(self._resident)

    def frozen_count(self) -> int:
        return len(self._frozen)

    def spilled_count(self) -> int:
        """Records currently held by the spill store (may include stale
        copies of keys that have since been rehydrated; refreshed on the
        next spill of those keys)."""
        return len(self._spill_store) if self._spill_store is not None else 0

    def state_of(self, key: Hashable) -> StateCRDT:
        """Diagnostic peek at a key's payload — never admits or rehydrates.

        Checks the three tiers in order (resident, RAM-frozen, spilled);
        a key this replica has never seen answers with its bottom
        element, exactly what a fresh admission would hold, without
        creating one (a monitoring scan over a watchlist must not grow
        the resident set past its cap).
        """
        resident = self._resident.get(key)
        if resident is not None:
            return resident.acceptor.state
        frozen = self._frozen.get(key)
        if frozen is not None:  # no rehydration churn
            return frozen.state
        if self._spill_store is not None:
            record = self._spill_store.get(key)
            if record is not None:  # decode without admitting
                return record.state
        return self._initial_state_for(key)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _freeze(self, key: Hashable, inst: _KeyInstance) -> bool:
        """Demote one quiescent key to its frozen record; False if busy.

        A key with envelopes parked in the coalescing outbox counts as
        busy: demoting (and potentially spilling) it while its traffic
        is undelivered could strand those envelopes across a shutdown —
        the key stays pinned until the coalesce flush drains them.
        """
        proposer = inst.proposer
        if proposer is not None and not proposer.idle:
            return False
        if self._parked_count.get(key):
            return False
        # Persist the §3.4 learned maximum alongside the acceptor pair —
        # either the live proposer's or one thawed earlier that never got
        # adopted (the key froze again before proposing locally).
        learned_max = (
            proposer.learned_max if proposer is not None else inst.learned_max
        )
        self._frozen[key] = _FrozenKey(
            inst.acceptor.state, inst.acceptor.round, learned_max
        )
        del self._resident[key]
        self._durable_stamps.pop(key, None)
        namespace = repr(key)
        if self._namespaces.get(namespace) == key:
            del self._namespaces[namespace]
        self.evictions += 1
        return True

    def _evict_excess(self) -> None:
        cap = self.config.keyed_max_resident
        if cap is None or len(self._resident) <= cap:
            return
        # Demote ~10% below the cap (at least one extra) so a store
        # sitting at capacity does not rework the heap on every admission.
        # The heap pops the genuinely least-recently-touched keys — cost
        # O(evicted · log n) plus stale entries (amortized against their
        # pushes) instead of the old full O(n log n) sort.  Busy keys are
        # deferred back onto the heap — the cap is soft by design; open
        # protocol requests pin their instances until they quiesce.
        target = (len(self._resident) - cap) + max(1, cap // 10)
        heap = self._evict_heap
        deferred: list[tuple[int, Hashable]] = []
        while target > 0 and heap:
            seq, key = heapq.heappop(heap)
            self.evict_scan_ops += 1
            inst = self._resident.get(key)
            if inst is None or inst.touch_seq != seq:
                continue  # stale: evicted already or re-touched since
            if self._freeze(key, inst):
                target -= 1
            else:
                deferred.append((seq, key))
        for entry in deferred:
            heapq.heappush(heap, entry)
        self._spill_excess()

    def _spill_excess(self) -> None:
        """Second demotion tier: oldest RAM-frozen records past
        ``keyed_max_frozen`` serialize to the spill store and leave RAM.

        Freeze order is dict insertion order, so iteration from the
        front spills the records frozen longest ago — the coldest of the
        cold.  Safe by the same §3.3 argument as freezing itself: the
        serialized triple is the acceptor's entire durable state.
        """
        cap = self.config.keyed_max_frozen
        if cap is None or len(self._frozen) <= cap:
            return
        store = self._spill_store
        assert store is not None  # enforced at construction
        overflow = len(self._frozen) - cap
        for key in list(self._frozen)[:overflow]:
            frozen = self._frozen.pop(key)
            try:
                store.put(
                    key, SpillRecord(frozen.state, frozen.round, frozen.learned_max)
                )
            except (StorageUnavailable, OSError):
                # Disk brownout: keep the record in RAM (the frozen cap
                # is soft, like the resident one) and stop demoting —
                # the store is sick, later pressure retries.
                self._frozen[key] = frozen
                self.persist_refusals += 1
                return
            self.spills += 1

    def spill_all(self) -> Effects:
        """Persist a complete durable snapshot (shutdown/kill hook).

        Flushes the coalescing outbox first (parked envelopes must not
        be stranded by a shutdown), then writes *every* key's
        ``(payload, round, learned-max)`` triple to the spill store:
        frozen records are spilled and dropped from RAM, quiescent
        resident keys are frozen, spilled and dropped, and busy resident
        keys (open batches pin them) are snapshotted but stay resident —
        their open client requests die with the process, exactly like a
        crash, but their acceptor state is durable.  Finally the shared
        monotone counters are persisted as store metadata and the store
        is flushed.

        Returns the outbox-flush effects; a driver shutting the node
        down should still deliver them (they are acks and replies that
        "made it out" before the process died).
        """
        store = self._spill_store
        if store is None:
            raise ConfigurationError(
                "spill_all requires a spill_store attached to this replica"
            )
        effects = self._flush_outbox()
        # Release group-commit-parked acks too: the store is flushed
        # below, *before* the driver executes these effects, so every
        # released ack still rests on durable state.
        for dst, keyed in self._sync_parked:
            effects.send(dst, keyed)
        self._sync_parked = []
        self._sync_dirty = False
        for key, frozen in list(self._frozen.items()):
            store.put(
                key, SpillRecord(frozen.state, frozen.round, frozen.learned_max)
            )
            del self._frozen[key]
            self.spills += 1
        for key, inst in list(self._resident.items()):
            proposer = inst.proposer
            learned_max = (
                proposer.learned_max if proposer is not None else inst.learned_max
            )
            store.put(
                key,
                SpillRecord(inst.acceptor.state, inst.acceptor.round, learned_max),
            )
            self.spills += 1
            if self._freeze(key, inst):
                # Quiescent: _freeze moved it to the frozen dict (and
                # cleaned up its namespace entry); it is already spilled,
                # so drop the RAM record too.
                del self._frozen[key]
        self._write_meta(clean=True)
        store.flush()
        return effects

    def flush(self) -> Effects:
        """Operator-side maintenance flush (the api ``Store.flush()``).

        Drains the coalescing outbox and, when a spill store is
        attached, persists the full durable snapshot via
        :meth:`spill_all`.  Returns the effects the driver must still
        execute (the drained outbox envelopes).
        """
        if self._spill_store is not None:
            return self.spill_all()
        return self._flush_outbox()

    def _sweep(self, now: float) -> Effects:
        """Idle eviction, O(evicted) per sweep instead of O(resident).

        Touch sequence order and clock order agree (driver time is
        monotone and every clocked touch bumps the sequence), so the
        heap's front is the oldest-touched resident: the sweep pops until
        it meets an entry younger than the cutoff and stops — untouched
        younger keys are never even looked at.  Keys that cannot freeze
        (busy, or admitted without a clock) are re-stamped and deferred
        behind current traffic.
        """
        effects = Effects()
        idle_s = self.config.keyed_idle_evict_s
        if idle_s is None:
            return effects
        cutoff = now - idle_s
        heap = self._evict_heap
        deferred: list[tuple[int, Hashable]] = []
        while heap:
            seq, key = heap[0]
            inst = self._resident.get(key)
            if inst is None or inst.touch_seq != seq:
                heapq.heappop(heap)
                self.evict_scan_ops += 1
                continue
            if inst.touched_at is not None and inst.touched_at > cutoff:
                break  # everything behind it is younger still
            heapq.heappop(heap)
            self.evict_scan_ops += 1
            if inst.touched_at is None:
                # Admitted without a clock (warm-up via instance() or
                # materialize_proposer()): start its idle window at this
                # sweep instead of freezing the just-warmed key.
                inst.touched_at = now
                self._touch_seq += 1
                inst.touch_seq = self._touch_seq
                deferred.append((inst.touch_seq, key))
            elif not self._freeze(key, inst):
                # Busy: re-sort behind current traffic and retry later.
                self._touch_seq += 1
                inst.touch_seq = self._touch_seq
                deferred.append((inst.touch_seq, key))
        for entry in deferred:
            heapq.heappush(heap, entry)
        self._spill_excess()
        effects.set_timer(_SWEEP_TIMER, idle_s)
        return effects

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> Effects:
        effects = Effects()
        if self.config.keyed_idle_evict_s is not None:
            effects.set_timer(_SWEEP_TIMER, self.config.keyed_idle_evict_s)
        # Crash recovery loses timers but not internal state: envelopes
        # parked in the outbox must get a fresh flush tick.
        self._coalesce_armed = False
        if self._outbox:
            self._coalesce_armed = True
            effects.set_timer(_COALESCE_TIMER, self.config.keyed_coalesce_window or 0.001)
        self._sync_armed = False
        if self._durability == "group_sync" and (self._sync_dirty or self._sync_parked):
            self._sync_armed = True
            effects.set_timer(_SYNC_TIMER, self.config.durability_sync_window)
        return effects

    def on_message(self, src: str, message: Any, now: float) -> Effects:
        self._now = now
        if isinstance(message, KeyedBatch):
            # Transport framing only: route every item through the
            # ordinary keyed dispatch, folding the effects in order.
            self._acceptor_stats.keyed_batches_unpacked += 1
            effects = Effects()
            for item in message.items:
                effects.merge(self.on_message(src, item, now))
            return effects
        if not isinstance(message, Keyed):
            return Effects()  # unkeyed traffic is not ours
        key = message.key
        inner = message.message
        if self._ownership is not None:
            if isinstance(inner, _MIGRATION_COMMANDS):
                return self._on_migration_message(key, src, inner, now)
            gated = self._ownership_gate(key, src, inner)
            if gated is not None:
                return gated
        instance = self.instance(key, now)

        if self._rejoin_pending and key in self._rejoin_pending:
            effects = self._rejoin_gate(key, instance, src, inner, now)
        elif isinstance(inner, (ClientUpdate, ClientQuery)):
            effects = self._handle_client(key, instance, src, inner, now)
        else:
            effects = self._on_peer_message(instance, src, inner, now)
        # Persist-before-ack: the handling step's effects have not left
        # this method yet (sans-io — the driver executes them after we
        # return), so writing the key's triple here is the log-less
        # analogue of an acceptor fsyncing before its reply escapes.
        if not self._persist_step(key, instance):
            effects = self._suppress_unpersisted(effects)
        wrapped = self._wrap(key, effects)
        self._evict_excess()
        return wrapped

    def _handle_client(
        self, key: Hashable, instance: _KeyInstance, src: str, inner: Any, now: float
    ) -> Effects:
        if isinstance(inner, ClientUpdate):
            return self._materialize(key, instance).client_update(
                src, inner.request_id, inner.op, now
            )
        return self._materialize(key, instance).client_query(
            src, inner.request_id, inner.op, now
        )

    def _on_peer_message(
        self, instance: _KeyInstance, src: str, inner: Any, now: float
    ) -> Effects:
        effects = dispatch_peer_message(
            instance.acceptor, instance.proposer, src, inner, now
        )
        return effects if effects is not None else Effects()

    # ------------------------------------------------------------------
    # Sharded ownership (repro.sharding)
    # ------------------------------------------------------------------
    def _client_command(
        self, key: Hashable, inst: _KeyInstance, src: str, inner: Any, now: float
    ) -> Effects:
        """Serve, buffer or refuse one client command, ownership-aware.

        The replay paths (rejoin refresh, migration commit) must come
        back through this check too: ownership may have changed while a
        command sat buffered — a key can finish its quorum refresh only
        to discover an install landed meanwhile.
        """
        own = self._ownership
        if own is not None:
            hint = own.forward_hint(key)
            if hint is not None:
                self.wrong_group_refusals += 1
                effects = Effects()
                effects.send(
                    src,
                    WrongGroup(
                        request_id=inner.request_id, epoch=hint[0], group=hint[1]
                    ),
                )
                return effects
            incoming = own.incoming.get(key)
            if incoming is not None:
                incoming.buffered.append((src, inner))
                return Effects()
        return self._handle_client(key, inst, src, inner, now)

    def _ownership_gate(
        self, key: Hashable, src: str, inner: Any
    ) -> Effects | None:
        """Consume traffic for keys this group does not serve.

        Returns wrapped effects when the gate handled the message, None
        when the key is owned and the normal path should run.  Client
        commands for unowned keys refuse with a forwarding
        :class:`WrongGroup` *without admitting the key* (a moved-out key
        must not be resurrected as a fresh bottom instance by stray
        traffic); peer protocol messages for frozen or moved-out keys
        are dropped — a frozen replica that granted one more promise or
        ack would break the snapshot-quorum intersection argument.
        """
        own = self._ownership
        is_client = isinstance(inner, (ClientUpdate, ClientQuery))
        hint = own.forward_hint(key)
        if hint is not None:
            if is_client:
                self.wrong_group_refusals += 1
                effects = Effects()
                effects.send(
                    src,
                    WrongGroup(
                        request_id=inner.request_id, epoch=hint[0], group=hint[1]
                    ),
                )
                return self._wrap(key, effects)
            return Effects()  # peer traffic for a key we no longer serve
        incoming = own.incoming.get(key)
        if incoming is not None:
            if is_client:
                incoming.buffered.append((src, inner))
            return Effects()  # buffered until commit; peer traffic drops
        return None

    def _on_migration_message(
        self, key: Hashable, src: str, inner: Any, now: float
    ) -> Effects:
        """Handle one coordinator command (freeze / install / commit).

        Every reply here is certifying (the coordinator builds the move
        on it), so the persist-before-ack discipline applies: the key's
        triple *and* the ownership marks go to the store before the
        reply escapes, and a failed persist suppresses it — the
        coordinator re-drives, exactly like a lost message.
        """
        own = self._ownership
        own.note_epoch(inner.epoch)
        if isinstance(inner, MigrateFreeze):
            return self._on_migrate_freeze(key, src, inner, now)
        if isinstance(inner, MigrateInstall):
            return self._on_migrate_install(key, src, inner, now)
        return self._on_migrate_commit(key, src, inner, now)

    def _on_migrate_freeze(
        self, key: Hashable, src: str, inner: MigrateFreeze, now: float
    ) -> Effects:
        own = self._ownership
        mark = own.moved_out.get(key)
        if mark is not None and mark[0] >= inner.epoch:
            # The move already committed here; nothing left to snapshot.
            # The coordinator is past freeze (it sent the commit), so
            # this is a stale re-drive — drop it.
            return Effects()
        if self._rejoin_pending and key in self._rejoin_pending:
            # A possibly-stale pair must not be snapshotted: its record
            # may predate acks the dead generation gave away.  Kick the
            # quorum refresh and let the coordinator re-drive the freeze
            # (it only needs a quorum of source snapshots, which the
            # still-live peers provide meanwhile).
            inst = self.instance(key, now)
            effects = Effects()
            if key not in self._rejoin_active:
                self._start_rejoin(key, inst, effects)
            return self._wrap(key, effects)
        out = own.freezing.get(key)
        if out is None or out.epoch < inner.epoch:
            out = _OutboundMigration(inner.request_id, inner.epoch, inner.target)
            own.freezing[key] = out
        inst = self.instance(key, now)
        proposer = inst.proposer
        learned_max = (
            proposer.learned_max if proposer is not None else inst.learned_max
        )
        effects = Effects()
        effects.send(
            src,
            MigrateFrozen(
                request_id=out.request_id,
                epoch=out.epoch,
                round=inst.acceptor.round,
                state=inst.acceptor.state,
                learned_max=learned_max,
            ),
        )
        if not (self._persist_step(key, inst) and self._persist_marks()):
            effects = self._suppress_unpersisted(effects)
        wrapped = self._wrap(key, effects)
        self._evict_excess()
        return wrapped

    def _on_migrate_install(
        self, key: Hashable, src: str, inner: MigrateInstall, now: float
    ) -> Effects:
        own = self._ownership
        effects = Effects()
        if own.moved_in.get(key, -1) >= inner.epoch:
            # Commit already landed here; the re-driven install only
            # needs its (idempotent) ack.
            effects.send(
                src,
                MigrateInstalled(request_id=inner.request_id, epoch=inner.epoch),
            )
            return self._wrap(key, effects)
        mark = own.moved_out.get(key)
        if mark is not None and mark[0] < inner.epoch:
            del own.moved_out[key]  # the key is migrating back to us
        incoming = own.incoming.get(key)
        if incoming is None or incoming.epoch < inner.epoch:
            buffered = incoming.buffered if incoming is not None else None
            incoming = _InboundMigration(inner.request_id, inner.epoch, buffered)
            own.incoming[key] = incoming
        # Rejoin-style refresh, pointed at another group's quorum: fold
        # the joined snapshot into the local pair (join / max).  Joining
        # is monotone, so this is safe even on a rejoin-pending pair.
        inst = self.instance(key, now)
        acceptor = inst.acceptor
        acceptor.state = acceptor.state.join(inner.state)
        if inner.round.number > acceptor.round.number:
            acceptor.round = inner.round
        if inner.learned_max is not None and inst.proposer is None:
            inst.learned_max = (
                inner.learned_max
                if inst.learned_max is None
                else inst.learned_max.join(inner.learned_max)
            )
        effects.send(
            src,
            MigrateInstalled(request_id=incoming.request_id, epoch=incoming.epoch),
        )
        if not (self._persist_step(key, inst) and self._persist_marks()):
            effects = self._suppress_unpersisted(effects)
        wrapped = self._wrap(key, effects)
        self._evict_excess()
        return wrapped

    def _on_migrate_commit(
        self, key: Hashable, src: str, inner: MigrateCommit, now: float
    ) -> Effects:
        own = self._ownership
        effects = Effects()
        out = own.freezing.get(key)
        if out is not None and out.epoch <= inner.epoch:
            del own.freezing[key]
        incoming = own.incoming.get(key)
        persist_inst: _KeyInstance | None = None
        if inner.target == own.group:
            # Destination side: the key is ours from this epoch on.
            if own.moved_in.get(key, -1) < inner.epoch:
                own.moved_in[key] = inner.epoch
                self.migrations_in += 1
            moved_out = own.moved_out.get(key)
            if moved_out is not None and moved_out[0] < inner.epoch:
                del own.moved_out[key]
            if incoming is not None and incoming.epoch <= inner.epoch:
                del own.incoming[key]
                persist_inst = self.instance(key, now)
                for held_src, held_inner in incoming.buffered:
                    effects.merge(
                        self._client_command(
                            key, persist_inst, held_src, held_inner, now
                        )
                    )
        else:
            # Source (or returning-stale) side: drop the record, keep a
            # durable forwarding mark, and refuse everything any gate
            # was holding for the key — those clients re-route.
            mark = own.moved_out.get(key)
            if mark is None or mark[0] < inner.epoch:
                own.moved_out[key] = (inner.epoch, inner.target)
                self.migrations_out += 1
            if own.moved_in.get(key, -1) <= inner.epoch:
                own.moved_in.pop(key, None)
            held: list[tuple[str, Any]] = []
            rejoin_state = self._rejoin_active.pop(key, None)
            if rejoin_state is not None:
                held.extend(rejoin_state.buffered)
                effects.cancel_timer(_REJOIN_TIMER)
            self._rejoin_pending.discard(key)
            if incoming is not None:
                del own.incoming[key]
                held.extend(incoming.buffered)
            for held_src, held_inner in held:
                self.wrong_group_refusals += 1
                effects.send(
                    held_src,
                    WrongGroup(
                        request_id=held_inner.request_id,
                        epoch=inner.epoch,
                        group=inner.target,
                    ),
                )
            self._drop_key(key)
        effects.send(
            src, MigrateCommitAck(request_id=inner.request_id, epoch=inner.epoch)
        )
        persisted = self._persist_marks()
        if persist_inst is not None:
            persisted = self._persist_step(key, persist_inst) and persisted
        if not persisted:
            effects = self._suppress_unpersisted(effects)
        wrapped = self._wrap(key, effects)
        self._evict_excess()
        return wrapped

    def _drop_key(self, key: Hashable) -> None:
        """Forget a moved-out key entirely (RAM tiers + spill record).

        The moved-out mark is the only thing that must survive; a stale
        spill record would be harmless (the mark gates every read of it)
        but wastes the store, so the delete is best-effort.
        """
        inst = self._resident.pop(key, None)
        if inst is not None:
            namespace = repr(key)
            if self._namespaces.get(namespace) == key:
                del self._namespaces[namespace]
        self._frozen.pop(key, None)
        self._durable_stamps.pop(key, None)
        if self._spill_store is not None:
            try:
                self._spill_store.delete(key)
            except (StorageUnavailable, OSError):
                pass

    def _persist_marks(self) -> bool:
        """Persist the ownership marks before a migration reply escapes.

        Same discipline as :meth:`_persist_step`, for the meta record:
        a frozen mark that failed to reach the store must suppress the
        MIGRATE-FROZEN reply — otherwise a hard-killed source replica
        could recover unfrozen and ack an update the coordinator's
        snapshot never saw.  Under ``durability="none"`` nothing durable
        is promised anyway, so a failed write only costs recovery
        fidelity (and hard kills are out of model there).
        """
        if self._ownership is None or self._spill_store is None:
            return True
        try:
            self._write_meta(clean=False)
            if self._durability == "write_through":
                self._spill_store.flush()
            elif self._durability == "group_sync":
                self._sync_dirty = True
        except (StorageUnavailable, OSError):
            self.persist_refusals += 1
            return self._durability == "none"
        return True

    def on_timer(self, key: str, now: float) -> Effects:
        self._now = now
        if key == _SWEEP_TIMER:
            return self._sweep(now)
        if key == _COALESCE_TIMER:
            return self._flush_outbox()
        if key == _SYNC_TIMER:
            return self._sync_commit()
        # Timer keys are namespaced "<repr(key)>|<proposer key>"; the
        # namespace index resolves them in O(1) regardless of keyspace
        # size.  Split at the LAST '|' — proposer timer keys never
        # contain one, but a key's repr may.  A timer for an evicted (or
        # never-proposing) key is stale by construction — eviction
        # requires an idle proposer, whose timers have all fired or been
        # cancelled — and is dropped.
        namespace, _, proposer_key = key.rpartition("|")
        candidate = self._namespaces.get(namespace)
        if candidate is None:
            return Effects()
        if proposer_key == _REJOIN_TIMER:
            state = self._rejoin_active.get(candidate)
            if state is None:
                return Effects()  # refresh completed; stale re-drive
            instance = self.instance(candidate, now)
            effects = Effects()
            # The previous round expired with no quorum: back off.
            state.rounds += 1
            self._rejoin_broadcast(instance, state, effects)
            if not self._persist_step(candidate, instance):
                effects = self._suppress_unpersisted(effects)
            wrapped = self._wrap(candidate, effects)
            self._evict_excess()
            return wrapped
        instance = self._resident.get(candidate)
        if instance is None or instance.proposer is None:
            return Effects()
        self._note_touch(candidate, instance, now)
        effects = instance.proposer.on_timer(proposer_key, now)
        if not self._persist_step(candidate, instance):
            effects = self._suppress_unpersisted(effects)
        wrapped = self._wrap(candidate, effects)
        self._evict_excess()
        return wrapped

    # ------------------------------------------------------------------
    def _wrap(self, key: Hashable, effects: Effects) -> Effects:
        """Wrap outgoing sends in Keyed envelopes and namespace timers.

        Replies to clients are wrapped too, so client code can route by
        key; adapters unwrap transparently.  A broadcast lists the same
        inner message once per destination; sharing one ``Keyed`` wrapper
        across those sends is what makes its ``wire_size`` memo pay — the
        payload is sized once per broadcast instead of once per envelope.

        With ``keyed_coalesce_window`` set, peer-bound envelopes detour
        through the outbox and leave as one :class:`KeyedBatch` per peer
        at the next coalesce flush; client-bound replies always go out
        immediately (a reply delayed is a request slowed).  Parking is
        *superseding*: a fresh envelope whose (key, message type,
        request id, attempt) slot is already parked for the destination
        replaces the old envelope in place — same flush position, newer
        payload.  This is what makes update-timeout re-drives
        coalescing-aware: a re-driven MERGE for a batch whose original
        MERGE still sits parked replaces it instead of queueing a
        duplicate behind it (the re-drive payload subsumes the parked
        one, so nothing is lost and nothing arrives out of date).
        """
        wrapped = Effects()
        coalesce = self.config.keyed_coalesce_window
        group_sync = self._durability == "group_sync"
        shared: dict[int, Keyed] = {}
        for dst, message in effects.sends:
            keyed = shared.get(id(message))
            if keyed is None:
                keyed = Keyed(key=key, message=message)
                shared[id(message)] = keyed
            if group_sync and self._sync_dirty and isinstance(message, _CERTIFYING):
                # Group commit: this ack attests state the store has not
                # flushed yet — park it until the sync tick fsyncs.  Any
                # key's dirtiness holds the window (the unflushed batch
                # is store-wide, not per key).  Requests and nacks flow:
                # no learn certificate can rest on them.
                self._sync_parked.append((dst, keyed))
                continue
            if coalesce is not None and dst in self._remote_peers:
                bucket = self._outbox.setdefault(dst, {})
                slot = (
                    key,
                    type(message).__name__,
                    getattr(message, "request_id", None),
                    getattr(message, "attempt", None),
                )
                old = bucket.get(slot)
                if old is not None:
                    self._acceptor_stats.keyed_envelopes_superseded += 1
                else:
                    self._parked_count[key] = self._parked_count.get(key, 0) + 1
                bucket[slot] = keyed
                budget = self.config.keyed_outbox_byte_budget
                adaptive = self.config.keyed_coalesce_adaptive
                if budget is not None or adaptive:
                    parked = self._parked_bytes.get(dst, 0) + keyed.wire_size()
                    if old is not None:
                        parked -= old.wire_size()
                    self._parked_bytes[dst] = parked
                if adaptive:
                    last = self._coalesce_last.get(dst)
                    self._coalesce_last[dst] = self._now
                    if last is not None:
                        interval = max(self._now - last, 1e-9)
                        prev = self._coalesce_ewma.get(dst)
                        self._coalesce_ewma[dst] = (
                            interval
                            if prev is None
                            else prev + _COALESCE_EWMA_ALPHA * (interval - prev)
                        )
                if budget is not None and self._parked_bytes.get(dst, 0) >= budget:
                    self._flush_peer(dst, wrapped)
                elif not self._coalesce_armed:
                    self._coalesce_armed = True
                    wrapped.set_timer(_COALESCE_TIMER, self._coalesce_delay(dst))
            else:
                wrapped.send(dst, keyed)
        for timer_key, delay in effects.timers:
            wrapped.set_timer(f"{key!r}|{timer_key}", delay)
        for timer_key in effects.cancels:
            wrapped.cancel_timer(f"{key!r}|{timer_key}")
        if (
            group_sync
            and not self._sync_armed
            and (self._sync_dirty or self._sync_parked)
        ):
            self._sync_armed = True
            wrapped.set_timer(_SYNC_TIMER, self.config.durability_sync_window)
        return wrapped

    def _coalesce_delay(self, dst: str) -> float:
        """The next flush window, sized to the arming peer's traffic.

        Fixed mode returns ``keyed_coalesce_window`` unchanged.  Adaptive
        mode targets roughly :data:`_COALESCE_TARGET_BATCH` arrivals per
        window from the EWMA enqueue interval, clamped between the floor
        (``keyed_coalesce_min_window``, default window/8) and the window:
        a hot peer flushes near the floor, a trickle waits the full
        window.
        """
        # Only reachable from the parking branch, so the window is set;
        # 0.0 (flush on the next tick, i.e. batching off) must survive —
        # coercing it to a real window silently changes every deployment
        # that disables coalescing this way.
        window = self.config.keyed_coalesce_window
        if not self.config.keyed_coalesce_adaptive:
            return window
        ewma = self._coalesce_ewma.get(dst)
        if ewma is None:
            return window
        floor = self.config.keyed_coalesce_min_window or window / 8.0
        return min(max(ewma * _COALESCE_TARGET_BATCH, floor), window)

    def _flush_peer(self, dst: str, effects: Effects) -> None:
        """Byte-budget early flush: ship one peer's parked envelopes now.

        The coalesce timer (if armed) keeps running for the other peers;
        re-arming is unnecessary because this peer's bucket is empty
        until its next park.
        """
        bucket = self._outbox.pop(dst, None)
        self._parked_bytes.pop(dst, None)
        if not bucket:
            return
        for slot in bucket:
            slot_key = slot[0]
            count = self._parked_count.get(slot_key)
            if count is not None:
                if count <= 1:
                    del self._parked_count[slot_key]
                else:
                    self._parked_count[slot_key] = count - 1
        stats = self._acceptor_stats
        stats.keyed_budget_flushes += 1
        items = list(bucket.values())
        if len(items) == 1:
            effects.send(dst, items[0])
            return
        effects.send(dst, KeyedBatch(items=tuple(items)))
        stats.keyed_batches_packed += 1
        stats.keyed_batch_messages += len(items)
        stats.keyed_batch_bytes_saved += (len(items) - 1) * ENVELOPE_OVERHEAD_BYTES

    def _flush_outbox(self) -> Effects:
        """Coalesce flush: one framed envelope per peer with traffic."""
        effects = Effects()
        self._coalesce_armed = False
        if not self._outbox:
            return effects
        outbox, self._outbox = self._outbox, {}
        self._parked_count.clear()
        self._parked_bytes.clear()
        stats = self._acceptor_stats
        for dst, bucket in outbox.items():
            items = list(bucket.values())
            if len(items) == 1:  # nothing to amortize; skip the framing
                effects.send(dst, items[0])
                continue
            effects.send(dst, KeyedBatch(items=tuple(items)))
            stats.keyed_batches_packed += 1
            stats.keyed_batch_messages += len(items)
            stats.keyed_batch_bytes_saved += (
                len(items) - 1
            ) * ENVELOPE_OVERHEAD_BYTES
        return effects

    # ------------------------------------------------------------------
    # Write-through durability
    # ------------------------------------------------------------------
    def _persist_step(self, key: Hashable, inst: _KeyInstance) -> bool:
        """Persist the key's triple after a handling step, before its
        effects escape (called between the handler and :meth:`_wrap`).

        ``write_through`` flushes immediately; ``group_sync`` leaves the
        put unflushed and marks the window dirty, which makes
        :meth:`_wrap` park the step's certifying acks until the
        group-commit tick.  The node-wide monotone counters ride along
        via leased meta snapshots (:meth:`_lease_counters`), so a learn
        sequence number in an escaped QUERY-DONE can never be reissued
        by the next generation.

        Returns False when the persist (put or flush) *failed*: the
        durable stamp is dropped — the next step re-persists from scratch
        once the store heals — and the caller must run the step's effects
        through :meth:`_suppress_unpersisted` so no ack escapes resting
        on state that never reached disk.  An IO fault degrades the
        replica, it never crashes it.
        """
        if self._durability == "none":
            if self._dirty_marked:
                # A rejoin generation on an unclean store still leases
                # its counters — identifiers must not be reused even if
                # record persistence stays demotion-driven.  A lease
                # failure here is retried on the next step (no ack rests
                # on the lease; only identifier uniqueness does, and the
                # watermark is unchanged on failure).
                try:
                    self._lease_counters()
                except (StorageUnavailable, OSError):
                    pass
            return True
        store = self._spill_store
        acceptor = inst.acceptor
        proposer = inst.proposer
        learned_max = (
            proposer.learned_max if proposer is not None else inst.learned_max
        )
        stamp = self._durable_stamps.get(key)
        dirty = stamp is None or not (
            acceptor.state is stamp[0]
            and acceptor.round == stamp[1]
            and learned_max is stamp[2]
        )
        try:
            if dirty:
                store.put(
                    key, SpillRecord(acceptor.state, acceptor.round, learned_max)
                )
                self._durable_stamps[key] = (
                    acceptor.state,
                    acceptor.round,
                    learned_max,
                )
                self.write_through_persists += 1
            leased = self._lease_counters()
            if not (dirty or leased):
                return True
            if self._durability == "write_through":
                store.flush()
            else:
                self._sync_dirty = True
            return True
        except (StorageUnavailable, OSError):
            # The put may have half-landed or the flush may have been
            # lost; either way nothing durable is certain past the last
            # *successful* flush.  Dropping the stamp forces the next
            # step on this key to re-put and re-flush the full triple.
            self._durable_stamps.pop(key, None)
            self.persist_refusals += 1
            return False

    def _suppress_unpersisted(self, effects: Effects) -> Effects:
        """Strip a failed-persist step's effects of everything that would
        promise durability.

        Certifying peer acks (MERGED / PREPARE-ACK / VOTED) are dropped —
        indistinguishable from message loss, which peers already tolerate
        by re-driving.  Client completions become ``Refused(code=
        "storage")``: the operation may have applied in RAM, but its
        durability was never certified, so the client must not be told
        it completed (it may retry verbatim — merges are idempotent).
        Requests, nacks and timers flow: re-drives are exactly how the
        replica resumes service once the store heals.
        """
        safe = Effects()
        for dst, message in effects.sends:
            if isinstance(message, (UpdateDone, QueryDone)):
                safe.send(
                    dst,
                    Refused(
                        request_id=message.request_id,
                        code="storage",
                        detail="write-through persist failed",
                    ),
                )
            elif isinstance(message, _CERTIFYING):
                continue  # dropped: peers re-drive (loss-tolerant)
            else:
                safe.send(dst, message)
        for timer_key, delay in effects.timers:
            safe.set_timer(timer_key, delay)
        for timer_key in effects.cancels:
            safe.cancel_timer(timer_key)
        return safe

    def _lease_counters(self) -> bool:
        """Persist counter watermarks with a lease margin when exceeded."""
        snapshot = self._shared.counter_snapshot()
        for name, value in snapshot.items():
            if value >= self._counter_watermarks.get(name, 0):
                self._write_meta(clean=False)
                return True
        return False

    def _write_meta(self, clean: bool) -> None:
        """Write the store meta: counters, markers, epoch, durability.

        Dirty snapshots lease the counters ahead (:data:`_COUNTER_LEASE`)
        so one meta write covers many bumps; a recovering node skips to
        the lease end (identifiers may be skipped, never reused).
        Watermarks only move forward — a clean shutdown's exact snapshot
        must not regress a previously persisted reservation.
        """
        store = self._spill_store
        if store is None:
            return
        snapshot = self._shared.counter_snapshot()
        if not clean:
            snapshot = {
                name: value + _COUNTER_LEASE for name, value in snapshot.items()
            }
        for name, value in snapshot.items():
            previous = self._counter_watermarks.get(name, 0)
            if value < previous:
                snapshot[name] = previous
        meta: dict[str, Any] = dict(snapshot)
        meta["clean_shutdown"] = clean
        meta["node_epoch"] = self._node_epoch
        meta["durability"] = self._durability
        if self._ownership is not None:
            # Ownership marks ride in the same meta record: moved-out
            # forwarding, moved-in grants and open freezes must survive
            # a hard kill (a recovered source replica that forgot its
            # freeze could ack an update the migration snapshot missed).
            meta.update(self._ownership.snapshot())
        store.put_meta(meta)
        self._counter_watermarks = snapshot
        self._dirty_marked = not clean

    def _sync_commit(self) -> Effects:
        """Group-commit tick: one flush covers the window, then every
        parked certifying ack is released (it now attests durable state).

        A failed flush releases *nothing*: the parked acks stay parked
        and the tick re-arms — the replica keeps retrying on the sync
        cadence and the acks go out on the first flush that succeeds
        after the store heals.
        """
        self._sync_armed = False
        effects = Effects()
        if self._sync_dirty:
            try:
                self._spill_store.flush()
            except (StorageUnavailable, OSError):
                self.persist_refusals += 1
                self._sync_armed = True
                effects.set_timer(_SYNC_TIMER, self.config.durability_sync_window)
                return effects
            self._sync_dirty = False
            self.group_commits += 1
        parked, self._sync_parked = self._sync_parked, []
        for dst, keyed in parked:
            effects.send(dst, keyed)
        return effects

    def drain_spill_accrued(self) -> float:
        """Virtual IO seconds accrued by the spill store since the last
        drain (0.0 for stores without a latency model) — the driver
        charges them against this node's busy time."""
        store = self._spill_store
        drain = getattr(store, "drain_accrued", None)
        return drain() if drain is not None else 0.0

    # ------------------------------------------------------------------
    # Quorum re-join
    # ------------------------------------------------------------------
    def rejoin_pending_count(self) -> int:
        """Keys still awaiting their read-quorum refresh."""
        return len(self._rejoin_pending)

    def rejoin(self) -> Effects:
        """Proactively start the read-quorum refresh for every pending key.

        Recovery with ``rejoin=True`` marks each stored key pending and
        refreshes lazily on first touch; this hook (surfaced as the api
        ``Store.rejoin()``) instead opens all refreshes at once so a
        rejoining replica converges while idle.  Returns the broadcast
        effects the driver must execute.
        """
        effects = Effects()
        for key in list(self._rejoin_pending):
            if key in self._rejoin_active:
                continue
            instance = self.instance(key)
            opened = Effects()
            self._start_rejoin(key, instance, opened)
            effects.merge(self._wrap(key, opened))
        self._evict_excess()
        return effects

    def _rejoin_gate(
        self, key: Hashable, inst: _KeyInstance, src: str, inner: Any, now: float
    ) -> Effects:
        """Traffic filter for a key whose pair is possibly stale.

        Client commands buffer behind the refresh and replay once it
        completes.  Peer protocol requests are *dropped* (and trigger the
        refresh): a §3.3 prepare answered from a stale pair could grant
        a promise the dead generation already gave away, and message
        loss is tolerated by design — peers re-drive.  Only the
        refresh's own quorum replies are folded in.
        """
        state = self._rejoin_active.get(key)
        if isinstance(inner, (ClientUpdate, ClientQuery)):
            effects = Effects()
            if state is None:
                state = self._start_rejoin(key, inst, effects)
            state.buffered.append((src, inner))
            return effects
        if (
            state is not None
            and isinstance(inner, (PrepareAck, PrepareNack))
            and getattr(inner, "request_id", None) == state.request_id
        ):
            return self._on_rejoin_reply(key, inst, state, src, inner, now)
        effects = Effects()
        if state is None:
            self._start_rejoin(key, inst, effects)
        return effects

    def _start_rejoin(
        self, key: Hashable, inst: _KeyInstance, effects: Effects
    ) -> _RejoinState:
        self._rejoin_seq += 1
        # The epoch distinguishes this generation's refreshes from any
        # stale rejoin traffic still in flight from a previous life.
        request_id = f"rejoin:{self._node_epoch}:{self._rejoin_seq}"
        state = _RejoinState(request_id)
        self._rejoin_active[key] = state
        # Acceptor-only keys never registered a timer namespace; the
        # rejoin re-drive timer needs one.
        self._namespaces.setdefault(repr(key), key)
        self._rejoin_broadcast(inst, state, effects)
        return state

    def _rejoin_broadcast(
        self, inst: _KeyInstance, state: _RejoinState, effects: Effects
    ) -> None:
        """One §3.3 prepare round refreshes the pair — no log shipping.

        Incremental round: always accepted, and every PREPARE-ACK (or
        NACK — both carry ``(round, state)``) returns the peer's pair to
        fold in.  The locally stored payload is shipped when configured:
        it was durable, so disseminating it can only help convergence.

        The re-drive timer backs off exponentially with each fruitless
        round (``config.backoff_multiplier`` / ``backoff_cap`` /
        ``backoff_jitter``) so a rejoin pinned behind sustained loss or
        a partition re-broadcasts a handful of times, not once per fixed
        timeout forever; a new peer reply resets the cadence
        (:meth:`_on_rejoin_reply`).
        """
        prepare = Prepare(
            request_id=state.request_id,
            attempt=0,
            round=Round.incremental(self._shared.rid_gen.fresh()),
            state=(
                inst.acceptor.state
                if self.config.include_state_in_prepare
                else None
            ),
        )
        for dst in self._remote_peers:
            effects.send(dst, prepare)
        if self.config.request_timeout is not None:
            config = self.config
            delay = min(
                config.request_timeout * config.backoff_multiplier**state.rounds,
                config.backoff_cap,
            )
            if config.backoff_jitter > 0.0:
                # Deterministic per-(refresh, round) jitter: hash() is
                # salted per process, so a CRC keeps seeded runs
                # bit-identical while de-synchronizing replicas.
                token = f"{state.request_id}:{state.rounds}"
                frac = (zlib.crc32(token.encode()) % 1000) / 999.0
                delay *= 1.0 + config.backoff_jitter * frac
            effects.set_timer(_REJOIN_TIMER, delay)

    def _on_rejoin_reply(
        self,
        key: Hashable,
        inst: _KeyInstance,
        state: _RejoinState,
        src: str,
        inner: Any,
        now: float,
    ) -> Effects:
        acceptor = inst.acceptor
        acceptor.state = acceptor.state.join(inner.state)
        if inner.round.number > acceptor.round.number:
            acceptor.round = inner.round
        if src not in state.replied:
            state.replied.add(src)
            # Progress: a previously silent peer answered — re-broadcasts
            # (if still needed) return to the base cadence.
            state.rounds = 0
        effects = Effects()
        if not self.quorum.is_quorum(state.replied | {self.node_id}):
            return effects
        # Quorum reached: the pair now subsumes every certificate this
        # replica may have contributed to (quorum intersection), so the
        # key can serve again.  Replay what the refresh held back.
        del self._rejoin_active[key]
        self._rejoin_pending.discard(key)
        self.rejoin_refreshes += 1
        if self.config.request_timeout is not None:
            effects.cancel_timer(_REJOIN_TIMER)
        for buffered_src, buffered_inner in state.buffered:
            # Ownership-aware replay: an install may have landed for the
            # key while it sat behind the refresh — the command must
            # buffer (or refuse) there, not bypass the migration gate.
            effects.merge(
                self._client_command(key, inst, buffered_src, buffered_inner, now)
            )
        return effects
