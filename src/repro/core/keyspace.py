"""Keyed CRDT store: many independent protocol instances on one replica.

The paper's implementation lives inside the Scalaris key-value store —
"linearizable access on CRDT data on a fine-granular scale" (§1).  This
module provides that deployment shape: a :class:`KeyedCrdtReplica` hosts
one acceptor/proposer pair *per key*, created on first touch from a
per-key initial state.  Keys are completely independent — an update to
``"cart:42"`` never synchronizes with a read of ``"views:7"`` — which is
exactly why the fine-granular deployment scales: contention is per key,
not per store.

Wire format: client messages and the inter-replica protocol messages are
wrapped in :class:`Keyed` envelopes carrying the key; unwrapped handling
is delegated to the shared peer-message router
(:mod:`repro.core.router`) against the per-key acceptor/proposer pair.
Memory overhead per key is the CRDT payload plus one round — the paper's
logless claim, multiplied by keys, with no log anywhere.

Scale notes: timer routing is O(1) in the number of keys (a
namespace→key index, maintained on first touch, replaces any scan over
the keyspace), and :meth:`Keyed.wire_size` memoizes like
:class:`~repro.net.message.Envelope` does, so broadcasting one keyed
payload to many peers sizes the inner CRDT once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.core.acceptor import Acceptor
from repro.core.config import CrdtPaxosConfig
from repro.core.messages import ClientQuery, ClientUpdate
from repro.core.proposer import Proposer
from repro.core.router import dispatch_peer_message
from repro.crdt.base import StateCRDT
from repro.net.message import wire_size as _wire_size
from repro.net.node import Effects, ProtocolNode
from repro.quorum.system import MajorityQuorum, QuorumSystem


# No ``slots=True``: the memoized wire size lives in the instance dict
# (same pattern as Envelope.size_bytes).
@dataclass(frozen=True)
class Keyed:
    """Wrapper routing any protocol or client message to one key."""

    key: Hashable
    message: Any

    @property
    def request_id(self) -> Any:
        """Delegate correlation ids so request/reply clients (e.g. the
        asyncio client) can match keyed replies transparently."""
        return getattr(self.message, "request_id", None)

    def wire_size(self) -> int:
        """Total size of key + inner message; memoized — one Keyed object
        is broadcast to every peer, and sizing a large CRDT payload per
        envelope was a top profile entry at 10k-key scale."""
        cached = self.__dict__.get("_size")
        if cached is None:
            cached = _wire_size(self.key) + _wire_size(self.message)
            object.__setattr__(self, "_size", cached)
        return cached


class _KeyInstance:
    """One key's acceptor + proposer pair."""

    def __init__(
        self,
        key: Hashable,
        node_id: str,
        proposer_index: int,
        peers: list[str],
        initial_state: StateCRDT,
        quorum: QuorumSystem,
        config: CrdtPaxosConfig,
    ) -> None:
        self.acceptor = Acceptor(initial_state)
        self.proposer = Proposer(
            node_id=node_id,
            proposer_index=proposer_index,
            peers=peers,
            acceptor=self.acceptor,
            quorum=quorum,
            config=config,
            initial_state=initial_state,
        )


class KeyedCrdtReplica(ProtocolNode):
    """A replica hosting an independent CRDT Paxos instance per key.

    Parameters
    ----------
    initial_state_for:
        ``key → bottom payload`` factory; called once per key on first
        touch and must be deterministic across replicas (all members must
        agree on a key's type).
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        initial_state_for: Callable[[Hashable], StateCRDT],
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.config = config or CrdtPaxosConfig()
        self.quorum = quorum or MajorityQuorum(peers)
        self._initial_state_for = initial_state_for
        self._proposer_index = sorted(peers).index(node_id)
        self._instances: dict[Hashable, _KeyInstance] = {}
        #: Timer-namespace index: ``repr(key)`` → key.  Keeps
        #: :meth:`on_timer` O(1) in the number of keys.
        self._namespaces: dict[str, Hashable] = {}

    # ------------------------------------------------------------------
    def instance(self, key: Hashable) -> _KeyInstance:
        """The per-key machinery, created on first touch."""
        existing = self._instances.get(key)
        if existing is not None:
            return existing
        created = _KeyInstance(
            key=key,
            node_id=self.node_id,
            proposer_index=self._proposer_index,
            peers=self.peers,
            initial_state=self._initial_state_for(key),
            quorum=self.quorum,
            config=self.config,
        )
        self._instances[key] = created
        # First registration wins, matching the old first-match scan for
        # (pathological) distinct keys sharing a repr.
        self._namespaces.setdefault(repr(key), key)
        return created

    def keys(self) -> list[Hashable]:
        return list(self._instances)

    def state_of(self, key: Hashable) -> StateCRDT:
        return self.instance(key).acceptor.state

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> Effects:
        return Effects()

    def on_message(self, src: str, message: Any, now: float) -> Effects:
        if not isinstance(message, Keyed):
            return Effects()  # unkeyed traffic is not ours
        key = message.key
        inner = message.message
        instance = self.instance(key)

        if isinstance(inner, ClientUpdate):
            effects = instance.proposer.client_update(
                src, inner.request_id, inner.op, now
            )
        elif isinstance(inner, ClientQuery):
            effects = instance.proposer.client_query(
                src, inner.request_id, inner.op, now
            )
        else:
            effects = self._on_peer_message(instance, src, inner, now)
        return self._wrap(key, effects)

    def _on_peer_message(
        self, instance: _KeyInstance, src: str, inner: Any, now: float
    ) -> Effects:
        effects = dispatch_peer_message(
            instance.acceptor, instance.proposer, src, inner, now
        )
        return effects if effects is not None else Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        # Timer keys are namespaced "<repr(key)>|<proposer key>"; the
        # namespace index resolves them in O(1) regardless of keyspace size.
        namespace, _, proposer_key = key.partition("|")
        candidate = self._namespaces.get(namespace)
        if candidate is None:
            return Effects()
        instance = self._instances[candidate]
        return self._wrap(candidate, instance.proposer.on_timer(proposer_key, now))

    # ------------------------------------------------------------------
    def _wrap(self, key: Hashable, effects: Effects) -> Effects:
        """Wrap outgoing sends in Keyed envelopes and namespace timers.

        Replies to clients are wrapped too, so client code can route by
        key; adapters unwrap transparently.  A broadcast lists the same
        inner message once per destination; sharing one ``Keyed`` wrapper
        across those sends is what makes its ``wire_size`` memo pay — the
        payload is sized once per broadcast instead of once per envelope.
        """
        wrapped = Effects()
        shared: dict[int, Keyed] = {}
        for dst, message in effects.sends:
            keyed = shared.get(id(message))
            if keyed is None:
                keyed = Keyed(key=key, message=message)
                shared[id(message)] = keyed
            wrapped.send(dst, keyed)
        for timer_key, delay in effects.timers:
            wrapped.set_timer(f"{key!r}|{timer_key}", delay)
        for timer_key in effects.cancels:
            wrapped.cancel_timer(f"{key!r}|{timer_key}")
        return wrapped
