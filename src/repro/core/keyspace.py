"""Keyed CRDT store: many independent protocol instances on one replica.

The paper's implementation lives inside the Scalaris key-value store —
"linearizable access on CRDT data on a fine-granular scale" (§1).  This
module provides that deployment shape: a :class:`KeyedCrdtReplica` hosts
one acceptor/proposer pair *per key*, created on first touch from a
per-key initial state.  Keys are completely independent — an update to
``"cart:42"`` never synchronizes with a read of ``"views:7"`` — which is
exactly why the fine-granular deployment scales: contention is per key,
not per store.

Wire format: client messages and the inter-replica protocol messages are
wrapped in :class:`Keyed` envelopes carrying the key; unwrapped handling
is delegated to the per-key :class:`~repro.core.replica.CrdtPaxosReplica`
machinery.  Memory overhead per key is the CRDT payload plus one round —
the paper's logless claim, multiplied by keys, with no log anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.core.acceptor import Acceptor
from repro.core.config import CrdtPaxosConfig
from repro.core.messages import ClientQuery, ClientUpdate
from repro.core.proposer import Proposer
from repro.crdt.base import StateCRDT
from repro.net.message import wire_size as _wire_size
from repro.net.node import Effects, ProtocolNode
from repro.quorum.system import MajorityQuorum, QuorumSystem


@dataclass(frozen=True, slots=True)
class Keyed:
    """Wrapper routing any protocol or client message to one key."""

    key: Hashable
    message: Any

    @property
    def request_id(self) -> Any:
        """Delegate correlation ids so request/reply clients (e.g. the
        asyncio client) can match keyed replies transparently."""
        return getattr(self.message, "request_id", None)

    def wire_size(self) -> int:
        return _wire_size(self.key) + _wire_size(self.message)


class _KeyInstance:
    """One key's acceptor + proposer pair."""

    def __init__(
        self,
        key: Hashable,
        node_id: str,
        proposer_index: int,
        peers: list[str],
        initial_state: StateCRDT,
        quorum: QuorumSystem,
        config: CrdtPaxosConfig,
    ) -> None:
        self.acceptor = Acceptor(initial_state)
        self.proposer = Proposer(
            node_id=node_id,
            proposer_index=proposer_index,
            peers=peers,
            acceptor=self.acceptor,
            quorum=quorum,
            config=config,
            initial_state=initial_state,
        )


class KeyedCrdtReplica(ProtocolNode):
    """A replica hosting an independent CRDT Paxos instance per key.

    Parameters
    ----------
    initial_state_for:
        ``key → bottom payload`` factory; called once per key on first
        touch and must be deterministic across replicas (all members must
        agree on a key's type).
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        initial_state_for: Callable[[Hashable], StateCRDT],
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.config = config or CrdtPaxosConfig()
        self.quorum = quorum or MajorityQuorum(peers)
        self._initial_state_for = initial_state_for
        self._proposer_index = sorted(peers).index(node_id)
        self._instances: dict[Hashable, _KeyInstance] = {}

    # ------------------------------------------------------------------
    def instance(self, key: Hashable) -> _KeyInstance:
        """The per-key machinery, created on first touch."""
        existing = self._instances.get(key)
        if existing is not None:
            return existing
        created = _KeyInstance(
            key=key,
            node_id=self.node_id,
            proposer_index=self._proposer_index,
            peers=self.peers,
            initial_state=self._initial_state_for(key),
            quorum=self.quorum,
            config=self.config,
        )
        self._instances[key] = created
        return created

    def keys(self) -> list[Hashable]:
        return list(self._instances)

    def state_of(self, key: Hashable) -> StateCRDT:
        return self.instance(key).acceptor.state

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> Effects:
        return Effects()

    def on_message(self, src: str, message: Any, now: float) -> Effects:
        if not isinstance(message, Keyed):
            return Effects()  # unkeyed traffic is not ours
        key = message.key
        inner = message.message
        instance = self.instance(key)

        if isinstance(inner, ClientUpdate):
            effects = instance.proposer.client_update(
                src, inner.request_id, inner.op, now
            )
        elif isinstance(inner, ClientQuery):
            effects = instance.proposer.client_query(
                src, inner.request_id, inner.op, now
            )
        else:
            effects = self._on_peer_message(instance, src, inner, now)
        return self._wrap(key, effects)

    def _on_peer_message(
        self, instance: _KeyInstance, src: str, inner: Any, now: float
    ) -> Effects:
        from repro.core.messages import (
            Merge,
            Merged,
            Prepare,
            PrepareAck,
            PrepareNack,
            Vote,
            Voted,
            VoteNack,
        )

        if isinstance(inner, Merge):
            effects = Effects()
            effects.send(src, instance.acceptor.handle_merge(inner))
            return effects
        if isinstance(inner, Prepare):
            effects = Effects()
            effects.send(src, instance.acceptor.handle_prepare(inner))
            return effects
        if isinstance(inner, Vote):
            effects = Effects()
            effects.send(src, instance.acceptor.handle_vote(inner))
            return effects
        if isinstance(inner, Merged):
            return instance.proposer.on_merged(src, inner, now)
        if isinstance(inner, PrepareAck):
            return instance.proposer.on_prepare_ack(src, inner, now)
        if isinstance(inner, PrepareNack):
            return instance.proposer.on_prepare_nack(src, inner, now)
        if isinstance(inner, Voted):
            return instance.proposer.on_voted(src, inner, now)
        if isinstance(inner, VoteNack):
            return instance.proposer.on_vote_nack(src, inner, now)
        return Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        # Timer keys are namespaced "<repr(key)>|<proposer key>".
        namespace, _, proposer_key = key.partition("|")
        for candidate, instance in self._instances.items():
            if repr(candidate) == namespace:
                return self._wrap(
                    candidate, instance.proposer.on_timer(proposer_key, now)
                )
        return Effects()

    # ------------------------------------------------------------------
    def _wrap(self, key: Hashable, effects: Effects) -> Effects:
        """Wrap outgoing sends in Keyed envelopes and namespace timers.

        Replies to clients are wrapped too, so client code can route by
        key; adapters unwrap transparently.
        """
        wrapped = Effects()
        for dst, message in effects.sends:
            wrapped.send(dst, Keyed(key=key, message=message))
        for timer_key, delay in effects.timers:
            wrapped.set_timer(f"{key!r}|{timer_key}", delay)
        for timer_key in effects.cancels:
            wrapped.cancel_timer(f"{key!r}|{timer_key}")
        return wrapped
