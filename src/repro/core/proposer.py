"""The proposer role of CRDT Paxos (Algorithm 2, left column).

A proposer turns client commands into protocol exchanges:

* **updates** — apply the update function at the co-located acceptor, then
  broadcast the resulting payload in a single ``MERGE`` round trip; done
  when a quorum (counting the local acceptor) acknowledged.
* **queries** — learn a payload state first: PREPARE to all acceptors; on
  a quorum of ACKs either (a) all payloads are equivalent → *learned by
  consistent quorum*, one round trip; or (b) all rounds are equal → VOTE
  the LUB, *learned by vote* on a quorum of VOTEDs; or (c) retry with a
  fixed prepare above every observed round number.  NACKs abort the
  attempt and retry (incremental by default — the §3.5 liveness argument).

Proposers keep **no durable state**: only bookkeeping for open requests.
Batching (§3.6) buffers commands per proposer and applies them locally, so
message count and size are independent of batch size.

Commands are grouped into batches even when batching is off (a batch of
one); this gives a single code path and matches the paper's observation
that the batched and unbatched protocols are the same machine.

**Flyweight sharing** (:class:`ProposerShared`): everything that is
identical for every proposer one replica hosts — node identity, peer
list, quorum system, config, batching phase, backoff factor, the round-id
source and the stats sink — lives in one shared context object.  A keyed
deployment (:class:`~repro.core.keyspace.KeyedCrdtReplica`) hosts one
proposer *per key*; hoisting the shared state means a hot key costs a
handful of machine words of bookkeeping, not a private copy of the whole
replica configuration.  The single-instance replica simply owns a 1:1
context.  Sharing the :class:`~repro.core.rounds.RoundIdGenerator` is
safe: round ids only need to be unique, and a node-wide counter is
strictly more unique than a per-key one.

**Admission control** (``config.update_pipeline``): because CRDT merges
commute and are idempotent, update batches from one proposer need no
ordering between themselves — the proposer may broadcast a new MERGE batch
while up to ``update_pipeline - 1`` earlier batches still await their
quorum of acks, hiding the merge round trip instead of stalling a full
batch window per in-flight batch.  The window bounds in-flight MERGE
traffic in *every* mode: batched proposals wait for the next flush tick,
and unbatched commands past the window queue and are admitted (one
batch-of-one per completion) as earlier round trips finish.  Queries
remain single-flight per batched proposer (the §3.5 liveness argument
relies on one prepare front per proposer).  ``ProposerStats`` exposes the
observed pipeline depth.

**Hot-path accumulation**: quorum folds use
:class:`~repro.crdt.base.MergeAccumulator` and the payloads' digest/join
short-circuits, so a quorum acking with equal payloads is folded without
copying and compared against the LUB in O(1) instead of two full lattice
passes per ack.

**Re-drive freshness**: an update-timeout re-drive does not resend the
original batch payload.  Without ``delta_merge`` it sends the acceptor's
*current* state (which subsumes the batch and disseminates everything
learned since); with ``delta_merge`` it sends the batch's accumulated
delta — the original delta joined with the deltas of every update batch
started since — still far smaller than the full payload but fresher than
the original fragment.  Both are safe: a MERGED ack certifies the peer
stores a superset of the batch's updates.  Peers that already acked are
skipped.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.acceptor import Acceptor
from repro.core.config import CrdtPaxosConfig
from repro.core.messages import (
    Merge,
    Merged,
    Prepare,
    PrepareAck,
    PrepareNack,
    QueryDone,
    Refused,
    UpdateDone,
    Vote,
    Voted,
    VoteNack,
)
from repro.core.rounds import Round, RoundIdGenerator
from repro.crdt.base import (
    MergeAccumulator,
    QueryOp,
    StateCRDT,
    UpdateOp,
    join_all,
)
from repro.net.node import Effects
from repro.quorum.system import QuorumSystem


@dataclass
class _UpdateItem:
    client: str
    request_id: str
    op: UpdateOp


@dataclass
class _QueryItem:
    client: str
    request_id: str
    op: QueryOp


@dataclass
class _UpdateBatch:
    batch_id: str
    items: list[_UpdateItem]
    payload: StateCRDT
    tags: list[Any]
    acked: set[str] = field(default_factory=set)
    #: Delta-mode re-drive payload: the batch delta plus the deltas of
    #: every update batch started while this one was in flight.
    redrive: MergeAccumulator | None = None
    #: Consecutive fruitless re-drive rounds (no new MERGED ack since the
    #: last timeout); drives the exponential backoff and the give-up limit.
    redrive_rounds: int = 0


@dataclass
class _QueryBatch:
    batch_id: str
    items: list[_QueryItem]
    accumulator: MergeAccumulator
    attempt: int = 0
    phase: str = "prepare"  # prepare | vote | backoff
    sent_round: Round | None = None
    acks: dict[str, tuple[Round, StateCRDT]] = field(default_factory=dict)
    voted: set[str] = field(default_factory=set)
    proposed: StateCRDT | None = None
    max_round_number: int = 0
    round_trips: int = 0
    retry_kind: str = "incremental"
    #: Consecutive fruitless supervision rounds (query timeouts with no
    #: intervening PREPARE-ACK); see ``_UpdateBatch.redrive_rounds``.
    redrive_rounds: int = 0

    @property
    def accumulated(self) -> StateCRDT:
        """The LUB of everything this batch has observed so far."""
        return self.accumulator.value


class ProposerStats:
    """Aggregate counters exposed for benchmarks and debugging.

    Slotted: a keyed replica shares one instance across every per-key
    proposer it hosts, but eager (per-key) instances still allocate one
    each, so the footprint matters at scale.
    """

    __slots__ = (
        "updates_completed",
        "queries_completed",
        "fast_path_learns",
        "vote_learns",
        "prepare_retries",
        "vote_retries",
        "timeouts",
        "quorum_refusals",
        "max_update_pipeline",
        "pipeline_stalls",
        "anti_entropy_pushes",
    )

    def __init__(self) -> None:
        self.updates_completed = 0
        self.queries_completed = 0
        self.fast_path_learns = 0
        self.vote_learns = 0
        self.prepare_retries = 0
        self.vote_retries = 0
        self.timeouts = 0
        #: Requests abandoned with ``Refused(code="quorum")`` after the
        #: ``redrive_limit`` was exhausted without reaching a quorum.
        self.quorum_refusals = 0
        #: Deepest concurrent-update-batch pipeline observed.
        self.max_update_pipeline = 0
        #: Ticks/commands where a full pipeline window held a batch back.
        self.pipeline_stalls = 0
        #: Full-state catch-up MERGEs sent to persistently divergent peers
        #: (``config.anti_entropy``).
        self.anti_entropy_pushes = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class ProposerShared:
    """Flyweight context: per-replica state identical for every proposer.

    One instance per replica (or per replica *group* membership).  The
    single-instance :class:`~repro.core.replica.CrdtPaxosReplica` owns a
    1:1 context; :class:`~repro.core.keyspace.KeyedCrdtReplica` shares one
    across all per-key proposers, which is what makes a million-key store
    affordable: config, peer lists, quorum system, the round-id source,
    batching phase, backoff factor and the stats sink are stored once per
    node instead of once per key.
    """

    __slots__ = (
        "node_id",
        "proposer_index",
        "remotes",
        "quorum",
        "config",
        "flush_phase",
        "backoff_factor",
        "rid_gen",
        "stats",
        "_batch_counter",
        "_learn_counter",
    )

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        quorum: QuorumSystem,
        config: CrdtPaxosConfig,
        stats: ProposerStats | None = None,
    ) -> None:
        self.node_id = node_id
        self.proposer_index = sorted(peers).index(node_id)
        self.remotes = tuple(p for p in peers if p != node_id)
        self.quorum = quorum
        self.config = config
        members = max(len(peers), 1)
        # Stagger the batching cadence across proposers (clock drift does
        # this in any real deployment).  If every proposer flushed at the
        # same instant, each read batch would systematically collide with
        # the other proposers' merge fronts and retry — the opposite of
        # what batching is for (§3.6).
        self.flush_phase = config.batch_window * self.proposer_index / members
        # Per-proposer backoff factor: identical retry delays re-align
        # dueling proposers (the §3.5 liveness hazard); distinct periods
        # let them drift apart, like randomized timeouts do in practice.
        self.backoff_factor = 1.0 + self.proposer_index / members
        self.rid_gen = RoundIdGenerator(self.proposer_index)
        self.stats = stats if stats is not None else ProposerStats()
        self._batch_counter = 0
        self._learn_counter = 0

    def next_batch(self) -> int:
        """Node-wide unique batch number.  Shared (not per-proposer) so a
        key evicted and rehydrated — whose fresh proposer starts from
        scratch — can never reuse a batch id a stale in-flight reply from
        the previous proposer generation might still answer."""
        self._batch_counter += 1
        return self._batch_counter

    def next_learn(self) -> int:
        """Node-wide monotone learn sequence (see ``QueryDone.learn_seq``).
        Shared for the same reason as :meth:`next_batch`: the GLA checker
        orders a node's learns by this number, and a rehydrated proposer
        restarting at 1 would collide with its previous generation."""
        self._learn_counter += 1
        return self._learn_counter

    def counter_snapshot(self) -> dict[str, int]:
        """The node-wide monotone counters, for durable spill metadata.

        The uniqueness arguments for batch ids, learn sequence numbers
        and round ids (:meth:`next_batch`, :meth:`next_learn`,
        :class:`~repro.core.rounds.RoundIdGenerator`) span *process
        generations* too: a replica recovered from a spill store must
        resume these counters, or a stale in-flight reply from before the
        restart could answer a fresh batch, and post-restart learns could
        order before pre-restart ones.
        """
        return {
            "batch_counter": self._batch_counter,
            "learn_counter": self._learn_counter,
            "round_id_counter": self.rid_gen.counter,
        }

    def restore_counters(self, snapshot: dict[str, int]) -> None:
        """Fast-forward the monotone counters past a previous generation's
        snapshot (restores only ever move forward)."""
        self._batch_counter = max(
            self._batch_counter, int(snapshot.get("batch_counter", 0))
        )
        self._learn_counter = max(
            self._learn_counter, int(snapshot.get("learn_counter", 0))
        )
        self.rid_gen.restore(int(snapshot.get("round_id_counter", 0)))


class Proposer:
    """Sans-io proposer; all handlers return :class:`Effects`.

    Slotted and flyweight-backed: per-proposer state is only the open
    request bookkeeping (plus two flags and the §3.4 learned maximum);
    everything configuration-shaped lives in :class:`ProposerShared`.
    """

    __slots__ = (
        "_shared",
        "_acceptor",
        "_initial_state",
        "_update_batches",
        "_query_batches",
        "_update_buffer",
        "_query_buffer",
        "_updates_in_flight",
        "_query_in_flight",
        "_flush_armed",
        "_flush_ever_armed",
        "_learned_max",
        "_ae_divergent",
        "_ae_last_push",
    )

    def __init__(
        self,
        shared: ProposerShared,
        acceptor: Acceptor,
        initial_state: StateCRDT,
        learned_max: StateCRDT | None = None,
    ) -> None:
        self._shared = shared
        self._acceptor = acceptor
        self._initial_state = initial_state
        self._update_batches: dict[str, _UpdateBatch] = {}
        self._query_batches: dict[str, _QueryBatch] = {}
        self._update_buffer: list[_UpdateItem] = []
        self._query_buffer: list[_QueryItem] = []
        self._updates_in_flight = 0
        self._query_in_flight = False
        self._flush_armed = False
        self._flush_ever_armed = False
        # ``learned_max`` seeds the §3.4 monotone learned maximum — the
        # keyed store passes the value persisted in a frozen record so the
        # GLA-Stability window survives a freeze/thaw cycle.
        self._learned_max: StateCRDT | None = learned_max
        # Anti-entropy bookkeeping, allocated on first use only — keyed
        # deployments host one proposer per key and the flyweight design
        # keeps idle per-key footprint at a handful of words.
        self._ae_divergent: dict[str, int] | None = None
        self._ae_last_push: dict[str, float] | None = None

    # ------------------------------------------------------------------
    # Flyweight accessors
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> str:
        return self._shared.node_id

    @property
    def stats(self) -> ProposerStats:
        return self._shared.stats

    @property
    def _config(self) -> CrdtPaxosConfig:
        return self._shared.config

    @property
    def _remotes(self) -> tuple[str, ...]:
        return self._shared.remotes

    @property
    def _quorum(self) -> QuorumSystem:
        return self._shared.quorum

    @property
    def learned_max(self) -> StateCRDT | None:
        """The §3.4 learned maximum (None unless ``gla_stability`` ran).

        Exposed so the keyed store can persist it into a frozen record on
        eviction and seed the rehydrated proposer with it.
        """
        return self._learned_max

    @property
    def idle(self) -> bool:
        """No open requests, buffered commands or armed flush timer.

        An idle proposer holds no state the protocol can lose: all its
        remaining fields are either derivable (counters) or optimizations
        whose guarantees only span open requests (``_learned_max``
        matters only for *overlapping* queries, §3.4 — and an overlapping
        query would be an open batch).  The keyed store's cold-key
        eviction relies on this.
        """
        return not (
            self._update_batches
            or self._query_batches
            or self._update_buffer
            or self._query_buffer
            or self._flush_armed
        )

    # ------------------------------------------------------------------
    # Client entry points
    # ------------------------------------------------------------------
    def client_update(
        self, client: str, request_id: str, op: UpdateOp, now: float
    ) -> Effects:
        item = _UpdateItem(client, request_id, op)
        if not self._config.batching:
            # Unbatched admission control: the pipeline window bounds
            # in-flight MERGE traffic in every mode.  Commands past the
            # window queue here and are admitted as their own batch of one
            # when an earlier round trip completes.
            if self._updates_in_flight < self._config.update_pipeline:
                return self._start_update_batch([item])
            self._update_buffer.append(item)
            self.stats.pipeline_stalls += 1
            return Effects()
        effects = Effects()
        self._update_buffer.append(item)
        self._ensure_flush_timer(effects)
        return effects

    def client_query(
        self, client: str, request_id: str, op: QueryOp, now: float
    ) -> Effects:
        item = _QueryItem(client, request_id, op)
        if not self._config.batching:
            return self._start_query_batch([item])
        effects = Effects()
        self._query_buffer.append(item)
        self._ensure_flush_timer(effects)
        return effects

    # ------------------------------------------------------------------
    # Batching cadence (§3.6)
    # ------------------------------------------------------------------
    def _ensure_flush_timer(self, effects: Effects) -> None:
        if not self._flush_armed:
            self._flush_armed = True
            delay = self._config.batch_window
            if not self._flush_ever_armed:
                self._flush_ever_armed = True
                delay += self._shared.flush_phase
            effects.set_timer("flush", delay)

    def on_flush_timer(self, now: float) -> Effects:
        self._flush_armed = False
        effects = Effects()
        if self._update_buffer:
            if self._updates_in_flight < self._config.update_pipeline:
                items, self._update_buffer = self._update_buffer, []
                effects.merge(self._start_update_batch(items))
            else:
                self.stats.pipeline_stalls += 1
        if self._query_buffer and not self._query_in_flight:
            items, self._query_buffer = self._query_buffer, []
            effects.merge(self._start_query_batch(items))
        if (
            self._update_buffer
            or self._query_buffer
            or self._updates_in_flight
            or self._query_in_flight
        ):
            self._ensure_flush_timer(effects)
        return effects

    # ------------------------------------------------------------------
    # Update path (single round trip)
    # ------------------------------------------------------------------
    def _start_update_batch(self, items: list[_UpdateItem]) -> Effects:
        batch_id = f"{self.node_id}/u{self._shared.next_batch()}"
        effects = Effects()

        deltas = MergeAccumulator()
        tags: list[Any] = []
        for item in items:
            before = self._acceptor.state
            after = self._acceptor.apply_update(item.op, self.node_id)
            if self._config.inclusion_tagger is not None:
                tags.append(self._config.inclusion_tagger(after, self.node_id))
            else:
                tags.append(None)
            if self._config.delta_merge:
                deltas.add(item.op.delta(before, after, self.node_id))

        if self._config.delta_merge:
            payload = deltas.value
            # Keep earlier in-flight batches' re-drive payloads fresh:
            # their next re-send carries this batch's updates too.
            for open_batch in self._update_batches.values():
                if open_batch.redrive is None:
                    continue
                open_batch.redrive.add(payload)
                if open_batch.redrive_rounds > 0:
                    # That batch's latest re-driven MERGE may still be
                    # parked in a coalesce outbox, materialized with the
                    # pre-fold accumulator value.  Re-send so the parked
                    # slot is superseded with a payload that carries this
                    # batch's updates too — otherwise the flush ships the
                    # stale fragment and the fold above never reaches
                    # peers until the *next* timeout.
                    refreshed = self._merge_message(
                        open_batch.batch_id, open_batch.redrive.value
                    )
                    for peer in self._remotes:
                        if peer not in open_batch.acked:
                            effects.send(peer, refreshed)
            redrive = MergeAccumulator(payload)
        else:
            payload = self._acceptor.state
            redrive = None
        assert payload is not None
        batch = _UpdateBatch(
            batch_id, items, payload, tags, acked={self.node_id}, redrive=redrive
        )
        self._update_batches[batch_id] = batch
        self._updates_in_flight += 1
        self.stats.max_update_pipeline = max(
            self.stats.max_update_pipeline, self._updates_in_flight
        )

        if self._quorum.is_quorum(batch.acked):
            # Degenerate single-replica group: already durable.
            effects.merge(self._complete_update(batch))
            return effects

        message = self._merge_message(batch_id, payload)
        effects.broadcast(self._remotes, message)
        if self._config.request_timeout is not None:
            effects.set_timer(f"uto:{batch_id}", self._config.request_timeout)
        return effects

    def _merge_message(self, request_id: str, state: StateCRDT) -> Merge:
        """A MERGE, digest-stamped when the anti-entropy probe is on."""
        if not self._config.anti_entropy:
            return Merge(request_id=request_id, state=state)
        from repro.wire.digest import stable_digest

        return Merge(
            request_id=request_id,
            state=state,
            digest=stable_digest(self._acceptor.state),
        )

    def on_merged(self, src: str, msg: Merged, now: float) -> Effects:
        effects = Effects()
        if self._config.anti_entropy:
            effects.merge(self._note_divergence(src, msg.diverged, now))
        batch = self._update_batches.get(msg.request_id)
        if batch is None:
            return effects
        if src not in batch.acked:
            batch.acked.add(src)
            # Progress: a previously silent peer answered — reset the
            # supervision backoff so re-drives stay snappy.
            batch.redrive_rounds = 0
        if self._quorum.is_quorum(batch.acked):
            effects.merge(self._complete_update(batch))
        return effects

    def _note_divergence(self, src: str, diverged: bool, now: float) -> Effects:
        """Anti-entropy repair loop (``config.anti_entropy``).

        Counts *consecutive* divergent MERGED acks per peer; at the
        threshold the peer gets one full-state MERGE (request id prefixed
        ``ae:`` — never a live batch id, so its ack certifies nothing and
        is dropped by the batch lookup), rate-limited per peer.  Any
        non-divergent ack resets the count: transient divergence is
        normal in delta mode (the peer may simply hold updates we lack;
        the query path heals *our* side).
        """
        if self._ae_divergent is None:
            self._ae_divergent = {}
            self._ae_last_push = {}
        if not diverged:
            self._ae_divergent[src] = 0
            return Effects()
        count = self._ae_divergent.get(src, 0) + 1
        self._ae_divergent[src] = count
        if count < self._config.anti_entropy_threshold:
            return Effects()
        assert self._ae_last_push is not None
        last = self._ae_last_push.get(src)
        if last is not None and now - last < self._config.anti_entropy_interval:
            return Effects()
        self._ae_last_push[src] = now
        self._ae_divergent[src] = 0
        self.stats.anti_entropy_pushes += 1
        effects = Effects()
        effects.send(
            src,
            # Full state, no digest: after the join the peer's state is a
            # superset of ours, so probing it against *our* digest would
            # read any extra updates it holds as divergence again.
            Merge(
                request_id=f"ae:{self.node_id}/{self._shared.next_batch()}",
                state=self._acceptor.state,
            ),
        )
        return effects

    def _complete_update(self, batch: _UpdateBatch) -> Effects:
        effects = Effects()
        del self._update_batches[batch.batch_id]
        effects.cancel_timer(f"uto:{batch.batch_id}")
        for item, tag in zip(batch.items, batch.tags):
            effects.send(
                item.client,
                UpdateDone(request_id=item.request_id, inclusion_tag=tag),
            )
            self.stats.updates_completed += 1
        self._updates_in_flight -= 1
        if (
            not self._config.batching
            and self._update_buffer
            and self._updates_in_flight < self._config.update_pipeline
        ):
            # Unbatched admission: each completion admits one queued
            # command as its own batch, preserving batch-of-one semantics.
            effects.merge(self._start_update_batch([self._update_buffer.pop(0)]))
        return effects

    # ------------------------------------------------------------------
    # Query path (prepare / vote)
    # ------------------------------------------------------------------
    def _start_query_batch(self, items: list[_QueryItem]) -> Effects:
        batch_id = f"{self.node_id}/q{self._shared.next_batch()}"
        batch = _QueryBatch(
            batch_id=batch_id,
            items=items,
            accumulator=MergeAccumulator(self._acceptor.state),
        )
        self._query_batches[batch_id] = batch
        self._query_in_flight = True
        effects = self._start_attempt(batch, self._config.initial_prepare)
        if self._config.request_timeout is not None and batch_id in self._query_batches:
            effects.set_timer(f"qto:{batch_id}", self._config.request_timeout)
        return effects

    def _start_attempt(self, batch: _QueryBatch, kind: str) -> Effects:
        """Send PREPAREs for a fresh attempt (incremental or fixed)."""
        batch.attempt += 1
        batch.phase = "prepare"
        batch.acks = {}
        batch.voted = set()
        batch.proposed = None
        batch.round_trips += 1

        rid = self._shared.rid_gen.fresh()
        if kind == "incremental":
            round_ = Round.incremental(rid)
        else:
            round_ = Round(batch.max_round_number + 1, rid)
        batch.sent_round = round_

        state: StateCRDT | None = None
        if self._config.include_state_in_prepare and not batch.accumulated.equivalent(
            self._initial_state
        ):
            state = batch.accumulated

        message = Prepare(
            request_id=batch.batch_id,
            attempt=batch.attempt,
            round=round_,
            state=state,
        )
        effects = Effects()
        effects.broadcast(self._remotes, message)
        # The co-located acceptor handles its PREPARE synchronously.
        local_reply = self._acceptor.handle_prepare(message)
        if isinstance(local_reply, PrepareAck):
            effects.merge(self.on_prepare_ack(self.node_id, local_reply, 0.0))
        else:
            effects.merge(self.on_prepare_nack(self.node_id, local_reply, 0.0))
        return effects

    def _current(self, request_id: str, attempt: int) -> _QueryBatch | None:
        batch = self._query_batches.get(request_id)
        if batch is None or batch.attempt != attempt:
            return None
        return batch

    def on_prepare_ack(self, src: str, msg: PrepareAck, now: float) -> Effects:
        batch = self._current(msg.request_id, msg.attempt)
        if batch is None or batch.phase != "prepare":
            return Effects()
        if src != self.node_id and src not in batch.acks:
            # Progress means a *peer* answered.  The co-located acceptor
            # acks synchronously on every fresh attempt, so counting it
            # would reset the supervision backoff each re-drive and a
            # partitioned minority proposer would re-prepare forever
            # instead of refusing at ``redrive_limit``.
            batch.redrive_rounds = 0  # see on_merged
        batch.acks[src] = (msg.round, msg.state)
        batch.accumulator.add(msg.state)
        batch.max_round_number = max(batch.max_round_number, msg.round.number)
        if not self._quorum.is_quorum(batch.acks.keys()):
            return Effects()
        return self._evaluate_prepare_quorum(batch)

    def _evaluate_prepare_quorum(self, batch: _QueryBatch) -> Effects:
        """Lines 11–21: act on the first quorum of ACKs."""
        states = [state for _, state in batch.acks.values()]
        rounds = [round_ for round_, _ in batch.acks.values()]
        lub = join_all(states, source="prepare-quorum ack states")

        if self._config.fast_path and all(s.equivalent(lub) for s in states):
            # (a) learned by consistent quorum — the second phase is skipped.
            return self._learn(batch, lub, "fast")

        first = rounds[0]
        if all(r == first for r in rounds):
            # (b) consistent rounds: propose the LUB under that round.
            batch.phase = "vote"
            batch.proposed = lub
            batch.round_trips += 1
            message = Vote(
                request_id=batch.batch_id,
                attempt=batch.attempt,
                round=first,
                state=lub,
            )
            effects = Effects()
            effects.broadcast(self._remotes, message)
            local_reply = self._acceptor.handle_vote(message)
            if isinstance(local_reply, Voted):
                effects.merge(self.on_voted(self.node_id, local_reply, 0.0))
            else:
                effects.merge(self.on_vote_nack(self.node_id, local_reply, 0.0))
            return effects

        # (c) inconsistent rounds: retry with a fixed prepare above all
        # observed round numbers (only reachable from incremental prepares).
        self.stats.prepare_retries += 1
        return self._retry(batch, "fixed")

    def on_prepare_nack(self, src: str, msg: PrepareNack, now: float) -> Effects:
        batch = self._current(msg.request_id, msg.attempt)
        if batch is None or batch.phase != "prepare":
            return Effects()
        batch.accumulator.add(msg.state)
        batch.max_round_number = max(batch.max_round_number, msg.round.number)
        self.stats.prepare_retries += 1
        return self._retry(batch, self._config.retry_prepare)

    def on_voted(self, src: str, msg: Voted, now: float) -> Effects:
        batch = self._current(msg.request_id, msg.attempt)
        if batch is None or batch.phase != "vote":
            return Effects()
        batch.voted.add(src)
        if self._quorum.is_quorum(batch.voted):
            assert batch.proposed is not None
            return self._learn(batch, batch.proposed, "vote")
        return Effects()

    def on_vote_nack(self, src: str, msg: VoteNack, now: float) -> Effects:
        batch = self._current(msg.request_id, msg.attempt)
        if batch is None or batch.phase != "vote":
            return Effects()
        batch.accumulator.add(msg.state)
        batch.max_round_number = max(batch.max_round_number, msg.round.number)
        self.stats.vote_retries += 1
        return self._retry(batch, self._config.retry_prepare)

    def _backoff_delay(self, base: float, rounds: int, token: str) -> float:
        """Jittered exponential backoff: ``base · multiplier^rounds``.

        Capped at ``backoff_cap``; the jitter fraction is derived from a
        CRC over ``token`` so it de-synchronizes duelling proposers (every
        token embeds the node id) while staying bit-identical across
        seeded runs (``hash()`` is salted per process, so it cannot be
        used here).
        """
        config = self._config
        delay = min(base * config.backoff_multiplier**rounds, config.backoff_cap)
        if config.backoff_jitter > 0.0:
            frac = (zlib.crc32(token.encode()) % 1000) / 999.0
            delay *= 1.0 + config.backoff_jitter * frac
        return delay

    def _retry(self, batch: _QueryBatch, kind: str) -> Effects:
        if self._config.retry_backoff > 0:
            # Park the batch; replies from the aborted attempt are ignored
            # by the phase guards until the retry timer fires.  The delay
            # grows exponentially with the attempt count (§3.5: growing
            # periods let duelling proposers drift apart) — the first
            # retry keeps the classic ``retry_backoff · backoff_factor``.
            batch.phase = "backoff"
            batch.proposed = None
            batch.sent_round = None
            batch.retry_kind = kind
            effects = Effects()
            effects.set_timer(
                f"retry:{batch.batch_id}",
                self._backoff_delay(
                    self._config.retry_backoff * self._shared.backoff_factor,
                    max(batch.attempt - 1, 0),
                    f"{batch.batch_id}:r{batch.attempt}",
                ),
            )
            return effects
        return self._start_attempt(batch, kind)

    def _learn(self, batch: _QueryBatch, state: StateCRDT, via: str) -> Effects:
        """Complete every query in the batch against the learned state."""
        if self._config.gla_stability:
            # §3.4: answer with the largest state ever learned here.  The
            # Consistency condition guarantees comparability.
            if self._learned_max is not None and not self._learned_max.compare(state):
                state = self._learned_max
            self._learned_max = state

        effects = Effects()
        del self._query_batches[batch.batch_id]
        effects.cancel_timer(f"qto:{batch.batch_id}")
        learn_seq = self._shared.next_learn()
        if via == "fast":
            self.stats.fast_path_learns += 1
        else:
            self.stats.vote_learns += 1
        for item in batch.items:
            result = item.op.apply(state)
            effects.send(
                item.client,
                QueryDone(
                    request_id=item.request_id,
                    result=result,
                    round_trips=batch.round_trips,
                    attempts=batch.attempt,
                    learned_via=via,
                    proposer=self.node_id,
                    learn_seq=learn_seq,
                ),
            )
            self.stats.queries_completed += 1
        self._query_in_flight = False
        return effects

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def on_timer(self, key: str, now: float) -> Effects:
        if key == "flush":
            return self.on_flush_timer(now)
        if key.startswith("retry:"):
            batch = self._query_batches.get(key.removeprefix("retry:"))
            if batch is None or batch.phase != "backoff":
                return Effects()
            return self._start_attempt(batch, batch.retry_kind)
        if key.startswith("uto:"):
            return self._on_update_timeout(key.removeprefix("uto:"))
        if key.startswith("qto:"):
            return self._on_query_timeout(key.removeprefix("qto:"))
        return Effects()

    def _on_update_timeout(self, batch_id: str) -> Effects:
        batch = self._update_batches.get(batch_id)
        if batch is None:
            return Effects()
        self.stats.timeouts += 1
        limit = self._config.redrive_limit
        if limit is not None and batch.redrive_rounds >= limit:
            return self._refuse_update(batch)
        batch.redrive_rounds += 1
        effects = Effects()
        # Re-drive freshness: never resend the original (possibly stale)
        # batch payload.  The current acceptor state — or, in delta mode,
        # the accumulated delta — subsumes it, so a MERGED ack still
        # certifies durability of this batch's updates.
        if batch.redrive is not None:
            payload = batch.redrive.value
        else:
            payload = self._acceptor.state
        message = self._merge_message(batch.batch_id, payload)
        for peer in self._remotes:
            if peer not in batch.acked:
                effects.send(peer, message)
        effects.set_timer(
            f"uto:{batch_id}",
            self._backoff_delay(
                self._config.request_timeout or 1.0,
                batch.redrive_rounds,
                f"{batch_id}:u{batch.redrive_rounds}",
            ),
        )
        return effects

    def _on_query_timeout(self, batch_id: str) -> Effects:
        batch = self._query_batches.get(batch_id)
        if batch is None:
            return Effects()
        self.stats.timeouts += 1
        limit = self._config.redrive_limit
        if limit is not None and batch.redrive_rounds >= limit:
            return self._refuse_query(batch)
        batch.redrive_rounds += 1
        effects = self._start_attempt(batch, self._config.retry_prepare)
        if batch_id in self._query_batches:
            effects.set_timer(
                f"qto:{batch_id}",
                self._backoff_delay(
                    self._config.request_timeout or 1.0,
                    batch.redrive_rounds,
                    f"{batch_id}:q{batch.redrive_rounds}",
                ),
            )
        return effects

    # ------------------------------------------------------------------
    # Graceful refusal (redrive_limit exhausted without a quorum)
    # ------------------------------------------------------------------
    def _refuse_update(self, batch: _UpdateBatch) -> Effects:
        """Give up on an update batch: tell every waiting client *why*.

        Safe at any point: the updates are already applied at the local
        acceptor and may yet reach a quorum through later merges — the
        refusal only says "not promised durable"; no completion is
        fabricated and the client may retry verbatim (CRDT merges are
        idempotent, so a duplicate apply is harmless).
        """
        effects = Effects()
        del self._update_batches[batch.batch_id]
        effects.cancel_timer(f"uto:{batch.batch_id}")
        missing = len(self._remotes) + 1 - len(batch.acked)
        for item in batch.items:
            effects.send(
                item.client,
                Refused(
                    request_id=item.request_id,
                    code="quorum",
                    detail=f"no quorum after {batch.redrive_rounds} re-drives "
                    f"({missing} peers silent)",
                ),
            )
            self.stats.quorum_refusals += 1
        self._updates_in_flight -= 1
        if (
            not self._config.batching
            and self._update_buffer
            and self._updates_in_flight < self._config.update_pipeline
        ):
            effects.merge(self._start_update_batch([self._update_buffer.pop(0)]))
        return effects

    def _refuse_query(self, batch: _QueryBatch) -> Effects:
        """Give up on a query batch — nothing was learned, nothing is lost."""
        effects = Effects()
        del self._query_batches[batch.batch_id]
        effects.cancel_timer(f"qto:{batch.batch_id}")
        effects.cancel_timer(f"retry:{batch.batch_id}")
        for item in batch.items:
            effects.send(
                item.client,
                Refused(
                    request_id=item.request_id,
                    code="quorum",
                    detail=f"no prepare quorum after {batch.redrive_rounds} "
                    f"supervision rounds",
                ),
            )
            self.stats.quorum_refusals += 1
        self._query_in_flight = False
        return effects
