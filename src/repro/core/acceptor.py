"""The acceptor role of CRDT Paxos (Algorithm 2, right column).

An acceptor's entire state is the CRDT payload ``s`` plus the highest round
``r`` it has observed — this is the paper's "memory overhead of a single
counter per replica".  There is no log.

All handlers are pure with respect to IO: they mutate the acceptor and
return the reply message for the replica to route back.
"""

from __future__ import annotations

from repro.core.messages import (
    Merge,
    Merged,
    Prepare,
    PrepareAck,
    PrepareNack,
    Vote,
    Voted,
    VoteNack,
)
from repro.core.rounds import Round
from repro.crdt.base import StateCRDT, UpdateOp


class AcceptorStats:
    """Observability counters; not part of protocol state.

    A standalone object so a keyed replica can share one sink across all
    per-key acceptors (the counters aggregate per node) while the
    single-instance replica keeps a private 1:1 sink — the same flyweight
    pattern as :class:`~repro.core.proposer.ProposerStats`.
    """

    __slots__ = (
        "merges_handled",
        "prepares_accepted",
        "prepares_rejected",
        "votes_granted",
        "votes_denied",
        "keyed_batches_packed",
        "keyed_batch_messages",
        "keyed_batches_unpacked",
        "keyed_batch_bytes_saved",
        "keyed_envelopes_superseded",
        "keyed_budget_flushes",
    )

    def __init__(self) -> None:
        self.merges_handled = 0
        self.prepares_accepted = 0
        self.prepares_rejected = 0
        self.votes_granted = 0
        self.votes_denied = 0
        #: Keyed-envelope coalescing (``keyed_coalesce_window``): framed
        #: KeyedBatch envelopes sent, per-key messages they carried,
        #: batches unpacked on arrival, and the per-envelope overhead
        #: bytes the packing saved on the wire.  Kept here because this
        #: object is already the keyed replica's one shared per-node sink.
        self.keyed_batches_packed = 0
        self.keyed_batch_messages = 0
        self.keyed_batches_unpacked = 0
        self.keyed_batch_bytes_saved = 0
        #: Parked envelopes replaced in place by a fresh one for the same
        #: (key, type, request id, attempt) slot — e.g. a re-driven MERGE
        #: superseding the still-parked original.
        self.keyed_envelopes_superseded = 0
        #: Early per-peer flushes forced by ``keyed_outbox_byte_budget``.
        self.keyed_budget_flushes = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class Acceptor:
    """Replicated storage for one CRDT: payload state + highest round.

    Slotted: a keyed replica hosts one acceptor per resident key, so the
    per-instance footprint is the scaling floor of the whole store.  The
    *durable* protocol state is exactly ``(state, round)`` — the keyed
    store's cold-key eviction freezes those two fields and discards the
    rest (the stats sink is observability, shared per node in keyed
    deployments).
    """

    __slots__ = ("state", "round", "stats")

    def __init__(
        self,
        initial_state: StateCRDT,
        round: Round | None = None,
        stats: AcceptorStats | None = None,
    ) -> None:
        self.state = initial_state
        self.round = round if round is not None else Round.initial()
        self.stats = stats if stats is not None else AcceptorStats()

    # ------------------------------------------------------------------
    # Update commands
    # ------------------------------------------------------------------
    def apply_update(self, op: UpdateOp, replica_id: str) -> StateCRDT:
        """Apply ``f_u`` locally (lines 28–31); returns the new payload.

        The round id becomes the ``write`` marker so that any in-flight
        vote prepared against the previous state is invalidated.
        """
        self.state = op.apply(self.state, replica_id)
        self.round = self.round.with_write_id()
        return self.state

    def handle_merge(self, msg: Merge) -> Merged:
        """Fold a remote payload into ours by LUB (lines 32–35).

        ``join`` skips the copy when the incoming payload is already
        subsumed; the round's write marker is bumped regardless, exactly
        as in the paper's algorithm.

        When the Merge carries an anti-entropy ``digest`` (the sender's
        full-state digest, delta mode), the ack reports whether this
        acceptor's post-join state hashes differently — the one-integer
        probe the proposer's anti-entropy repair loop watches.
        """
        self.state = self.state.join(msg.state)
        self.round = self.round.with_write_id()
        self.stats.merges_handled += 1
        if msg.digest is None:
            return Merged(request_id=msg.request_id)
        from repro.wire.digest import stable_digest

        return Merged(
            request_id=msg.request_id,
            diverged=stable_digest(self.state) != msg.digest,
        )

    # ------------------------------------------------------------------
    # Query commands
    # ------------------------------------------------------------------
    def handle_prepare(self, msg: Prepare) -> PrepareAck | PrepareNack:
        """Phase 1 (lines 36–42).

        The carried payload is merged *unconditionally* (line 37) — even a
        rejected prepare still disseminates state.  Incremental prepares
        are always accepted; fixed prepares only with a strictly larger
        round number.
        """
        if msg.state is not None:
            self.state = self.state.join(msg.state)

        proposed = msg.round
        if proposed.is_incremental:
            proposed = proposed.concretized(self.round.number)

        if proposed.number > self.round.number:
            self.round = proposed
            self.stats.prepares_accepted += 1
            return PrepareAck(
                request_id=msg.request_id,
                attempt=msg.attempt,
                round=self.round,
                state=self.state,
            )
        self.stats.prepares_rejected += 1
        return PrepareNack(
            request_id=msg.request_id,
            attempt=msg.attempt,
            round=self.round,
            state=self.state,
        )

    def handle_vote(self, msg: Vote) -> Voted | VoteNack:
        """Phase 2 (lines 43–47).

        The proposed payload is merged unconditionally (line 44); the vote
        is granted only if our round still equals the prepared round — any
        interleaved update or competing prepare has changed it (invariant
        I4 / the ``write`` marker), in which case the proposer must retry.
        """
        self.state = self.state.join(msg.state)
        if msg.round == self.round:
            self.stats.votes_granted += 1
            return Voted(request_id=msg.request_id, attempt=msg.attempt)
        self.stats.votes_denied += 1
        return VoteNack(
            request_id=msg.request_id,
            attempt=msg.attempt,
            round=self.round,
            state=self.state,
        )
