"""A CRDT Paxos replica: acceptor + proposer in one sans-io node.

For simplicity the paper assumes every process implements both roles
(§3.2); so does this class.  Messages from clients go to the proposer,
messages from peers go to the acceptor (whose reply is routed straight
back) or to the proposer (quorum bookkeeping).  The co-located acceptor is
invoked synchronously by the proposer, so a replica never sends protocol
messages to itself over the network.
"""

from __future__ import annotations

from typing import Any

from repro.core.acceptor import Acceptor
from repro.core.config import CrdtPaxosConfig
from repro.core.messages import (
    ClientQuery,
    ClientUpdate,
    Merge,
    Merged,
    Prepare,
    PrepareAck,
    PrepareNack,
    Vote,
    Voted,
    VoteNack,
)
from repro.core.proposer import Proposer
from repro.crdt.base import StateCRDT
from repro.net.node import Effects, ProtocolNode
from repro.quorum.system import MajorityQuorum, QuorumSystem


class CrdtPaxosReplica(ProtocolNode):
    """One member of a CRDT Paxos replica group.

    Parameters
    ----------
    node_id:
        This replica's network address.
    peers:
        Addresses of **all** group members, including this one.
    initial_state:
        The CRDT bottom element ``s0`` shared by the whole group.
    config:
        Protocol options; defaults to the paper's base protocol.
    quorum:
        Quorum system over ``peers``; majority if omitted.
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        initial_state: StateCRDT,
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.config = config or CrdtPaxosConfig()
        self.quorum = quorum or MajorityQuorum(peers)
        self.acceptor = Acceptor(initial_state)
        self.proposer = Proposer(
            node_id=node_id,
            proposer_index=sorted(peers).index(node_id),
            peers=self.peers,
            acceptor=self.acceptor,
            quorum=self.quorum,
            config=self.config,
            initial_state=initial_state,
        )

    # ------------------------------------------------------------------
    @property
    def state(self) -> StateCRDT:
        """The local acceptor's current payload (diagnostic access)."""
        return self.acceptor.state

    def on_start(self, now: float) -> Effects:
        return Effects()

    def on_message(self, src: str, message: Any, now: float) -> Effects:
        # Client commands → proposer.
        if isinstance(message, ClientUpdate):
            return self.proposer.client_update(src, message.request_id, message.op, now)
        if isinstance(message, ClientQuery):
            return self.proposer.client_query(src, message.request_id, message.op, now)

        # Peer requests → acceptor; its reply goes straight back to src.
        if isinstance(message, Merge):
            effects = Effects()
            effects.send(src, self.acceptor.handle_merge(message))
            return effects
        if isinstance(message, Prepare):
            effects = Effects()
            effects.send(src, self.acceptor.handle_prepare(message))
            return effects
        if isinstance(message, Vote):
            effects = Effects()
            effects.send(src, self.acceptor.handle_vote(message))
            return effects

        # Peer replies → proposer.
        if isinstance(message, Merged):
            return self.proposer.on_merged(src, message, now)
        if isinstance(message, PrepareAck):
            return self.proposer.on_prepare_ack(src, message, now)
        if isinstance(message, PrepareNack):
            return self.proposer.on_prepare_nack(src, message, now)
        if isinstance(message, Voted):
            return self.proposer.on_voted(src, message, now)
        if isinstance(message, VoteNack):
            return self.proposer.on_vote_nack(src, message, now)

        # Unknown messages are dropped, like any unreliable channel would.
        return Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        return self.proposer.on_timer(key, now)
