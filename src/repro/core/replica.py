"""A CRDT Paxos replica: acceptor + proposer in one sans-io node.

For simplicity the paper assumes every process implements both roles
(§3.2); so does this class.  Messages from clients go to the proposer,
messages from peers go to the acceptor (whose reply is routed straight
back) or to the proposer (quorum bookkeeping).  The co-located acceptor is
invoked synchronously by the proposer, so a replica never sends protocol
messages to itself over the network.
"""

from __future__ import annotations

from typing import Any

from repro.core.acceptor import Acceptor
from repro.core.config import CrdtPaxosConfig
from repro.core.messages import ClientQuery, ClientUpdate
from repro.core.proposer import Proposer, ProposerShared
from repro.core.router import dispatch_peer_message
from repro.crdt.base import StateCRDT
from repro.net.node import Effects, ProtocolNode
from repro.quorum.system import MajorityQuorum, QuorumSystem


class CrdtPaxosReplica(ProtocolNode):
    """One member of a CRDT Paxos replica group.

    Parameters
    ----------
    node_id:
        This replica's network address.
    peers:
        Addresses of **all** group members, including this one.
    initial_state:
        The CRDT bottom element ``s0`` shared by the whole group.
    config:
        Protocol options; defaults to the paper's base protocol.
    quorum:
        Quorum system over ``peers``; majority if omitted.
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        initial_state: StateCRDT,
        config: CrdtPaxosConfig | None = None,
        quorum: QuorumSystem | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.config = config or CrdtPaxosConfig()
        self.quorum = quorum or MajorityQuorum(peers)
        self.acceptor = Acceptor(initial_state)
        # A single-instance replica owns its proposer context 1:1; the
        # keyed deployment shares one context across every per-key
        # proposer (see repro.core.keyspace).
        self.proposer = Proposer(
            ProposerShared(node_id, self.peers, self.quorum, self.config),
            self.acceptor,
            initial_state,
        )

    # ------------------------------------------------------------------
    @property
    def state(self) -> StateCRDT:
        """The local acceptor's current payload (diagnostic access)."""
        return self.acceptor.state

    def on_start(self, now: float) -> Effects:
        return Effects()

    def on_message(self, src: str, message: Any, now: float) -> Effects:
        # Client commands → proposer.
        if isinstance(message, ClientUpdate):
            return self.proposer.client_update(src, message.request_id, message.op, now)
        if isinstance(message, ClientQuery):
            return self.proposer.client_query(src, message.request_id, message.op, now)

        # Peer traffic → the shared router (acceptor requests are answered
        # straight back to src; replies feed the proposer's bookkeeping).
        effects = dispatch_peer_message(self.acceptor, self.proposer, src, message, now)
        if effects is not None:
            return effects

        # Unknown messages are dropped, like any unreliable channel would.
        return Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        return self.proposer.on_timer(key, now)
