"""CRDT Paxos — the paper's contribution (Algorithm 2).

Linearizable state machine replication of state-based CRDTs without logs,
leaders, or auxiliary processes:

* **updates** apply at the receiving replica's local acceptor and complete
  after a single ``MERGE`` round trip to a quorum;
* **queries** learn a payload state with a Paxos-like prepare/vote exchange
  — one round trip when a *consistent quorum* is observed, two when a vote
  is needed, more only under contention with concurrent updates;
* the only coordination state is one round ``(number, id)`` per acceptor
  and the only per-message overhead is that round — no command log exists.

Public entry points:

* :class:`~repro.core.replica.CrdtPaxosReplica` — a sans-io replica
  implementing both the proposer and acceptor roles,
* :class:`~repro.core.config.CrdtPaxosConfig` — protocol options
  (batching, retry policy, GLA-Stability, the §3.6 optimizations),
* the client-facing message types in :mod:`repro.core.messages`.
"""

from repro.core.config import CrdtPaxosConfig
from repro.core.messages import (
    ClientQuery,
    ClientUpdate,
    QueryDone,
    UpdateDone,
)
from repro.core.replica import CrdtPaxosReplica
from repro.core.rounds import Round
from repro.core.router import dispatch_peer_message

__all__ = [
    "ClientQuery",
    "ClientUpdate",
    "CrdtPaxosConfig",
    "CrdtPaxosReplica",
    "QueryDone",
    "Round",
    "UpdateDone",
    "dispatch_peer_message",
]
