"""Linearizability checking for replicated atomic counters.

The paper's motivating primitive ("atomic counters, which are a
ubiquitous primitive in distributed computing") admits an efficient exact
check, unlike general linearizability (NP-complete).  For a history of
increments and reads:

* a read that returned ``v`` must satisfy ``low ≤ v ≤ high`` where
  ``low``  = total amount of increments *completed before* the read was
  invoked (they must all be visible) and
  ``high`` = total amount of increments *invoked before* the read
  completed (nothing else can be visible);
* reads ordered in real time must return non-decreasing values
  (monotonicity of the counter under any linearization).

Because increments commute, these conditions are also sufficient: any
history satisfying them has a linearization (place each read at a point
where exactly ``v`` worth of increments precede it — the value range
sweeps from ``low`` to ``high`` continuously as increments commute).

This checker is protocol-agnostic: the test-suite runs it against CRDT
Paxos, Multi-Paxos, Raft and GLA histories alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HistoryViolation


@dataclass
class CounterOp:
    """One operation against the replicated counter."""

    op_id: str
    kind: str  # "increment" | "read"
    invoked_at: float
    completed_at: float | None = None
    amount: int = 0  # increments only
    result: int | None = None  # reads only

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


@dataclass
class CounterHistory:
    """Recorded operations plus recording helpers."""

    ops: list[CounterOp] = field(default_factory=list)

    def begin_increment(self, op_id: str, amount: int, now: float) -> CounterOp:
        op = CounterOp(op_id=op_id, kind="increment", invoked_at=now, amount=amount)
        self.ops.append(op)
        return op

    def begin_read(self, op_id: str, now: float) -> CounterOp:
        op = CounterOp(op_id=op_id, kind="read", invoked_at=now)
        self.ops.append(op)
        return op

    def completed_reads(self) -> list[CounterOp]:
        return [op for op in self.ops if op.kind == "read" and op.complete]

    def increments(self) -> list[CounterOp]:
        return [op for op in self.ops if op.kind == "increment"]


def check_counter_linearizable(history: CounterHistory) -> None:
    """Raise :class:`HistoryViolation` unless the history linearizes.

    Incomplete increments count toward ``high`` (they may have taken
    effect) but not toward ``low``; incomplete reads are unconstrained.
    """
    increments = history.increments()
    for read in history.completed_reads():
        assert read.completed_at is not None
        if read.result is None:
            raise HistoryViolation(f"read {read.op_id} completed without a result")
        low = sum(
            increment.amount
            for increment in increments
            if increment.complete
            and increment.completed_at is not None
            and increment.completed_at < read.invoked_at
        )
        high = sum(
            increment.amount
            for increment in increments
            if increment.invoked_at < read.completed_at
        )
        if not low <= read.result <= high:
            raise HistoryViolation(
                f"read {read.op_id} returned {read.result}, outside its "
                f"linearizability window [{low}, {high}] "
                f"(invoked {read.invoked_at}, completed {read.completed_at})"
            )

    reads = sorted(history.completed_reads(), key=lambda op: op.invoked_at)
    for first in reads:
        for second in reads:
            if first is second:
                continue
            assert first.completed_at is not None
            if first.completed_at < second.invoked_at:
                assert first.result is not None and second.result is not None
                if second.result < first.result:
                    raise HistoryViolation(
                        f"non-monotone reads: {first.op_id} returned "
                        f"{first.result} and completed at {first.completed_at}, "
                        f"but the later {second.op_id} (invoked "
                        f"{second.invoked_at}) returned {second.result}"
                    )
