"""Operation histories with real-time precedence.

A history collects the updates and queries a test harness observed, each
with invocation and completion instants.  Real-time precedence — operation
A *precedes* B iff A completed before B was invoked — is what the §3.1
conditions quantify over ("subsequent", "completes before ... submitted").

Queries record the *learned state* itself (harnesses submit
:class:`~repro.crdt.base.IdentityQuery`), because the conditions are
statements about lattice elements, not derived values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crdt.base import StateCRDT


@dataclass
class UpdateRecord:
    """One update operation.

    ``inclusion_tag`` identifies this update's effect inside payload
    states (see :class:`repro.core.messages.UpdateDone`); ``replica`` is
    the proposer it was submitted to.  ``completed_at`` is None while the
    update is still in flight (histories may end with open operations).
    """

    op_id: str
    replica: str
    invoked_at: float
    completed_at: float | None = None
    inclusion_tag: Any = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


@dataclass
class QueryRecord:
    """One query operation with the state it learned."""

    op_id: str
    replica: str
    invoked_at: float
    completed_at: float | None = None
    state: StateCRDT | None = None
    proposer: str = ""
    learn_seq: int = 0
    round_trips: int = 0
    learned_via: str = ""

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


@dataclass
class History:
    """All operations observed during one run."""

    updates: list[UpdateRecord] = field(default_factory=list)
    queries: list[QueryRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def begin_update(self, op_id: str, replica: str, now: float) -> UpdateRecord:
        record = UpdateRecord(op_id=op_id, replica=replica, invoked_at=now)
        self.updates.append(record)
        return record

    def begin_query(self, op_id: str, replica: str, now: float) -> QueryRecord:
        record = QueryRecord(op_id=op_id, replica=replica, invoked_at=now)
        self.queries.append(record)
        return record

    # ------------------------------------------------------------------
    def completed_updates(self) -> list[UpdateRecord]:
        return [u for u in self.updates if u.complete]

    def completed_queries(self) -> list[QueryRecord]:
        return [q for q in self.queries if q.complete]

    def submitted_updates_per_replica(self) -> dict[str, int]:
        """How many updates were submitted via each replica (for Validity)."""
        counts: dict[str, int] = {}
        for update in self.updates:
            counts[update.replica] = counts.get(update.replica, 0) + 1
        return counts

    @staticmethod
    def precedes(
        first_completed_at: float | None, second_invoked_at: float
    ) -> bool:
        """Real-time precedence: completed strictly before the invocation."""
        return first_completed_at is not None and (
            first_completed_at < second_invoked_at
        )
