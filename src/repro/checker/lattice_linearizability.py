"""Checkers for the §3.1 correctness conditions on recorded histories.

Every checker raises :class:`~repro.errors.HistoryViolation` with a
narrative naming the offending operations, and returns quietly when the
history satisfies the condition.  ``check_all`` bundles them.

Inclusion reasoning needs to know when a payload state *includes* a given
update (§3.1's definition).  For a G-Counter this is exact: the update
that raised replica ``r``'s slot to ``k`` is included in any state whose
slot ``r`` is ≥ k — that is what :func:`gcounter_includes` implements and
why the harnesses replicate G-Counters.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.checker.history import History, QueryRecord
from repro.crdt.gcounter import GCounter
from repro.errors import HistoryViolation

#: (state, inclusion tag) → does the state include the tagged update?
IncludesFn = Callable[[Any, Any], bool]


def gcounter_includes(state: GCounter, tag: tuple[str, int]) -> bool:
    """Inclusion test for G-Counter increments tagged ``(replica, slot)``."""
    replica, slot_value = tag
    return state.slot(replica) >= slot_value


# ----------------------------------------------------------------------
def check_consistency(history: History) -> None:
    """§3.1 Consistency: any two learned states are comparable."""
    learned = [q for q in history.completed_queries() if q.state is not None]
    for i, first in enumerate(learned):
        for second in learned[i + 1 :]:
            assert first.state is not None and second.state is not None
            if not first.state.comparable(second.state):
                raise HistoryViolation(
                    "Consistency violated: learned states of queries "
                    f"{first.op_id} and {second.op_id} are incomparable: "
                    f"{first.state!r} vs {second.state!r}"
                )


def check_stability(history: History) -> None:
    """§3.1 Stability: subsequent learned states grow monotonically."""
    learned = [q for q in history.completed_queries() if q.state is not None]
    for first in learned:
        for second in learned:
            if first is second:
                continue
            if History.precedes(first.completed_at, second.invoked_at):
                assert first.state is not None and second.state is not None
                if not first.state.compare(second.state):
                    raise HistoryViolation(
                        "Stability violated: query "
                        f"{first.op_id} (completed {first.completed_at}) "
                        f"learned {first.state!r}, but subsequent query "
                        f"{second.op_id} (invoked {second.invoked_at}) "
                        f"learned the smaller/incomparable {second.state!r}"
                    )


def check_update_visibility(
    history: History, includes: IncludesFn = gcounter_includes
) -> None:
    """§3.1 Update Visibility: a completed update is seen by later queries."""
    for update in history.completed_updates():
        if update.inclusion_tag is None:
            continue
        for query in history.completed_queries():
            if query.state is None:
                continue
            if History.precedes(update.completed_at, query.invoked_at):
                if not includes(query.state, update.inclusion_tag):
                    raise HistoryViolation(
                        "Update Visibility violated: update "
                        f"{update.op_id} (completed {update.completed_at}, "
                        f"tag {update.inclusion_tag}) is missing from the "
                        f"state learned by later query {query.op_id} "
                        f"(invoked {query.invoked_at}): {query.state!r}"
                    )


def check_update_stability(
    history: History, includes: IncludesFn = gcounter_includes
) -> None:
    """§3.1 Update Stability: u1 before u2 ⇒ states with u2 contain u1."""
    completed = [
        u for u in history.completed_updates() if u.inclusion_tag is not None
    ]
    for first in completed:
        for second in history.updates:
            if second.inclusion_tag is None or first is second:
                continue
            if not History.precedes(first.completed_at, second.invoked_at):
                continue
            for query in history.completed_queries():
                if query.state is None:
                    continue
                if includes(query.state, second.inclusion_tag) and not includes(
                    query.state, first.inclusion_tag
                ):
                    raise HistoryViolation(
                        "Update Stability violated: state learned by query "
                        f"{query.op_id} includes {second.op_id} "
                        f"(tag {second.inclusion_tag}) but not the earlier "
                        f"completed update {first.op_id} "
                        f"(tag {first.inclusion_tag})"
                    )


def check_validity_gcounter(history: History) -> None:
    """§3.1 Validity, specialised to G-Counters.

    A learned state must be a join of *submitted* update effects applied
    to s0.  Updates submitted via one replica serialize at its acceptor,
    so slot ``r`` of any learned state must lie between 0 and the number
    of updates submitted via ``r`` (any value in that range is a prefix of
    ``r``'s serial update sequence, hence a legal subset).
    """
    limits = history.submitted_updates_per_replica()
    for query in history.completed_queries():
        state = query.state
        if state is None:
            continue
        if not isinstance(state, GCounter):
            raise HistoryViolation(
                f"Validity check expects GCounter states, got {type(state).__name__}"
            )
        for replica, value in state.as_dict().items():
            if value < 0 or value > limits.get(replica, 0):
                raise HistoryViolation(
                    "Validity violated: query "
                    f"{query.op_id} learned slot {replica}={value}, but only "
                    f"{limits.get(replica, 0)} updates were submitted via "
                    f"{replica}"
                )


def check_gla_stability(history: History) -> None:
    """§3.4 GLA-Stability: states learned at one proposer are monotone in
    learn order (even for overlapping queries)."""
    by_proposer: dict[str, list[QueryRecord]] = {}
    for query in history.completed_queries():
        if query.state is None or not query.proposer:
            continue
        by_proposer.setdefault(query.proposer, []).append(query)
    for proposer, queries in by_proposer.items():
        queries.sort(key=lambda q: q.learn_seq)
        for earlier, later in zip(queries, queries[1:]):
            assert earlier.state is not None and later.state is not None
            if earlier.learn_seq == later.learn_seq:
                continue  # one batch answers many queries with one learn
            if not earlier.state.compare(later.state):
                raise HistoryViolation(
                    "GLA-Stability violated at proposer "
                    f"{proposer}: learn #{earlier.learn_seq} "
                    f"({earlier.op_id}) produced {earlier.state!r}, later "
                    f"learn #{later.learn_seq} ({later.op_id}) produced the "
                    f"non-larger {later.state!r}"
                )


def check_all(
    history: History,
    includes: IncludesFn = gcounter_includes,
    expect_gla_stability: bool = False,
    validity: bool = True,
) -> None:
    """Run every §3.1 condition (and §3.4 when requested)."""
    if validity:
        check_validity_gcounter(history)
    check_consistency(history)
    check_stability(history)
    check_update_visibility(history, includes)
    check_update_stability(history, includes)
    if expect_gla_stability:
        check_gla_stability(history)
