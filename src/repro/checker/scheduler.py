"""Adversarial interleaving exploration of CRDT Paxos.

Reproduces (and extends) the authors' testing methodology: client
commands and protocol messages are interleaved in *uniformly random
order* by an adversary, optionally spiced with message loss, duplication
and replica crash/recovery.  Every run is deterministic under its seed and
produces a :class:`~repro.checker.history.History` that the §3.1 checkers
validate.

Timeout-driven re-drives are disabled here on purpose — the adversary
already controls scheduling, and timeouts would let the protocol paper
over orderings we want to expose.  The explorer therefore forces
``request_timeout=None`` on the supplied configuration.

Batching (and with it the pipelined update path) *is* explorable: when
the supplied config enables ``batching``, flush timers are not discarded
but pooled per replica and fired by the adversary in uniformly random
order relative to message deliveries — a far more hostile cadence than
any real clock.  The same holds for ``retry_backoff`` timers: with a
positive backoff, a failed query attempt parks until its retry timer
fires, and the adversary fires those timers in arbitrary order too —
interleaving parked retries with fresh traffic instead of the repo's old
immediate-retry-only schedule.  Timers on crashed replicas are simply
withheld until recovery (internal state survives a crash in the paper's
model).

:class:`KeyedInterleavingExplorer` runs the same adversary against the
keyed deployment (:class:`~repro.core.keyspace.KeyedCrdtReplica`) with a
small ``keyed_max_resident`` cap, so cold-key eviction and rehydration
churn *under* adversarial traffic; per-key histories are validated
independently (keys never synchronize with each other).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Hashable

from repro.api.codec import compile_query, compile_update, parse_completion
from repro.checker.history import History
from repro.core.config import CrdtPaxosConfig
from repro.core.keyspace import KeyedCrdtReplica
from repro.core.replica import CrdtPaxosReplica
from repro.crdt.base import IdentityQuery
from repro.crdt.gcounter import GCounter, Increment
from repro.net.adversary import AdversarialNetwork
from repro.net.message import Envelope
from repro.net.node import ProtocolNode
from repro.sim.kernel import Simulator
from repro.storage.base import SpillStore

#: Virtual time consumed by an injection step (keeps "now" increasing).
_STEP_EPSILON = 1e-9


class _DirectRuntime:
    """Zero-latency runtime: handles a delivery synchronously.

    Sends feed back into the adversarial pool.  Timer effects are
    discarded unless ``collect_timers`` is set, in which case armed keys
    sit in :attr:`pending_timers` (delays ignored — the adversary decides
    when, and whether, a timer fires).
    """

    def __init__(
        self,
        sim: Simulator,
        network: AdversarialNetwork,
        node: ProtocolNode,
        collect_timers: bool = False,
    ):
        self._sim = sim
        self._network = network
        self.node = node
        self.crashed = False
        self.collect_timers = collect_timers
        #: Ordered set of armed timer keys (insertion-ordered for
        #: deterministic random picks).
        self.pending_timers: dict[str, None] = {}
        network.register(node.node_id, self)

    def _apply(self, effects) -> None:
        for dst, message in effects.sends:
            self._network.send(self.node.node_id, dst, message)
        if self.collect_timers:
            for key, _delay in effects.timers:
                self.pending_timers[key] = None
            for key in effects.cancels:
                self.pending_timers.pop(key, None)

    def deliver(self, envelope: Envelope) -> None:
        if self.crashed:
            return
        self._apply(
            self.node.on_message(envelope.src, envelope.payload, self._sim.now)
        )

    def fire_timer(self, key: str) -> None:
        """Adversarially expire one armed timer (no-op while crashed)."""
        if self.crashed:
            return
        self.pending_timers.pop(key, None)
        self._sim.now += _STEP_EPSILON
        self._apply(self.node.on_timer(key, self._sim.now))


def _stamp_completion(open_requests: dict[str, Any], message: Any, now: float) -> None:
    """Stamp a completed operation's record from its Done message.

    Shared by the unkeyed and keyed recording clients so the record shape
    has exactly one source of truth.  Replies are normalized through the
    Store API's :func:`repro.api.codec.parse_completion` — the same
    decoding every real client performs (Keyed unwrapping included)."""
    completion = parse_completion(message)
    if completion is None:
        return
    if completion.kind == "refused":
        # A refusal is NOT a completion: the replica gave up (no quorum,
        # or a failed write-through persist) and the client may retry the
        # same request verbatim.  The record stays open, so the checkers
        # treat the operation like any other incomplete one — stamping it
        # here would fabricate a query "result" of None and fail the
        # history well-formedness check for a behaviour that is correct.
        return
    record = open_requests.pop(completion.request_id, None)
    if record is None:
        return
    record.completed_at = now
    if completion.kind == "update":
        record.inclusion_tag = completion.inclusion_tag
    else:
        record.state = completion.result
        record.proposer = completion.proposer
        record.learn_seq = completion.learn_seq
        record.round_trips = completion.round_trips
        record.learned_via = completion.learned_via


class _RecordingClient:
    """Injects operations and stamps the history on completion."""

    def __init__(
        self,
        sim: Simulator,
        network: AdversarialNetwork,
        address: str,
        history: History,
    ) -> None:
        self._sim = sim
        self._network = network
        self.address = address
        self._history = history
        self._open: dict[str, Any] = {}
        self._counter = 0
        network.register(address, self)

    def inject_update(self, replica: str) -> None:
        self._counter += 1
        op_id = f"{self.address}/u{self._counter}"
        self._sim.now += _STEP_EPSILON
        self._open[op_id] = self._history.begin_update(
            op_id, replica, self._sim.now
        )
        self._network.send(
            self.address, replica, compile_update(op_id, Increment())
        )

    def inject_query(self, replica: str) -> None:
        self._counter += 1
        op_id = f"{self.address}/q{self._counter}"
        self._sim.now += _STEP_EPSILON
        self._open[op_id] = self._history.begin_query(
            op_id, replica, self._sim.now
        )
        self._network.send(
            self.address, replica, compile_query(op_id, IdentityQuery())
        )

    def deliver(self, envelope: Envelope) -> None:
        _stamp_completion(self._open, envelope.payload, self._sim.now)


@dataclass
class ExplorationReport:
    """Outcome of one adversarial run."""

    history: History
    steps: int
    deliveries: int
    injections: int
    crashes: int
    recoveries: int
    timer_fires: int = 0
    #: Deepest update pipeline any replica reached (1 = stop-and-wait).
    max_update_pipeline: int = 0

    @property
    def all_complete(self) -> bool:
        return all(u.complete for u in self.history.updates) and all(
            q.complete for q in self.history.queries
        )


class InterleavingExplorer:
    """Runs one adversarially scheduled workload against CRDT Paxos."""

    def __init__(
        self,
        seed: int,
        n_replicas: int = 3,
        n_clients: int = 3,
        config: CrdtPaxosConfig | None = None,
    ) -> None:
        self.seed = seed
        self.n_replicas = n_replicas
        self.n_clients = n_clients
        base = config or CrdtPaxosConfig()
        # Batching and retry backoff are preserved: with either on, the
        # flush/retry timers become adversarially scheduled events (see
        # module docstring) — this is how the pipelined update path and
        # the parked-retry path get explored.
        self.config = replace(
            base,
            request_timeout=None,
            inclusion_tagger=lambda state, replica: (replica, state.slot(replica)),
        )
        self._collect_timers = base.batching or base.retry_backoff > 0

    def run(
        self,
        n_ops: int = 40,
        read_fraction: float = 0.5,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        crash_probability: float = 0.0,
        max_steps: int = 200_000,
    ) -> ExplorationReport:
        sim = Simulator(seed=self.seed)
        network = AdversarialNetwork(sim)
        rng = sim.rng.stream("explorer")
        history = History()

        runtimes = {}
        replica_ids = [f"r{i}" for i in range(self.n_replicas)]
        replica_set = set(replica_ids)
        # Client sessions are dedup'd in practice (request ids over TCP);
        # only replica↔replica channels may duplicate.
        network.duplicable = (
            lambda envelope: envelope.src in replica_set
            and envelope.dst in replica_set
        )
        for replica_id in replica_ids:
            node = CrdtPaxosReplica(
                replica_id, list(replica_ids), GCounter.initial(), self.config
            )
            runtimes[replica_id] = _DirectRuntime(
                sim, network, node, collect_timers=self._collect_timers
            )
        clients = [
            _RecordingClient(sim, network, f"c{i}", history)
            for i in range(self.n_clients)
        ]

        plan: list[str] = [
            "read" if rng.random() < read_fraction else "update"
            for _ in range(n_ops)
        ]
        max_crashed = (self.n_replicas - 1) // 2
        crashed: set[str] = set()
        steps = deliveries = injections = crashes = recoveries = 0
        timer_fires = 0

        def timer_targets() -> list[_DirectRuntime]:
            return [
                runtime
                for runtime in runtimes.values()
                if runtime.pending_timers and not runtime.crashed
            ]

        while steps < max_steps and (plan or network.pending or timer_targets()):
            steps += 1
            inject_now = bool(plan) and (
                network.pending == 0 or rng.random() < 0.25
            )
            if inject_now:
                kind = plan.pop()
                client = rng.choice(clients)
                replica = rng.choice(replica_ids)
                if kind == "update":
                    client.inject_update(replica)
                else:
                    client.inject_query(replica)
                injections += 1
                continue

            if crash_probability > 0.0 and rng.random() < crash_probability:
                if crashed and rng.random() < 0.5:
                    recovered = rng.choice(sorted(crashed))
                    crashed.discard(recovered)
                    runtimes[recovered].crashed = False
                    recoveries += 1
                    continue
                if len(crashed) < max_crashed:
                    victim = rng.choice(
                        [r for r in replica_ids if r not in crashed]
                    )
                    crashed.add(victim)
                    runtimes[victim].crashed = True
                    crashes += 1
                    continue

            targets = timer_targets()
            if targets and (network.pending == 0 or rng.random() < 0.15):
                runtime = rng.choice(targets)
                key = rng.choice(list(runtime.pending_timers))
                runtime.fire_timer(key)
                timer_fires += 1
                continue

            if network.deliver_random(drop_probability, duplicate_probability):
                deliveries += 1

        # Heal everything and let the system quiesce so that as many
        # operations as possible complete before checking.  With batching,
        # quiescence needs flush timers: alternate firing every armed
        # timer with a full drain until a fixpoint (the flush timer stops
        # re-arming once buffers and pipelines are empty).
        for replica_id in crashed:
            runtimes[replica_id].crashed = False
        network.drain(max_deliveries=max_steps)
        for _ in range(200):
            fired = False
            for runtime in runtimes.values():
                for key in list(runtime.pending_timers):
                    runtime.fire_timer(key)
                    fired = True
                    timer_fires += 1
            network.drain(max_deliveries=max_steps)
            if not fired and not network.pending:
                break

        return ExplorationReport(
            history=history,
            steps=steps,
            deliveries=deliveries,
            injections=injections,
            crashes=crashes,
            recoveries=recoveries,
            timer_fires=timer_fires,
            max_update_pipeline=max(
                runtime.node.proposer.stats.max_update_pipeline
                for runtime in runtimes.values()
            ),
        )


class _KeyedRecordingClient:
    """Injects per-key operations (Keyed envelopes), stamps per-key
    histories on completion."""

    def __init__(
        self,
        sim: Simulator,
        network: AdversarialNetwork,
        address: str,
        histories: dict[Hashable, History],
    ) -> None:
        self._sim = sim
        self._network = network
        self.address = address
        self._histories = histories
        self._open: dict[str, Any] = {}
        self._counter = 0
        network.register(address, self)

    def _history(self, key: Hashable) -> History:
        history = self._histories.get(key)
        if history is None:
            history = self._histories[key] = History()
        return history

    def inject_update(self, replica: str, key: Hashable) -> None:
        self._counter += 1
        op_id = f"{self.address}/u{self._counter}"
        self._sim.now += _STEP_EPSILON
        self._open[op_id] = self._history(key).begin_update(
            op_id, replica, self._sim.now
        )
        self._network.send(
            self.address, replica, compile_update(op_id, Increment(), key=key)
        )

    def inject_query(self, replica: str, key: Hashable) -> None:
        self._counter += 1
        op_id = f"{self.address}/q{self._counter}"
        self._sim.now += _STEP_EPSILON
        self._open[op_id] = self._history(key).begin_query(
            op_id, replica, self._sim.now
        )
        self._network.send(
            self.address, replica, compile_query(op_id, IdentityQuery(), key=key)
        )

    def deliver(self, envelope: Envelope) -> None:
        _stamp_completion(self._open, envelope.payload, self._sim.now)


@dataclass
class KeyedExplorationReport:
    """Outcome of one adversarial run against the keyed deployment."""

    histories: dict[Hashable, History] = field(default_factory=dict)
    steps: int = 0
    deliveries: int = 0
    injections: int = 0
    timer_fires: int = 0
    #: Cold-key demotions / rehydrations summed over all replicas.
    evictions: int = 0
    rehydrations: int = 0
    #: Spill tier: records written to / loaded from the spill stores.
    spills: int = 0
    spill_loads: int = 0
    #: Kill/restart events (replica rebuilt via recover()).
    restarts: int = 0
    #: Hard kills: no spill_all — only what durability already persisted
    #: survives, and the fresh node rejoins from a read quorum.
    hard_kills: int = 0
    #: Keys refreshed from a read quorum before first post-kill use.
    rejoin_refreshes: int = 0
    #: Durability-path writes/flushes summed over all node generations.
    write_through_persists: int = 0
    group_commits: int = 0
    #: Steps refused (acks suppressed) because a persist failed.
    persist_refusals: int = 0
    #: Cross-key envelope coalescing totals (keyed_coalesce_window).
    keyed_batches_packed: int = 0
    keyed_batches_unpacked: int = 0
    #: Parked envelopes superseded in place (coalescing-aware re-drives).
    keyed_envelopes_superseded: int = 0

    @property
    def all_complete(self) -> bool:
        return all(
            all(u.complete for u in history.updates)
            and all(q.complete for q in history.queries)
            for history in self.histories.values()
        )


@dataclass
class KeyedNemesisContext:
    """Handle a nemesis driver uses to act on a keyed adversarial run.

    Passed to the ``begin`` / ``step`` / ``finish`` hooks of the object
    given to :meth:`KeyedInterleavingExplorer.run` as ``nemesis=``.  The
    driver mutates the run through it: block links on
    :attr:`network` (``network.blocked`` / ``network.link_loss``), kill
    replicas via :meth:`hard_kill` (several calls in one ``step`` model
    simultaneous kills), or poke spill stores via
    ``explorer.spill_stores``.  See :mod:`repro.nemesis.campaign` for the
    schedule-driven driver built on this.
    """

    explorer: "KeyedInterleavingExplorer"
    sim: Simulator
    network: AdversarialNetwork
    rng: random.Random
    runtimes: dict[str, "_DirectRuntime"]
    replica_ids: list[str]
    report: KeyedExplorationReport

    def hard_kill(self, victim: str) -> None:
        """kill -9 ``victim`` now (no shutdown hook; rejoin on restart)."""
        self.explorer._hard_restart(
            self.runtimes[victim], self.replica_ids, self.report
        )

    def rejoining(self) -> list[str]:
        """Replicas with a rejoin in progress (keys not yet refreshed)."""
        rejoining = []
        for replica_id, runtime in self.runtimes.items():
            pending = getattr(runtime.node, "rejoin_pending_count", None)
            if pending is not None and pending() > 0:
                rejoining.append(replica_id)
        return rejoining


class KeyedInterleavingExplorer:
    """Adversarial runs against :class:`KeyedCrdtReplica` with eviction.

    ``keyed_max_resident`` defaults to fewer instances than ``n_keys``,
    so admission of a fresh key routinely demotes a quiescent one and a
    later touch rehydrates it — linearizability per key must survive the
    freeze/rehydrate cycle under adversarial delivery order.  Eviction
    only demotes idle instances, so the interesting interleavings are the
    ones where a key quiesces, freezes, and is then hit again while other
    keys' protocol traffic is still in flight.
    """

    def __init__(
        self,
        seed: int,
        n_replicas: int = 3,
        n_clients: int = 3,
        n_keys: int = 4,
        config: CrdtPaxosConfig | None = None,
        spill_factory: Callable[[], SpillStore] | None = None,
        keep_timeouts: bool = False,
        spill_reopen: Callable[[str, SpillStore], SpillStore] | None = None,
    ) -> None:
        self.seed = seed
        self.n_replicas = n_replicas
        self.n_clients = n_clients
        self.keys = [f"k{i}" for i in range(n_keys)]
        #: One spill store per replica, built lazily in :meth:`run` and
        #: kept on the explorer so tests can inspect them afterwards.
        self.spill_factory = spill_factory
        self.spill_stores: dict[str, SpillStore] = {}
        #: Hard kills only: ``(replica_id, dead_store) -> reopened store``.
        #: Models reopening the on-disk state the way a restarted process
        #: would (e.g. a fresh SegmentedSpillStore over the same
        #: directory).  Without it, a store exposing ``crash()`` (the
        #: VolatileSpillStore power-loss model) has its volatile buffer
        #: dropped instead.
        self.spill_reopen = spill_reopen
        base = config or CrdtPaxosConfig()
        if base.keyed_max_resident is None:
            base = replace(base, keyed_max_resident=max(1, n_keys // 2))
        if spill_factory is not None and base.keyed_max_frozen is None:
            # Default the frozen cap below the keyspace so the spill tier
            # actually churns (frozen records leave RAM and reload).
            base = replace(base, keyed_max_frozen=max(0, n_keys // 4))
        # Idle eviction is forced off: the explorer's virtual clock only
        # advances by epsilon steps and its runtime never calls on_start,
        # so a sweep timer would never arm — a campaign relying on
        # keyed_idle_evict_s here would be vacuous.  Capacity eviction
        # (keyed_max_resident) is the mechanism this explorer churns.
        #
        # ``keep_timeouts`` preserves the supplied request_timeout: the
        # uto/qto supervision timers then pool with the other collected
        # timers and the adversary fires re-drives in arbitrary order
        # relative to deliveries and coalesce flushes — the schedule the
        # coalescing-aware re-drive fix is exercised under.
        self.config = replace(
            base,
            request_timeout=base.request_timeout if keep_timeouts else None,
            keyed_idle_evict_s=None,
            inclusion_tagger=lambda state, replica: (replica, state.slot(replica)),
        )
        # Coalescing parks peer traffic behind a flush timer, so with it
        # on the adversary must control (and eventually fire) that timer
        # too or the run would deadlock instead of quiescing.
        self._collect_timers = (
            base.batching
            or base.retry_backoff > 0
            or base.keyed_coalesce_window is not None
            or base.durability == "group_sync"
            or keep_timeouts
        )

    @staticmethod
    def _accumulate(report: KeyedExplorationReport, node: KeyedCrdtReplica) -> None:
        """Fold one node generation's counters into the report (called
        for the dying node at a restart and for the final nodes)."""
        report.evictions += node.evictions
        report.rehydrations += node.rehydrations
        report.spills += node.spills
        report.spill_loads += node.spill_loads
        report.keyed_batches_packed += node.acceptor_stats.keyed_batches_packed
        report.keyed_batches_unpacked += node.acceptor_stats.keyed_batches_unpacked
        report.keyed_envelopes_superseded += (
            node.acceptor_stats.keyed_envelopes_superseded
        )
        report.rejoin_refreshes += node.rejoin_refreshes
        report.write_through_persists += node.write_through_persists
        report.group_commits += node.group_commits
        report.persist_refusals += node.persist_refusals

    def _restart(
        self,
        runtime: _DirectRuntime,
        replica_ids: list[str],
        report: KeyedExplorationReport,
    ) -> None:
        """Kill one replica and rebuild it purely from its spill store.

        The dying node first persists its durable snapshot
        (:meth:`~repro.core.keyspace.KeyedCrdtReplica.spill_all` — the
        shutdown hook; its final outbox flush is delivered, modelling
        acks that made it out before the process died).  Everything else
        — resident instances, open proposer bookkeeping, armed timers —
        dies with the process.  The fresh node starts with *zero* keys
        in RAM and rehydrates each from the store on first touch, while
        messages that were in flight across the restart arrive at the
        new generation.
        """
        old = runtime.node
        runtime._apply(old.spill_all())
        self._accumulate(report, old)
        fresh = KeyedCrdtReplica.recover(
            self.spill_stores[old.node_id],
            old.node_id,
            list(replica_ids),
            lambda key: GCounter.initial(),
            self.config,
        )
        runtime.node = fresh
        runtime.pending_timers.clear()  # timers do not survive a restart
        runtime._apply(fresh.on_start(self._sim_now(runtime)))
        report.restarts += 1

    def _hard_restart(
        self,
        runtime: _DirectRuntime,
        replica_ids: list[str],
        report: KeyedExplorationReport,
    ) -> None:
        """kill -9 one replica and rebuild it from whatever is durable.

        Unlike :meth:`_restart` there is NO ``spill_all`` — the process
        gets no shutdown hook, so only what the durability policy already
        persisted survives.  The store itself crashes too: with a
        ``spill_reopen`` hook the dead store is reopened the way a fresh
        process would (a SegmentedSpillStore directory mid-compaction,
        say); otherwise a store exposing ``crash()`` drops its volatile
        buffer (the power-loss model).  The fresh node then *rejoins*:
        every recovered key is refreshed from a read quorum (a §3.3
        prepare) before it serves traffic, because its own pair may be
        stale.
        """
        old = runtime.node
        self._accumulate(report, old)
        store = self.spill_stores[old.node_id]
        if self.spill_reopen is not None:
            store = self.spill_reopen(old.node_id, store)
            self.spill_stores[old.node_id] = store
        else:
            crash = getattr(store, "crash", None)
            if crash is not None:
                crash()
        fresh = KeyedCrdtReplica.recover(
            store,
            old.node_id,
            list(replica_ids),
            lambda key: GCounter.initial(),
            self.config,
            rejoin=True,
        )
        runtime.node = fresh
        runtime.pending_timers.clear()  # timers do not survive a kill
        runtime._apply(fresh.on_start(self._sim_now(runtime)))
        # Open the quorum refresh for every recovered key up front; the
        # prepares enter the adversarial pool like any other traffic.
        runtime._apply(fresh.rejoin())
        report.hard_kills += 1

    @staticmethod
    def _sim_now(runtime: _DirectRuntime) -> float:
        return runtime._sim.now

    def run(
        self,
        n_ops: int = 40,
        read_fraction: float = 0.5,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        max_steps: int = 200_000,
        restart_at_injection: int | None = None,
        hard_kill_at_injection: int | None = None,
        nemesis: Any | None = None,
    ) -> KeyedExplorationReport:
        """One adversarial run; ``restart_at_injection`` kills and
        recovers a random replica once that many operations have been
        injected (requires a ``spill_factory``).  Operations that were
        open at the victim when it died may never complete — their
        clients crash-observed the restart — so restart campaigns check
        the per-key histories without asserting ``all_complete``.

        ``hard_kill_at_injection`` instead kills a random replica with
        *no* shutdown hook (see :meth:`_hard_restart`): only what the
        durability policy persisted survives, and the fresh node rejoins
        its recovered keys from a read quorum before serving them.

        ``nemesis`` installs a fault driver with ``begin(ctx)`` /
        ``step(ctx) -> bool`` / ``finish(ctx)`` hooks over a
        :class:`KeyedNemesisContext`.  ``step`` runs once per scheduler
        iteration before anything else; returning ``True`` consumes the
        step (the driver acted).  ``finish`` runs after the main loop and
        must heal whatever it broke — the explorer then releases any
        envelopes parked on blocked links and quiesces, so every run ends
        with a healed network regardless of the schedule's shape.
        """
        if restart_at_injection is not None and self.spill_factory is None:
            raise ValueError("restart_at_injection requires a spill_factory")
        if hard_kill_at_injection is not None and self.spill_factory is None:
            raise ValueError("hard_kill_at_injection requires a spill_factory")
        sim = Simulator(seed=self.seed)
        network = AdversarialNetwork(sim)
        rng = sim.rng.stream("keyed-explorer")
        report = KeyedExplorationReport()

        runtimes = {}
        replica_ids = [f"r{i}" for i in range(self.n_replicas)]
        replica_set = set(replica_ids)
        network.duplicable = (
            lambda envelope: envelope.src in replica_set
            and envelope.dst in replica_set
        )
        self.spill_stores = {}
        for replica_id in replica_ids:
            spill_store = None
            if self.spill_factory is not None:
                spill_store = self.spill_stores[replica_id] = self.spill_factory()
            node = KeyedCrdtReplica(
                replica_id,
                list(replica_ids),
                lambda key: GCounter.initial(),
                self.config,
                spill_store=spill_store,
            )
            runtimes[replica_id] = _DirectRuntime(
                sim, network, node, collect_timers=self._collect_timers
            )
        clients = [
            _KeyedRecordingClient(sim, network, f"c{i}", report.histories)
            for i in range(self.n_clients)
        ]

        plan: list[str] = [
            "read" if rng.random() < read_fraction else "update"
            for _ in range(n_ops)
        ]

        def timer_targets() -> list[_DirectRuntime]:
            return [r for r in runtimes.values() if r.pending_timers]

        nemesis_ctx = None
        if nemesis is not None:
            nemesis_ctx = KeyedNemesisContext(
                explorer=self,
                sim=sim,
                network=network,
                rng=rng,
                runtimes=runtimes,
                replica_ids=replica_ids,
                report=report,
            )
            nemesis.begin(nemesis_ctx)

        while report.steps < max_steps and (
            plan or network.pending or timer_targets()
        ):
            report.steps += 1
            if nemesis_ctx is not None and nemesis.step(nemesis_ctx):
                continue
            if (
                restart_at_injection is not None
                and report.restarts == 0
                and report.injections >= restart_at_injection
            ):
                victim = rng.choice(replica_ids)
                self._restart(runtimes[victim], replica_ids, report)
                continue
            if (
                hard_kill_at_injection is not None
                and report.hard_kills == 0
                and report.injections >= hard_kill_at_injection
            ):
                victim = rng.choice(replica_ids)
                self._hard_restart(runtimes[victim], replica_ids, report)
                continue
            inject_now = bool(plan) and (
                network.pending == 0 or rng.random() < 0.25
            )
            if inject_now:
                kind = plan.pop()
                client = rng.choice(clients)
                replica = rng.choice(replica_ids)
                key = rng.choice(self.keys)
                if kind == "update":
                    client.inject_update(replica, key)
                else:
                    client.inject_query(replica, key)
                report.injections += 1
                continue

            targets = timer_targets()
            if targets and (network.pending == 0 or rng.random() < 0.15):
                runtime = rng.choice(targets)
                timer_key = rng.choice(list(runtime.pending_timers))
                runtime.fire_timer(timer_key)
                report.timer_fires += 1
                continue

            if network.deliver_random(drop_probability, duplicate_probability):
                report.deliveries += 1

        # Quiesce: heal the nemesis, then drain, then alternate firing
        # armed timers with full drains until a fixpoint (flush/retry
        # timers stop re-arming once buffers, pipelines and parked
        # retries are empty).  Envelopes parked on blocked links are
        # released *into* the pool rather than dropped — delivering the
        # pre-partition traffic after the heal is strictly more hostile.
        if nemesis_ctx is not None:
            nemesis.finish(nemesis_ctx)
        network.blocked = None
        network.link_loss = None
        network.release_held()
        network.drain(max_deliveries=max_steps)
        for _ in range(200):
            fired = False
            for runtime in runtimes.values():
                for timer_key in list(runtime.pending_timers):
                    runtime.fire_timer(timer_key)
                    fired = True
                    report.timer_fires += 1
            network.drain(max_deliveries=max_steps)
            if not fired and not network.pending:
                break

        for runtime in runtimes.values():
            self._accumulate(report, runtime.node)
        return report
