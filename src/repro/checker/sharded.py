"""Adversarial exploration of the sharded multi-group deployment.

:class:`ShardedMigrationExplorer` runs the §3.1 adversary against N
independent CRDT-Paxos groups on one
:class:`~repro.net.adversary.AdversarialNetwork`, with a
:class:`~repro.sharding.migration.MigrationCoordinator` moving keys
between groups *while client traffic is in flight*.  Everything the
keyed explorer already churns (eviction, spill, rejoin) still churns;
on top of it the runs exercise the migration protocol's windows:

* client commands racing a freeze (the source refuses with a forwarding
  hint; the recording client re-routes the SAME operation, so the
  history sees one at-least-once op no matter how many hops it took);
* commands arriving at the destination between install and commit
  (buffered, replayed through the normal client path on commit);
* a source-group member hard-killed mid-migration (its freeze mark was
  persisted before its snapshot reply escaped, so the rebuilt node
  recovers *still frozen* and rejoins);
* the coordinator partitioned from the destination group mid-install
  (the move stalls — sources stay frozen, clients bounce and buffer —
  and completes after the heal via re-drives; no timeout ever
  unfreezes anything).

Fault drivers plug in via the same ``begin`` / ``step`` / ``finish``
hook shape the keyed explorer uses, over a
:class:`ShardedNemesisContext`; see :mod:`repro.nemesis.sharded` for
the schedule-driven one.  Per-key histories are validated independently
with :func:`~repro.checker.lattice_linearizability.check_all` — a key
is one lattice-linearizable object regardless of how many groups served
it over its life.

Migration runs do not assert ``all_complete``: an operation that lands
on a not-yet-frozen source straggler after its peers froze can never
certify (frozen peers drop its MERGE/PREPARE — exactly the discipline
that keeps the snapshot sound), and the adversary disables the client
re-drives that would rescue it in a real deployment.  Such operations
stay open, which the checkers treat like any other incomplete op: free
to take effect never.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Hashable

from repro.api.codec import compile_query, compile_update, parse_completion
from repro.checker.history import History
from repro.checker.scheduler import _DirectRuntime, _stamp_completion
from repro.core.config import CrdtPaxosConfig
from repro.core.keyspace import GroupOwnership, KeyedCrdtReplica
from repro.crdt.base import IdentityQuery
from repro.crdt.gcounter import GCounter, Increment
from repro.net.adversary import AdversarialNetwork
from repro.net.message import Envelope
from repro.sharding.migration import MigrationCoordinator
from repro.sharding.routing import RoutingService, RoutingTable
from repro.sim.kernel import Simulator
from repro.storage.base import SpillStore

#: Virtual time consumed by an injection step (keeps "now" increasing).
_STEP_EPSILON = 1e-9

#: Re-routes after which the recording client gives up on one operation
#: and leaves its record open (an incomplete op, like a refusal).  Only
#: reachable while a migration is stalled by a long partition.
_CLIENT_MAX_BOUNCES = 64


class _ShardedRecordingClient:
    """Injects routed per-key operations; follows WrongGroup hints.

    A wrong-group completion is NOT a completion: the client folds the
    replica's forwarding hint into the shared routing view and re-sends
    the *same* op id to a replica of the group it now believes owns the
    key.  The record stays open across hops, so the checkers see one
    operation with one invocation/completion window — exactly the
    at-least-once contract the real :class:`~repro.api.sharded
    .ShardedStore` bounce loop provides.
    """

    def __init__(
        self,
        sim: Simulator,
        network: AdversarialNetwork,
        address: str,
        histories: dict[Hashable, History],
        routing: RoutingService,
        members: dict[str, list[str]],
        rng: Any,
        report: "ShardedExplorationReport",
    ) -> None:
        self._sim = sim
        self._network = network
        self.address = address
        self._histories = histories
        self._routing = routing
        self._members = members
        self._rng = rng
        self._report = report
        self._open: dict[str, Any] = {}
        #: ``op_id -> (kind, key)`` for re-routing bounced operations.
        self._meta: dict[str, tuple[str, Hashable]] = {}
        self._bounces: dict[str, int] = {}
        self._counter = 0
        network.register(address, self)

    def _history(self, key: Hashable) -> History:
        history = self._histories.get(key)
        if history is None:
            history = self._histories[key] = History()
        return history

    def _pick_replica(self, key: Hashable) -> str:
        return self._rng.choice(self._members[self._routing.owner(key)])

    def inject_update(self, key: Hashable) -> None:
        self._counter += 1
        op_id = f"{self.address}/u{self._counter}"
        replica = self._pick_replica(key)
        self._sim.now += _STEP_EPSILON
        self._open[op_id] = self._history(key).begin_update(
            op_id, replica, self._sim.now
        )
        self._meta[op_id] = ("update", key)
        self._network.send(
            self.address, replica, compile_update(op_id, Increment(), key=key)
        )

    def inject_query(self, key: Hashable) -> None:
        self._counter += 1
        op_id = f"{self.address}/q{self._counter}"
        replica = self._pick_replica(key)
        self._sim.now += _STEP_EPSILON
        self._open[op_id] = self._history(key).begin_query(
            op_id, replica, self._sim.now
        )
        self._meta[op_id] = ("query", key)
        self._network.send(
            self.address, replica, compile_query(op_id, IdentityQuery(), key=key)
        )

    def deliver(self, envelope: Envelope) -> None:
        completion = parse_completion(envelope.payload)
        if completion is not None and completion.kind == "wrong_group":
            op_id = completion.request_id
            if op_id not in self._open:
                return  # already completed via another hop's duplicate
            kind, key = self._meta[op_id]
            self._report.reroutes += 1
            if completion.group:
                self._routing.note(key, completion.epoch, completion.group)
            bounces = self._bounces.get(op_id, 0) + 1
            self._bounces[op_id] = bounces
            if bounces > _CLIENT_MAX_BOUNCES:
                return  # give up; the record stays open (incomplete op)
            replica = self._pick_replica(key)
            # The op will execute (if it ever does) at the replica this
            # hop lands on — re-point the record so Validity attributes
            # its slot to the group that actually served it.
            self._open[op_id].replica = replica
            self._sim.now += _STEP_EPSILON
            message = (
                compile_update(op_id, Increment(), key=key)
                if kind == "update"
                else compile_query(op_id, IdentityQuery(), key=key)
            )
            self._network.send(self.address, replica, message)
            return
        _stamp_completion(self._open, envelope.payload, self._sim.now)


@dataclass
class ShardedExplorationReport:
    """Outcome of one adversarial sharded run."""

    histories: dict[Hashable, History] = field(default_factory=dict)
    steps: int = 0
    deliveries: int = 0
    injections: int = 0
    timer_fires: int = 0
    #: Client operations re-routed by WrongGroup hints.
    reroutes: int = 0
    #: Migrations the coordinator actually opened / drove to commit.
    migrations_started: int = 0
    migrations_completed: int = 0
    #: ``(key, source, target)`` per started move, in start order.
    moves: list[tuple[Hashable, str, str]] = field(default_factory=list)
    #: Nemesis actions.
    hard_kills: int = 0
    partitions: int = 0
    #: Replica-side ownership counters, summed over all generations.
    wrong_group_refusals: int = 0
    migrations_out: int = 0
    migrations_in: int = 0
    rejoin_refreshes: int = 0

    @property
    def all_complete(self) -> bool:
        return all(
            all(u.complete for u in history.updates)
            and all(q.complete for q in history.queries)
            for history in self.histories.values()
        )


@dataclass
class ShardedNemesisContext:
    """Handle a fault driver uses to act on a sharded adversarial run.

    Passed to the ``begin`` / ``step`` / ``finish`` hooks of the object
    given to :meth:`ShardedMigrationExplorer.run` as ``nemesis=``.
    :attr:`moves` grows as migrations start, so a driver can arm itself
    on the first move and strike mid-protocol.
    """

    explorer: "ShardedMigrationExplorer"
    sim: Simulator
    network: AdversarialNetwork
    rng: Any
    runtimes: dict[str, _DirectRuntime]
    members: dict[str, list[str]]
    coordinator_id: str
    report: ShardedExplorationReport
    moves: list[tuple[Hashable, str, str]]

    def hard_kill(self, victim: str) -> None:
        """kill -9 ``victim`` now (no shutdown hook; rejoin on restart)."""
        self.explorer._hard_restart(victim)

    def partition(self, side_a: set[str], side_b: set[str]) -> None:
        """Cut both directions between the two sides until :meth:`heal`."""
        a, b = frozenset(side_a), frozenset(side_b)
        self.network.blocked = lambda src, dst: (
            (src in a and dst in b) or (src in b and dst in a)
        )
        self.report.partitions += 1

    def heal(self) -> None:
        """Lift the partition and release the traffic it held."""
        self.network.blocked = None
        self.network.release_held()


class ShardedMigrationExplorer:
    """Adversarial runs against N groups with live key migration.

    The routing view is shared between the coordinator and the recording
    clients (as in :class:`~repro.sharding.deployment
    .ShardedSimDeployment`), so committed moves route fresh traffic
    correctly while operations already in flight bounce off the
    epoch-stamped refusals — both paths are exercised in every run that
    migrates under load.
    """

    def __init__(
        self,
        seed: int,
        groups: tuple[str, ...] = ("g0", "g1"),
        n_replicas: int = 3,
        n_clients: int = 2,
        n_keys: int = 6,
        config: CrdtPaxosConfig | None = None,
        spill_factory: Callable[[], SpillStore] | None = None,
        spill_reopen: Callable[[str, SpillStore], SpillStore] | None = None,
        vnodes: int = 16,
    ) -> None:
        self.seed = seed
        self.group_names = tuple(groups)
        self.n_replicas = n_replicas
        self.n_clients = n_clients
        self.keys = [f"k{i}" for i in range(n_keys)]
        self.vnodes = vnodes
        self.spill_factory = spill_factory
        self.spill_reopen = spill_reopen
        self.spill_stores: dict[str, SpillStore] = {}
        base = config or CrdtPaxosConfig()
        # Same adversary discipline as the keyed explorer: re-drive
        # timeouts off (the adversary owns scheduling), idle eviction off
        # (the epsilon clock would never arm its sweep).
        self.config = replace(
            base,
            request_timeout=None,
            keyed_idle_evict_s=None,
            inclusion_tagger=lambda state, replica: (replica, state.slot(replica)),
        )
        self._collect_timers = (
            base.batching
            or base.retry_backoff > 0
            or base.keyed_coalesce_window is not None
            or base.durability == "group_sync"
        )
        self.birth_table = RoutingTable(self.group_names, vnodes=vnodes)
        # Per-run state (populated by :meth:`run`).
        self.routing: RoutingService | None = None
        self._runtimes: dict[str, _DirectRuntime] = {}
        self._members: dict[str, list[str]] = {}
        self._group_of: dict[str, str] = {}
        self._coordinator: MigrationCoordinator | None = None
        self._coordinator_runtime: _DirectRuntime | None = None
        self._report: ShardedExplorationReport | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _accumulate(
        report: ShardedExplorationReport, node: KeyedCrdtReplica
    ) -> None:
        report.wrong_group_refusals += node.wrong_group_refusals
        report.migrations_out += node.migrations_out
        report.migrations_in += node.migrations_in
        report.rejoin_refreshes += node.rejoin_refreshes

    def _hard_restart(self, victim: str) -> None:
        """kill -9 one replica mid-run and rebuild it from durable state.

        Same model as the keyed explorer's hard kill — no shutdown hook,
        the store crashes or is reopened, the fresh node rejoins — plus
        the sharded invariant: ownership marks are part of the durable
        meta, so a replica killed with a freeze mark on disk recovers
        *still frozen* (its dead generation can never ack an update the
        migration snapshot missed).
        """
        if self.spill_factory is None:
            raise ValueError("hard kills require a spill_factory")
        runtime = self._runtimes[victim]
        old = runtime.node
        report = self._report
        assert report is not None
        self._accumulate(report, old)
        store = self.spill_stores[victim]
        if self.spill_reopen is not None:
            store = self.spill_reopen(victim, store)
            self.spill_stores[victim] = store
        else:
            crash = getattr(store, "crash", None)
            if crash is not None:
                crash()
        group = self._group_of[victim]
        fresh = KeyedCrdtReplica.recover(
            store,
            victim,
            list(self._members[group]),
            lambda key: GCounter.initial(),
            self.config,
            rejoin=True,
            ownership=GroupOwnership(group, self.birth_table),
        )
        runtime.node = fresh
        runtime.pending_timers.clear()  # timers do not survive a kill
        runtime._apply(fresh.on_start(runtime._sim.now))
        runtime._apply(fresh.rejoin())
        report.hard_kills += 1

    def _start_migration(self, rng: Any) -> bool:
        """Open one randomly chosen move; False if none was startable."""
        coordinator = self._coordinator
        routing = self.routing
        report = self._report
        assert coordinator is not None and routing is not None
        assert report is not None and self._coordinator_runtime is not None
        keys = list(self.keys)
        rng.shuffle(keys)
        for key in keys:
            source = routing.owner(key)
            targets = [g for g in self.group_names if g != source]
            if not targets:
                return False
            target = rng.choice(targets)
            before = coordinator.migrations_started
            effects = coordinator.migrate(key, target, self._sim_now())
            if coordinator.migrations_started > before:
                self._coordinator_runtime._apply(effects)
                report.moves.append((key, source, target))
                return True
        return False

    def _sim_now(self) -> float:
        runtime = self._coordinator_runtime
        assert runtime is not None
        return runtime._sim.now

    # ------------------------------------------------------------------
    def run(
        self,
        n_ops: int = 40,
        read_fraction: float = 0.5,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        max_steps: int = 200_000,
        migrate_at: tuple[int, ...] = (),
        nemesis: Any | None = None,
    ) -> ShardedExplorationReport:
        """One adversarial sharded run.

        ``migrate_at`` lists injection counts at which the coordinator
        opens a move of a random key to a random other group (each
        triggers once, in order).  ``nemesis`` installs a fault driver
        with ``begin`` / ``step`` / ``finish`` hooks over a
        :class:`ShardedNemesisContext`; ``finish`` must heal whatever it
        broke, and the explorer heals the network again regardless
        before quiescing — every run ends healed, so stalled migrations
        re-drive to completion and the coordinator retires them.
        """
        sim = Simulator(seed=self.seed)
        network = AdversarialNetwork(sim)
        rng = sim.rng.stream("sharded-explorer")
        report = ShardedExplorationReport()
        self._report = report
        self.routing = RoutingService(self.birth_table)

        self._runtimes = {}
        self._members = {}
        self._group_of = {}
        self.spill_stores = {}
        for group in self.group_names:
            members = [f"{group}-r{i}" for i in range(self.n_replicas)]
            self._members[group] = members
            for replica_id in members:
                self._group_of[replica_id] = group
                spill_store = None
                if self.spill_factory is not None:
                    spill_store = self.spill_stores[replica_id] = (
                        self.spill_factory()
                    )
                node = KeyedCrdtReplica(
                    replica_id,
                    list(members),
                    lambda key: GCounter.initial(),
                    self.config,
                    spill_store=spill_store,
                    ownership=GroupOwnership(group, self.birth_table),
                )
                self._runtimes[replica_id] = _DirectRuntime(
                    sim, network, node, collect_timers=self._collect_timers
                )
        coordinator_id = "shard-coordinator"
        self._coordinator = MigrationCoordinator(
            coordinator_id,
            {name: list(members) for name, members in self._members.items()},
            self.routing,
            config=CrdtPaxosConfig(),
        )
        # The coordinator's re-drive timers are adversarially scheduled
        # like everything else — a "slow" coordinator interleaves its
        # phase re-broadcasts arbitrarily with client traffic.
        self._coordinator_runtime = _DirectRuntime(
            sim, network, self._coordinator, collect_timers=True
        )

        protocol_set = set(self._group_of) | {coordinator_id}
        network.duplicable = (
            lambda envelope: envelope.src in protocol_set
            and envelope.dst in protocol_set
        )

        clients = [
            _ShardedRecordingClient(
                sim,
                network,
                f"c{i}",
                report.histories,
                self.routing,
                self._members,
                rng,
                report,
            )
            for i in range(self.n_clients)
        ]

        plan: list[str] = [
            "read" if rng.random() < read_fraction else "update"
            for _ in range(n_ops)
        ]
        pending_migrations = sorted(migrate_at, reverse=True)

        all_runtimes = list(self._runtimes.values()) + [
            self._coordinator_runtime
        ]

        def timer_targets() -> list[_DirectRuntime]:
            return [r for r in all_runtimes if r.pending_timers]

        nemesis_ctx = None
        if nemesis is not None:
            nemesis_ctx = ShardedNemesisContext(
                explorer=self,
                sim=sim,
                network=network,
                rng=rng,
                runtimes=self._runtimes,
                members=self._members,
                coordinator_id=coordinator_id,
                report=report,
                moves=report.moves,
            )
            nemesis.begin(nemesis_ctx)

        while report.steps < max_steps and (
            plan or network.pending or timer_targets()
        ):
            report.steps += 1
            if nemesis_ctx is not None and nemesis.step(nemesis_ctx):
                continue
            if (
                pending_migrations
                and report.injections >= pending_migrations[-1]
            ):
                pending_migrations.pop()
                self._start_migration(rng)
                continue
            inject_now = bool(plan) and (
                network.pending == 0 or rng.random() < 0.25
            )
            if inject_now:
                kind = plan.pop()
                client = rng.choice(clients)
                key = rng.choice(self.keys)
                if kind == "update":
                    client.inject_update(key)
                else:
                    client.inject_query(key)
                report.injections += 1
                continue

            targets = timer_targets()
            if targets and (network.pending == 0 or rng.random() < 0.15):
                runtime = rng.choice(targets)
                timer_key = rng.choice(list(runtime.pending_timers))
                runtime.fire_timer(timer_key)
                report.timer_fires += 1
                continue

            if network.deliver_random(drop_probability, duplicate_probability):
                report.deliveries += 1

        # Quiesce: heal the nemesis, release partition-held traffic into
        # the pool (more hostile than dropping it), then alternate firing
        # armed timers with full drains until a fixpoint — coordinator
        # re-drives push every stalled migration through install/commit,
        # and the commit replays whatever the destinations buffered.
        if nemesis_ctx is not None:
            nemesis.finish(nemesis_ctx)
        network.blocked = None
        network.link_loss = None
        network.release_held()
        network.drain(max_deliveries=max_steps)
        for _ in range(200):
            fired = False
            for runtime in all_runtimes:
                for timer_key in list(runtime.pending_timers):
                    runtime.fire_timer(timer_key)
                    fired = True
                    report.timer_fires += 1
            network.drain(max_deliveries=max_steps)
            if not fired and not network.pending:
                break

        for runtime in self._runtimes.values():
            self._accumulate(report, runtime.node)
        report.migrations_started = self._coordinator.migrations_started
        report.migrations_completed = self._coordinator.migrations_completed
        return report
