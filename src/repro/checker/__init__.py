"""Correctness tooling for lattice-linearizable histories.

The paper proves five conditions for its protocol (§3.1/§3.3): Validity,
Stability, Consistency, Update Stability and Update Visibility, plus the
optional GLA-Stability of §3.4.  This package checks them on *recorded
histories*:

* :mod:`repro.checker.history` — operation records with real-time
  invocation/completion ordering;
* :mod:`repro.checker.lattice_linearizability` — the condition checkers
  (raising :class:`~repro.errors.HistoryViolation` with a narrative);
* :mod:`repro.checker.scheduler` — an adversarial interleaving explorer
  reproducing the authors' own test methodology ("a protocol scheduler
  that enforces random interleavings of incoming messages"), extended
  with message loss, duplication and replica crashes.
"""

from repro.checker.history import History, QueryRecord, UpdateRecord
from repro.checker.lattice_linearizability import (
    check_all,
    check_consistency,
    check_gla_stability,
    check_stability,
    check_update_stability,
    check_update_visibility,
    check_validity_gcounter,
    gcounter_includes,
)
from repro.checker.scheduler import ExplorationReport, InterleavingExplorer
from repro.checker.sharded import (
    ShardedExplorationReport,
    ShardedMigrationExplorer,
    ShardedNemesisContext,
)

__all__ = [
    "ExplorationReport",
    "History",
    "InterleavingExplorer",
    "ShardedExplorationReport",
    "ShardedMigrationExplorer",
    "ShardedNemesisContext",
    "QueryRecord",
    "UpdateRecord",
    "check_all",
    "check_consistency",
    "check_gla_stability",
    "check_stability",
    "check_update_stability",
    "check_update_visibility",
    "check_validity_gcounter",
    "gcounter_includes",
]
