"""Closed-loop clients and per-operation recording."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Hashable

from repro.api.codec import UNKEYED
from repro.checker.history import History
from repro.net.sim_transport import SimNetwork
from repro.runtime.cluster import ClientEndpoint
from repro.sim.kernel import Simulator
from repro.workload.adapters import OpAdapter
from repro.workload.profiles import OpProfile
from repro.workload.sampler import ZipfKeySampler


@dataclass(frozen=True, slots=True)
class OpRecord:
    """One completed operation, as the statistics layer sees it."""

    kind: str  # "update" | "read"
    issued_at: float
    completed_at: float
    round_trips: int
    via: str
    client: str
    retried: bool
    key: Any = None

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


class Recorder:
    """Accumulates completed operations for one run."""

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self.timeouts = 0

    def record(self, op: OpRecord) -> None:
        self.records.append(op)

    def record_timeout(self) -> None:
        self.timeouts += 1


class HistoryTap:
    """Builds checker histories from a run — one per key (or one total).

    Every *attempt* becomes an operation record (a client re-issue under
    a fresh request id is a fresh submission, which is exactly what the
    Validity condition counts); the attempt whose reply arrives gets
    stamped complete, superseded attempts stay open.  Reads carry the
    learned *state* (the clients switch to the profile's identity query
    when a tap is installed), so the recorded histories feed
    :mod:`repro.checker.lattice_linearizability` directly.
    """

    def __init__(self) -> None:
        self.histories: dict[Any, History] = {}

    def _history(self, key: Any) -> History:
        history = self.histories.get(key)
        if history is None:
            history = self.histories[key] = History()
        return history

    def begin(self, key: Any, kind: str, op_id: str, replica: str, now: float):
        history = self._history(key)
        if kind == "read":
            return history.begin_query(op_id, replica, now)
        return history.begin_update(op_id, replica, now)

    @staticmethod
    def complete(record: Any, completion: Any, now: float) -> None:
        record.completed_at = now
        if completion.kind == "read":
            record.state = completion.result
            record.proposer = completion.proposer
            record.learn_seq = completion.learn_seq
            record.round_trips = completion.round_trips
            record.learned_via = completion.learned_via
        else:
            record.inclusion_tag = completion.inclusion_tag


class ClosedLoopClient:
    """One Basho-Bench-style worker.

    The client is pinned to one replica; each operation is issued as soon
    as the previous one completes.  If no reply arrives within the
    client timeout the operation is *re-issued* under a fresh request id
    to the next replica (round-robin) — stale replies to superseded ids
    are dropped.  The latency of a retried operation spans from the first
    issue, like a real benchmark client's stopwatch.

    Operations come from an :class:`~repro.workload.profiles.OpProfile`
    (which CRDT, which update/read ops) and are compiled by an
    :class:`~repro.workload.adapters.OpAdapter` (which protocol dialect).
    With a ``key_sampler`` the client runs the keyed deployment: every
    operation first draws a key from the sampler's popularity
    distribution and the adapter wraps the command in a ``Keyed``
    envelope.  With a ``history_tap`` the run records per-key checkable
    histories (reads switch to the identity query so learned states are
    captured).

    With a ``router`` (anything exposing ``replicas_for(key)`` and
    ``note(key, epoch, group)`` — see :class:`~repro.workload.sharded
    .GroupRouter`) the client runs the *sharded* deployment: each
    operation targets a replica of the group its key routes to, and a
    ``wrong_group`` refusal folds the replica's epoch-stamped forwarding
    hint into the router and re-issues immediately at the new group —
    the same bounce loop :class:`~repro.api.sharded.ShardedStore` runs,
    driven open-loop under benchmark load.
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        address: str,
        replicas: list[str],
        home_replica: int,
        adapter: OpAdapter,
        profile: OpProfile,
        recorder: Recorder,
        rng: random.Random,
        read_ratio: float,
        stop_time: float,
        client_timeout: float,
        key_sampler: ZipfKeySampler | None = None,
        history_tap: HistoryTap | None = None,
        router: Any = None,
    ) -> None:
        self._sim = sim
        self._endpoint = ClientEndpoint(sim, network, address, self._on_reply)
        self.address = address
        self._replicas = replicas
        self._target_index = home_replica % len(replicas)
        self._adapter = adapter
        self._profile = profile
        self._recorder = recorder
        self._rng = rng
        self._read_ratio = read_ratio
        self._stop_time = stop_time
        self._client_timeout = client_timeout
        self._key_sampler = key_sampler
        self._history_tap = history_tap
        self._router = router

        self._sequence = 0
        self._outstanding_id: str | None = None
        self._current_kind = ""
        self._current_key: Hashable = UNKEYED
        self._current_op: Any = None
        self._open_history_record: Any = None
        self._first_issued_at = 0.0
        self._retried = False
        self.operations_completed = 0
        #: Operations re-routed by WrongGroup refusals (router runs).
        self.reroutes = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._issue_new()

    def _issue_new(self) -> None:
        if self._sim.now >= self._stop_time:
            self._outstanding_id = None
            return
        self._current_kind = (
            "read" if self._rng.random() < self._read_ratio else "update"
        )
        if self._key_sampler is not None:
            self._current_key = self._key_sampler.sample(self._rng)
            if self._router is not None:
                self._retarget()
        # The operation is drawn once per logical op: a timeout retry
        # re-issues the *same* op (under a fresh id), it does not draw a
        # new one from the profile's randomness.
        if self._current_kind == "read":
            if self._history_tap is not None:
                self._current_op = self._profile.identity_query()
            else:
                self._current_op = self._profile.query_op()
        else:
            self._current_op = self._profile.update_op(self._rng, self._sim.now)
        self._first_issued_at = self._sim.now
        self._retried = False
        self._send_attempt()

    def _retarget(self) -> None:
        """Point at the group the router currently owns the key to."""
        self._replicas = self._router.replicas_for(self._current_key)
        self._target_index %= len(self._replicas)

    def _send_attempt(self) -> None:
        self._sequence += 1
        request_id = f"{self.address}#{self._sequence}"
        self._outstanding_id = request_id
        target = self._replicas[self._target_index]
        if self._current_kind == "read":
            message = self._adapter.query_message(
                request_id, self._current_op, key=self._current_key
            )
        else:
            message = self._adapter.update_message(
                request_id, self._current_op, key=self._current_key
            )
        if self._history_tap is not None:
            self._open_history_record = self._history_tap.begin(
                None if self._current_key is UNKEYED else self._current_key,
                self._current_kind,
                request_id,
                target,
                self._sim.now,
            )
        self._endpoint.send(target, message)
        self._sim.schedule(self._client_timeout, self._check_timeout, request_id)

    def _check_timeout(self, request_id: str) -> None:
        if self._outstanding_id != request_id:
            return
        # Give up on this attempt; fail over to the next replica.
        self._recorder.record_timeout()
        self._retried = True
        self._open_history_record = None  # the attempt stays open forever
        self._target_index = (self._target_index + 1) % len(self._replicas)
        if self._sim.now >= self._stop_time:
            self._outstanding_id = None
            return
        self._send_attempt()

    def _on_reply(self, src: str, message: Any) -> None:
        parsed = self._adapter.parse_reply(message)
        if parsed is None or parsed.request_id != self._outstanding_id:
            return  # stale reply to a superseded attempt
        if parsed.kind == "wrong_group":
            # The key lives elsewhere (or is mid-migration).  Fold the
            # replica's attested hint and re-issue at the group the
            # router now points to — no timeout wait: the refusal is
            # authoritative, not a silence.
            self._outstanding_id = None
            self._retried = True
            self.reroutes += 1
            self._open_history_record = None  # the attempt stays open
            if self._router is not None:
                if parsed.group:
                    self._router.note(
                        self._current_key, parsed.epoch, parsed.group
                    )
                self._retarget()
            else:
                self._target_index = (self._target_index + 1) % len(
                    self._replicas
                )
            if self._sim.now < self._stop_time:
                self._send_attempt()
            return
        if parsed.kind == "refused":
            # The replica gave up gracefully (no quorum / storage fault).
            # Nothing was performed; fail over like a timeout, but without
            # waiting the full client timeout first.
            self._outstanding_id = None
            self._recorder.record_timeout()
            self._retried = True
            self._open_history_record = None  # the attempt stays open
            self._target_index = (self._target_index + 1) % len(self._replicas)
            if self._sim.now < self._stop_time:
                self._send_attempt()
            return
        self._outstanding_id = None
        self.operations_completed += 1
        if self._history_tap is not None and self._open_history_record is not None:
            self._history_tap.complete(
                self._open_history_record, parsed, self._sim.now
            )
            self._open_history_record = None
        self._recorder.record(
            OpRecord(
                kind=parsed.kind,
                issued_at=self._first_issued_at,
                completed_at=self._sim.now,
                round_trips=parsed.round_trips,
                via=parsed.learned_via,
                client=self.address,
                retried=self._retried,
                key=None if self._current_key is UNKEYED else self._current_key,
            )
        )
        self._issue_new()
