"""Closed-loop clients and per-operation recording."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.net.sim_transport import SimNetwork
from repro.runtime.cluster import ClientEndpoint
from repro.sim.kernel import Simulator
from repro.workload.adapters import CounterAdapter


@dataclass(frozen=True, slots=True)
class OpRecord:
    """One completed operation, as the statistics layer sees it."""

    kind: str  # "update" | "read"
    issued_at: float
    completed_at: float
    round_trips: int
    via: str
    client: str
    retried: bool

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


class Recorder:
    """Accumulates completed operations for one run."""

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self.timeouts = 0

    def record(self, op: OpRecord) -> None:
        self.records.append(op)

    def record_timeout(self) -> None:
        self.timeouts += 1


class ClosedLoopClient:
    """One Basho-Bench-style worker.

    The client is pinned to one replica; each operation is issued as soon
    as the previous one completes.  If no reply arrives within the
    client timeout the operation is *re-issued* under a fresh request id
    to the next replica (round-robin) — stale replies to superseded ids
    are dropped.  The latency of a retried operation spans from the first
    issue, like a real benchmark client's stopwatch.
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        address: str,
        replicas: list[str],
        home_replica: int,
        adapter: CounterAdapter,
        recorder: Recorder,
        rng: random.Random,
        read_ratio: float,
        stop_time: float,
        client_timeout: float,
        increment_amount: int = 1,
    ) -> None:
        self._sim = sim
        self._endpoint = ClientEndpoint(sim, network, address, self._on_reply)
        self.address = address
        self._replicas = replicas
        self._target_index = home_replica % len(replicas)
        self._adapter = adapter
        self._recorder = recorder
        self._rng = rng
        self._read_ratio = read_ratio
        self._stop_time = stop_time
        self._client_timeout = client_timeout
        self._increment_amount = increment_amount

        self._sequence = 0
        self._outstanding_id: str | None = None
        self._current_kind = ""
        self._first_issued_at = 0.0
        self._retried = False
        self.operations_completed = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._issue_new()

    def _issue_new(self) -> None:
        if self._sim.now >= self._stop_time:
            self._outstanding_id = None
            return
        self._current_kind = (
            "read" if self._rng.random() < self._read_ratio else "update"
        )
        self._first_issued_at = self._sim.now
        self._retried = False
        self._send_attempt()

    def _send_attempt(self) -> None:
        self._sequence += 1
        request_id = f"{self.address}#{self._sequence}"
        self._outstanding_id = request_id
        if self._current_kind == "read":
            message = self._adapter.query_message(request_id)
        else:
            message = self._adapter.update_message(
                request_id, self._increment_amount
            )
        target = self._replicas[self._target_index]
        self._endpoint.send(target, message)
        self._sim.schedule(self._client_timeout, self._check_timeout, request_id)

    def _check_timeout(self, request_id: str) -> None:
        if self._outstanding_id != request_id:
            return
        # Give up on this attempt; fail over to the next replica.
        self._recorder.record_timeout()
        self._retried = True
        self._target_index = (self._target_index + 1) % len(self._replicas)
        if self._sim.now >= self._stop_time:
            self._outstanding_id = None
            return
        self._send_attempt()

    def _on_reply(self, src: str, message: Any) -> None:
        parsed = self._adapter.parse_reply(message)
        if parsed is None or parsed.request_id != self._outstanding_id:
            return  # stale reply to a superseded attempt
        self._outstanding_id = None
        self.operations_completed += 1
        self._recorder.record(
            OpRecord(
                kind=parsed.kind,
                issued_at=self._first_issued_at,
                completed_at=self._sim.now,
                round_trips=parsed.round_trips,
                via=parsed.via,
                client=self.address,
                retried=self._retried,
            )
        )
        self._issue_new()
