"""Sharded benchmark workloads: router-aware clients over N groups.

:func:`run_sharded_workload` is the sharded sibling of
:func:`~repro.workload.runner.run_workload`: it builds a
:class:`~repro.sharding.deployment.ShardedSimDeployment` (N independent
CRDT-Paxos groups on one simulator), points closed-loop clients at it
through a :class:`GroupRouter`, and drives the same spec-shaped Zipf
workload — so single-group and sharded runs are directly comparable
(same spec, same seed discipline, same metrics).

Mid-run topology changes ride on the simulator timeline: ``migrations``
schedules individual key moves, ``grow_at``/``grow_group`` adds a group
to the ring under load and rebalances the bounded set of keys the new
group's arcs capture.  Clients keep running throughout; their
wrong-group bounces are counted in :attr:`ShardedRunResult.reroutes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Iterable

from repro.core.config import CrdtPaxosConfig
from repro.errors import ConfigurationError
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.sim_transport import SimNetwork
from repro.sharding.deployment import ShardedSimDeployment
from repro.sharding.routing import RoutingService
from repro.sim.kernel import Simulator
from repro.sim.process import ServiceModel
from repro.workload.adapters import CrdtPaxosOpAdapter
from repro.workload.clients import ClosedLoopClient, HistoryTap, Recorder
from repro.workload.profiles import profile_for
from repro.workload.runner import RunResult
from repro.workload.sampler import ZipfKeySampler
from repro.workload.spec import WorkloadSpec


class GroupRouter:
    """Client-side key→replicas resolution over a shared routing view.

    The contract :class:`~repro.workload.clients.ClosedLoopClient`
    expects: ``replicas_for(key)`` names the replicas of the group the
    key currently routes to, ``note(key, epoch, group)`` folds a
    WrongGroup forwarding hint (newest epoch wins).  Groups added to the
    ring mid-run are attached with :meth:`register`.
    """

    def __init__(
        self, routing: RoutingService, members: dict[str, list[str]]
    ) -> None:
        self._routing = routing
        self._members = {name: list(addrs) for name, addrs in members.items()}

    def replicas_for(self, key: Hashable) -> list[str]:
        return self._members[self._routing.owner(key)]

    def note(self, key: Hashable, epoch: int, group: str) -> None:
        self._routing.note(key, int(epoch), group)

    def register(self, group: str, members: list[str]) -> None:
        self._members[group] = list(members)


@dataclass
class ShardedRunResult(RunResult):
    """A :class:`~repro.workload.runner.RunResult` plus sharding metrics."""

    #: Per-group aggregates (ops, migrations, refusals, residency).
    group_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Client operations re-routed by WrongGroup refusals.
    reroutes: int = 0
    migrations_started: int = 0
    migrations_completed: int = 0
    #: The bounded-movement plan of the mid-run ``grow`` (empty without).
    rebalance_plan: list[tuple[Hashable, str]] = field(default_factory=list)


def run_sharded_workload(
    spec: WorkloadSpec,
    *,
    seed: int = 0,
    groups: tuple[str, ...] = ("g0", "g1"),
    n_replicas: int = 3,
    latency: LatencyModel | None = None,
    fifo_links: bool = True,
    service_model: ServiceModel | None = None,
    crdt_config: CrdtPaxosConfig | None = None,
    record_histories: bool = False,
    vnodes: int = 64,
    migrations: Iterable[tuple[float, Hashable, str]] = (),
    grow_at: float | None = None,
    grow_group: str | None = None,
    grow_replicas: int | None = None,
    spill_store_factory: Any = None,
) -> ShardedRunResult:
    """Run one sharded benchmark configuration end to end.

    ``spec`` must be keyed (``n_keys`` set) — sharding routes by key.
    ``migrations`` schedules ``(time, key, target_group)`` moves on the
    simulator timeline; ``grow_at``/``grow_group`` adds a group under
    load and starts the bounded rebalance over the whole keyspace.
    """
    if not spec.keyed:
        raise ConfigurationError(
            "run_sharded_workload requires a keyed spec (set n_keys); "
            "sharding routes by key"
        )
    profile = profile_for(spec.crdt_type, increment_amount=spec.increment_amount)

    history_tap: HistoryTap | None = None
    if record_histories:
        history_tap = HistoryTap()
        tagger = profile.inclusion_tagger()
        if tagger is not None:
            base = crdt_config or CrdtPaxosConfig()
            crdt_config = replace(base, inclusion_tagger=tagger)

    sim = Simulator(seed=seed)
    network = SimNetwork(
        sim,
        latency=latency or LogNormalLatency(),
        fifo_links=fifo_links,
    )
    deployment = ShardedSimDeployment(
        sim,
        network,
        groups,
        lambda key: profile.initial_state(),
        n_replicas=n_replicas,
        config=crdt_config,
        vnodes=vnodes,
        service_model=service_model,
        spill_store_factory=spill_store_factory,
    )
    router = GroupRouter(
        deployment.routing,
        {
            name: list(cluster.addresses)
            for name, cluster in deployment.clusters.items()
        },
    )

    assert spec.n_keys is not None
    key_sampler = ZipfKeySampler(spec.n_keys, spec.key_skew, seed=seed)
    all_keys = [f"k{i}" for i in range(spec.n_keys)]

    for at, key, target in migrations:
        sim.at(
            at,
            lambda key=key, target=target: deployment.migrate(key, target),
        )

    rebalance_plan: list[tuple[Hashable, str]] = []
    if grow_at is not None:
        if grow_group is None:
            raise ConfigurationError("grow_at requires grow_group")

        def do_grow() -> None:
            plan = deployment.grow(
                grow_group,
                n_replicas=grow_replicas,
                rebalance_keys=all_keys,
            )
            router.register(
                grow_group, list(deployment.clusters[grow_group].addresses)
            )
            rebalance_plan.extend(plan)

        sim.at(grow_at, do_grow)

    recorder = Recorder()
    group_names = list(deployment.clusters)
    clients = []
    for index in range(spec.n_clients):
        home_group = group_names[index % len(group_names)]
        client = ClosedLoopClient(
            sim=sim,
            network=network,
            address=f"c{index}",
            replicas=list(deployment.clusters[home_group].addresses),
            home_replica=index,
            adapter=CrdtPaxosOpAdapter(),
            profile=profile,
            recorder=recorder,
            rng=sim.rng.stream(f"client:{index}"),
            read_ratio=spec.read_ratio,
            stop_time=spec.duration,
            client_timeout=spec.client_timeout,
            key_sampler=key_sampler,
            history_tap=history_tap,
            router=router,
        )
        clients.append(client)
        client.start()

    sim.run(until=spec.duration)

    proposer_stats: dict[str, dict[str, int]] = {}
    keyed_stats: dict[str, dict[str, int]] = {}
    for replica in deployment.all_replicas():
        proposer_stats[replica.node_id] = replica.stats.snapshot()
        keyed_stats[replica.node_id] = {
            "resident": replica.resident_count(),
            "evictions": replica.evictions,
            "rehydrations": replica.rehydrations,
            "wrong_group_refusals": replica.wrong_group_refusals,
            "migrations_out": replica.migrations_out,
            "migrations_in": replica.migrations_in,
        }

    return ShardedRunResult(
        protocol="crdt-paxos-sharded",
        spec=spec,
        records=recorder.records,
        client_timeouts=recorder.timeouts,
        bytes_by_type=dict(network.stats.bytes_by_type),
        count_by_type=dict(network.stats.count_by_type),
        proposer_stats=proposer_stats,
        keyed_stats=keyed_stats,
        histories=history_tap.histories if history_tap is not None else {},
        group_stats=deployment.group_stats(),
        reroutes=sum(client.reroutes for client in clients),
        migrations_started=deployment.coordinator.migrations_started,
        migrations_completed=deployment.coordinator.migrations_completed,
        rebalance_plan=rebalance_plan,
    )
