"""Protocol adapters: one op-level workload, many wire dialects.

The load generator speaks typed CRDT operations
(:class:`~repro.crdt.base.UpdateOp` / :class:`~repro.crdt.base.QueryOp`,
produced by a :class:`~repro.workload.profiles.OpProfile`); an adapter
compiles them into one protocol's client messages and normalizes the
replies.  CRDT Paxos compiles through :mod:`repro.api.codec` — the same
path the :class:`~repro.api.store.Store` frontends use — so the
benchmarks measure exactly what the public API emits, keyed or not.
The log-based RSM baselines (Multi-Paxos, Raft, GLA) only replicate an
integer counter, so their adapter accepts the counter profile's ops and
translates them to the shared RSM command tuples.

The pre-PR-3 counter-only hierarchy (``CounterAdapter`` /
``CrdtPaxosAdapter`` / ``RsmAdapter`` with ``update_message(request_id,
amount)``) survives as deprecation shims at the bottom of this module.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable

from repro.api.codec import (
    UNKEYED,
    Completion,
    compile_query,
    compile_update,
    parse_completion,
)
from repro.baselines.common import (
    RsmQuery,
    RsmQueryDone,
    RsmUpdate,
    RsmUpdateDone,
)
from repro.crdt.base import QueryOp, UpdateOp
from repro.crdt.gcounter import GCounterValue, Increment
from repro.errors import ConfigurationError


class OpAdapter(ABC):
    """Builds requests from typed ops and parses replies for one dialect."""

    @abstractmethod
    def update_message(
        self, request_id: str, op: UpdateOp, key: Hashable = UNKEYED
    ) -> Any:
        """A 'submit update function' request (optionally key-addressed)."""

    @abstractmethod
    def query_message(
        self, request_id: str, op: QueryOp, key: Hashable = UNKEYED
    ) -> Any:
        """A 'submit query function' request (optionally key-addressed)."""

    @abstractmethod
    def parse_reply(self, message: Any) -> Completion | None:
        """Normalize a reply; None if the message is not a completion."""


class CrdtPaxosOpAdapter(OpAdapter):
    """CRDT Paxos dialect: the Store API's compilation path, verbatim."""

    def update_message(
        self, request_id: str, op: UpdateOp, key: Hashable = UNKEYED
    ) -> Any:
        return compile_update(request_id, op, key=key)

    def query_message(
        self, request_id: str, op: QueryOp, key: Hashable = UNKEYED
    ) -> Any:
        return compile_query(request_id, op, key=key)

    def parse_reply(self, message: Any) -> Completion | None:
        return parse_completion(message)


class RsmOpAdapter(OpAdapter):
    """Replicated-integer dialect for Multi-Paxos, Raft and GLA.

    The baselines replicate one integer, so only the counter profile's
    operations translate; anything else is a configuration error (the
    runner rejects such combinations up front).
    """

    def update_message(
        self, request_id: str, op: UpdateOp, key: Hashable = UNKEYED
    ) -> Any:
        if key is not UNKEYED:
            raise ConfigurationError("RSM baselines have no keyed deployment")
        if not isinstance(op, Increment):
            raise ConfigurationError(
                f"RSM baselines only replicate a counter; got {op!r}"
            )
        return RsmUpdate(request_id=request_id, command=("incr", op.amount))

    def query_message(
        self, request_id: str, op: QueryOp, key: Hashable = UNKEYED
    ) -> Any:
        if key is not UNKEYED:
            raise ConfigurationError("RSM baselines have no keyed deployment")
        if not isinstance(op, GCounterValue):
            raise ConfigurationError(
                f"RSM baselines only read a counter value; got {op!r}"
            )
        return RsmQuery(request_id=request_id, command=("read",))

    def parse_reply(self, message: Any) -> Completion | None:
        if isinstance(message, RsmUpdateDone):
            return Completion(request_id=message.request_id, kind="update")
        if isinstance(message, RsmQueryDone):
            return Completion(
                request_id=message.request_id,
                kind="read",
                result=message.result,
                learned_via=message.via,
            )
        return None


# ----------------------------------------------------------------------
# Deprecated counter-only hierarchy (pre-PR-3 entry points)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParsedReply:
    """Normalized completion of the deprecated counter adapters."""

    request_id: str
    kind: str  # "update" | "read"
    result: Any = None
    round_trips: int = 0
    via: str = ""


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name} is deprecated; use {replacement} (repro.workload.adapters)",
        DeprecationWarning,
        stacklevel=3,
    )


class CounterAdapter(ABC):
    """Deprecated: the counter-only adapter contract.

    Superseded by :class:`OpAdapter`, which carries typed CRDT operations
    (any profile, optionally keyed) instead of a hard-coded increment.
    """

    @abstractmethod
    def update_message(self, request_id: str, amount: int) -> Any: ...

    @abstractmethod
    def query_message(self, request_id: str) -> Any: ...

    @abstractmethod
    def parse_reply(self, message: Any) -> ParsedReply | None: ...


class CrdtPaxosAdapter(CounterAdapter):
    """Deprecated shim over :class:`CrdtPaxosOpAdapter` (counter ops)."""

    def __init__(self) -> None:
        _deprecated("CrdtPaxosAdapter", "CrdtPaxosOpAdapter")
        self._inner = CrdtPaxosOpAdapter()

    def update_message(self, request_id: str, amount: int) -> Any:
        return self._inner.update_message(request_id, Increment(amount))

    def query_message(self, request_id: str) -> Any:
        return self._inner.query_message(request_id, GCounterValue())

    def parse_reply(self, message: Any) -> ParsedReply | None:
        completion = self._inner.parse_reply(message)
        if completion is None:
            return None
        return ParsedReply(
            request_id=completion.request_id,
            kind=completion.kind,
            result=completion.result,
            round_trips=completion.round_trips,
            via=completion.learned_via,
        )


class RsmAdapter(CounterAdapter):
    """Deprecated shim over :class:`RsmOpAdapter` (counter ops)."""

    def __init__(self) -> None:
        _deprecated("RsmAdapter", "RsmOpAdapter")
        self._inner = RsmOpAdapter()

    def update_message(self, request_id: str, amount: int) -> Any:
        return self._inner.update_message(request_id, Increment(amount))

    def query_message(self, request_id: str) -> Any:
        return self._inner.query_message(request_id, GCounterValue())

    def parse_reply(self, message: Any) -> ParsedReply | None:
        completion = self._inner.parse_reply(message)
        if completion is None:
            return None
        return ParsedReply(
            request_id=completion.request_id,
            kind=completion.kind,
            result=completion.result,
            round_trips=completion.round_trips,
            via=completion.learned_via,
        )
