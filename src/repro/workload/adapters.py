"""Protocol adapters: one counter workload, many wire dialects.

The paper benchmarks a replicated counter on every system — a G-Counter
under CRDT Paxos, a plain replicated integer under Multi-Paxos/Raft.  An
adapter translates the workload's two abstract operations (increment,
read) into the protocol's client messages and parses the replies, so the
load generator is protocol-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.baselines.common import (
    RsmQuery,
    RsmQueryDone,
    RsmUpdate,
    RsmUpdateDone,
)
from repro.core.messages import ClientQuery, ClientUpdate, QueryDone, UpdateDone
from repro.crdt.gcounter import GCounterValue, Increment


@dataclass(frozen=True)
class ParsedReply:
    """Normalized completion: which request, what kind, diagnostics."""

    request_id: str
    kind: str  # "update" | "read"
    result: Any = None
    round_trips: int = 0
    via: str = ""


class CounterAdapter(ABC):
    """Builds requests and parses replies for one protocol dialect."""

    @abstractmethod
    def update_message(self, request_id: str, amount: int) -> Any:
        """An 'increment the counter by amount' request."""

    @abstractmethod
    def query_message(self, request_id: str) -> Any:
        """A 'read the counter' request."""

    @abstractmethod
    def parse_reply(self, message: Any) -> ParsedReply | None:
        """Normalize a reply; None if the message is not a completion."""


class CrdtPaxosAdapter(CounterAdapter):
    """G-Counter operations over the CRDT Paxos client messages."""

    def update_message(self, request_id: str, amount: int) -> Any:
        return ClientUpdate(request_id=request_id, op=Increment(amount))

    def query_message(self, request_id: str) -> Any:
        return ClientQuery(request_id=request_id, op=GCounterValue())

    def parse_reply(self, message: Any) -> ParsedReply | None:
        if isinstance(message, UpdateDone):
            return ParsedReply(
                request_id=message.request_id, kind="update", round_trips=1
            )
        if isinstance(message, QueryDone):
            return ParsedReply(
                request_id=message.request_id,
                kind="read",
                result=message.result,
                round_trips=message.round_trips,
                via=message.learned_via,
            )
        return None


class RsmAdapter(CounterAdapter):
    """Replicated-integer operations for Multi-Paxos, Raft and GLA."""

    def update_message(self, request_id: str, amount: int) -> Any:
        return RsmUpdate(request_id=request_id, command=("incr", amount))

    def query_message(self, request_id: str) -> Any:
        return RsmQuery(request_id=request_id, command=("read",))

    def parse_reply(self, message: Any) -> ParsedReply | None:
        if isinstance(message, RsmUpdateDone):
            return ParsedReply(request_id=message.request_id, kind="update")
        if isinstance(message, RsmQueryDone):
            return ParsedReply(
                request_id=message.request_id,
                kind="read",
                result=message.result,
                via=message.via,
            )
        return None
