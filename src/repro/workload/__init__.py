"""Workload generation — the Basho Bench role in the paper's evaluation.

Closed-loop clients ("each client independently submits requests to one of
the three replicas and then waits for a reply before submitting the next
request"), read-ratio mixes, warm-up exclusion, and per-request records
feeding the statistics layer.
"""

from repro.workload.adapters import CounterAdapter, CrdtPaxosAdapter, RsmAdapter
from repro.workload.clients import ClosedLoopClient, OpRecord, Recorder
from repro.workload.runner import RunResult, run_workload
from repro.workload.spec import WorkloadSpec

__all__ = [
    "ClosedLoopClient",
    "CounterAdapter",
    "CrdtPaxosAdapter",
    "OpRecord",
    "Recorder",
    "RsmAdapter",
    "RunResult",
    "WorkloadSpec",
    "run_workload",
]
