"""Workload generation — the Basho Bench role in the paper's evaluation.

Closed-loop clients ("each client independently submits requests to one of
the three replicas and then waits for a reply before submitting the next
request"), read-ratio mixes, warm-up exclusion, and per-request records
feeding the statistics layer.

PR 3 rebuilt the layer on the :mod:`repro.api` surface: operations are
typed CRDT ops from a per-type :class:`~repro.workload.profiles.OpProfile`,
compiled per protocol by :class:`~repro.workload.adapters.OpAdapter`, and
optionally addressed per key (Zipf popularity via
:class:`~repro.workload.sampler.ZipfKeySampler`) against the keyed
deployment.  The counter-only adapters remain as deprecation shims.
"""

from repro.workload.adapters import (
    CounterAdapter,
    CrdtPaxosAdapter,
    CrdtPaxosOpAdapter,
    OpAdapter,
    RsmAdapter,
    RsmOpAdapter,
)
from repro.workload.clients import ClosedLoopClient, HistoryTap, OpRecord, Recorder
from repro.workload.profiles import OpProfile, profile_for, profile_names
from repro.workload.runner import (
    PROTOCOLS,
    RunResult,
    canonical_protocol,
    run_workload,
)
from repro.workload.sampler import ZipfKeySampler
from repro.workload.sharded import (
    GroupRouter,
    ShardedRunResult,
    run_sharded_workload,
)
from repro.workload.spec import WorkloadSpec

__all__ = [
    "ClosedLoopClient",
    "CounterAdapter",
    "CrdtPaxosAdapter",
    "CrdtPaxosOpAdapter",
    "GroupRouter",
    "HistoryTap",
    "OpAdapter",
    "OpProfile",
    "OpRecord",
    "PROTOCOLS",
    "Recorder",
    "RsmAdapter",
    "RsmOpAdapter",
    "RunResult",
    "ShardedRunResult",
    "WorkloadSpec",
    "ZipfKeySampler",
    "canonical_protocol",
    "profile_for",
    "profile_names",
    "run_sharded_workload",
    "run_workload",
]
