"""Per-CRDT operation profiles: what a workload's ops look like.

The seed benchmark drove one hard-coded shape — increment a G-Counter,
read its value.  A profile generalizes that: for a named CRDT type it
provides the bottom element, a generator of update operations, the read
operation, and (when the type supports it) the inclusion-tagging hooks
the §3.1 correctness checker needs.  ``WorkloadSpec.crdt_type`` selects
a profile by the registry name; keyed runs use it per key.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.crdt.base import IdentityQuery, QueryOp, StateCRDT, UpdateOp
from repro.crdt.gcounter import GCounter, GCounterValue, Increment
from repro.crdt.gset import Elements, GSet, GSetAdd
from repro.crdt.lwwmap import LWWMap, LWWMapKeys, LWWMapPut
from repro.crdt.lwwregister import LWWRegister, LWWSet, LWWValue
from repro.crdt.orset import ORSet, ORSetAdd, ORSetElements, ORSetRemove
from repro.crdt.pncounter import Decrement, PNCounter, PNCounterValue, PNIncrement
from repro.errors import ConfigurationError

#: (state after update, replica id) → opaque inclusion token, or None.
InclusionTagger = Callable[[StateCRDT, str], Any]


class OpProfile(ABC):
    """One CRDT type's workload dialect."""

    #: Registry name (matches :data:`repro.crdt.registry.crdt_registry`).
    name: str = ""

    @abstractmethod
    def initial_state(self) -> StateCRDT:
        """A fresh bottom element (``s0``)."""

    @abstractmethod
    def update_op(self, rng: random.Random, now: float) -> UpdateOp:
        """The next update operation for one client."""

    @abstractmethod
    def query_op(self) -> QueryOp:
        """The read operation of this profile."""

    def identity_query(self) -> QueryOp:
        """The read used when a run records checkable histories."""
        return IdentityQuery()

    def inclusion_tagger(self) -> InclusionTagger | None:
        """Tag extractor for Update Visibility/Stability, if exact."""
        return None

    def supports_validity_check(self) -> bool:
        """Whether the checker's Validity condition applies (G-Counter)."""
        return False


class CounterProfile(OpProfile):
    """The paper's benchmark workload: a replicated G-Counter."""

    name = "g-counter"

    def __init__(self, increment_amount: int = 1) -> None:
        self._amount = increment_amount

    def initial_state(self) -> StateCRDT:
        return GCounter.initial()

    def update_op(self, rng: random.Random, now: float) -> UpdateOp:
        return Increment(self._amount)

    def query_op(self) -> QueryOp:
        return GCounterValue()

    def inclusion_tagger(self) -> InclusionTagger | None:
        # Exact for G-Counters: the update that raised replica r's slot
        # to k is included in any state whose slot r is >= k.
        return lambda state, replica: (replica, state.slot(replica))

    def supports_validity_check(self) -> bool:
        return True


class PNCounterProfile(OpProfile):
    """Mixed increments and decrements on a PN-Counter."""

    name = "pn-counter"

    def __init__(self, increment_amount: int = 1) -> None:
        self._amount = increment_amount

    def initial_state(self) -> StateCRDT:
        return PNCounter.initial()

    def update_op(self, rng: random.Random, now: float) -> UpdateOp:
        if rng.random() < 0.5:
            return PNIncrement(self._amount)
        return Decrement(self._amount)

    def query_op(self) -> QueryOp:
        return PNCounterValue()


class ORSetProfile(OpProfile):
    """Add-heavy OR-Set churn over a small element universe."""

    name = "or-set"

    def __init__(self, universe: int = 64, remove_ratio: float = 0.25) -> None:
        self._universe = universe
        self._remove_ratio = remove_ratio

    def initial_state(self) -> StateCRDT:
        return ORSet.initial()

    def update_op(self, rng: random.Random, now: float) -> UpdateOp:
        element = f"e{rng.randrange(self._universe)}"
        if rng.random() < self._remove_ratio:
            return ORSetRemove(element)
        return ORSetAdd(element)

    def query_op(self) -> QueryOp:
        return ORSetElements()


class GSetProfile(OpProfile):
    """Grow-only set inserts."""

    name = "g-set"

    def __init__(self, universe: int = 256) -> None:
        self._universe = universe

    def initial_state(self) -> StateCRDT:
        return GSet.initial()

    def update_op(self, rng: random.Random, now: float) -> UpdateOp:
        return GSetAdd(f"e{rng.randrange(self._universe)}")

    def query_op(self) -> QueryOp:
        return Elements()


class LWWRegisterProfile(OpProfile):
    """Last-writer-wins register writes stamped with the driver clock."""

    name = "lww-register"

    def initial_state(self) -> StateCRDT:
        return LWWRegister.initial()

    def update_op(self, rng: random.Random, now: float) -> UpdateOp:
        return LWWSet(rng.randrange(1 << 16), now)

    def query_op(self) -> QueryOp:
        return LWWValue()


class LWWMapProfile(OpProfile):
    """Puts over a small field universe on an LWW-Map."""

    name = "lww-map"

    def __init__(self, fields: int = 16) -> None:
        self._fields = fields

    def initial_state(self) -> StateCRDT:
        return LWWMap.initial()

    def update_op(self, rng: random.Random, now: float) -> UpdateOp:
        return LWWMapPut(f"f{rng.randrange(self._fields)}", rng.randrange(1 << 16), now)

    def query_op(self) -> QueryOp:
        return LWWMapKeys()


#: name → profile factory (kwargs: increment_amount where it applies).
_PROFILES: dict[str, Callable[..., OpProfile]] = {
    CounterProfile.name: CounterProfile,
    PNCounterProfile.name: PNCounterProfile,
    ORSetProfile.name: lambda increment_amount=1: ORSetProfile(),
    GSetProfile.name: lambda increment_amount=1: GSetProfile(),
    LWWRegisterProfile.name: lambda increment_amount=1: LWWRegisterProfile(),
    LWWMapProfile.name: lambda increment_amount=1: LWWMapProfile(),
}


def profile_names() -> list[str]:
    return sorted(_PROFILES)


def profile_for(crdt_type: str, increment_amount: int = 1) -> OpProfile:
    """The :class:`OpProfile` for a registry CRDT name."""
    factory = _PROFILES.get(crdt_type)
    if factory is None:
        raise ConfigurationError(
            f"no workload profile for CRDT type {crdt_type!r}; "
            f"known: {', '.join(profile_names())}"
        )
    return factory(increment_amount=increment_amount)
