"""Key-popularity sampling for keyed workloads.

Real key-value traffic is skewed: a few hot keys absorb most operations
while a long tail stays cold (the YCSB tradition models this with a
Zipf distribution).  :class:`ZipfKeySampler` reproduces that shape —
``skew`` is the Zipf exponent ``s`` (0 = uniform; ~0.99 = YCSB's
default; >1 concentrates harder) over ``n_keys`` ranked keys.

The cumulative weight table is built once and shared by every client;
each draw is one uniform variate plus a binary search, so sampling adds
O(log n) per operation regardless of skew.  Key *identity* is randomized
by rank (a seed-derived shuffle) so the hottest key is not always
``k0`` — popular keys land anywhere in the keyspace, which matters to
eviction tests (hot and cold keys interleave in admission order).
"""

from __future__ import annotations

import random
from bisect import bisect_left


class ZipfKeySampler:
    """Draws key names ``k<i>`` with Zipf(``skew``) popularity."""

    def __init__(self, n_keys: int, skew: float = 0.0, seed: int = 0) -> None:
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1, got {n_keys}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.n_keys = n_keys
        self.skew = skew
        self._keys = [f"k{i}" for i in range(n_keys)]
        # Rank → key shuffle, deterministic in the seed.
        random.Random(seed ^ 0x5EED).shuffle(self._keys)
        if skew == 0.0:
            self._cumulative = None
        else:
            weights = [1.0 / (rank**skew) for rank in range(1, n_keys + 1)]
            total = 0.0
            cumulative = []
            for weight in weights:
                total += weight
                cumulative.append(total)
            self._total = total
            self._cumulative = cumulative

    def sample(self, rng: random.Random) -> str:
        """One key, drawn with this sampler's popularity distribution."""
        if self._cumulative is None:
            return self._keys[rng.randrange(self.n_keys)]
        # rng.random() < 1, but the product can round up to exactly
        # self._total — and with pathological weight/total magnitudes FP
        # rounding could nudge it past the last cumulative bucket, where
        # bisect would index one past the end.  Clamp to the last rank.
        point = rng.random() * self._total
        index = bisect_left(self._cumulative, point)
        if index >= self.n_keys:
            index = self.n_keys - 1
        return self._keys[index]

    def hottest(self, count: int = 1) -> list[str]:
        """The ``count`` most popular keys (diagnostics, warm-up)."""
        return self._keys[:count]
