"""Experiment runner: build a cluster, drive clients, collect results.

``run_workload`` is the single entry point used by every benchmark figure
and by integration tests.  It is deterministic for a given seed — the
simulator, the network, the protocols' randomized timers and the clients'
operation mixes all draw from seed-derived streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.baselines.common import IntCounter
from repro.baselines.gla import GlaConfig, GlaNode
from repro.baselines.multipaxos import MultiPaxosConfig, MultiPaxosNode
from repro.baselines.raft import RaftConfig, RaftNode
from repro.core import CrdtPaxosConfig, CrdtPaxosReplica
from repro.crdt.gcounter import GCounter
from repro.errors import ConfigurationError
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.sim_transport import SimNetwork
from repro.runtime.cluster import SimCluster
from repro.runtime.failures import FailureSchedule
from repro.sim.kernel import Simulator
from repro.sim.process import ServiceModel
from repro.stats.summary import MedianCI, median_with_ci, percentile
from repro.stats.timeseries import WindowedPercentile, WindowedThroughput
from repro.workload.adapters import CounterAdapter, CrdtPaxosAdapter, RsmAdapter
from repro.workload.clients import ClosedLoopClient, OpRecord, Recorder
from repro.workload.spec import WorkloadSpec

#: Protocol names understood by :func:`run_workload`.
PROTOCOLS = (
    "crdt-paxos",
    "crdt-paxos-batching",
    "multi-paxos",
    "raft",
    "gla",
)


@dataclass
class RunResult:
    """Everything a figure needs from one run."""

    protocol: str
    spec: WorkloadSpec
    records: list[OpRecord]
    client_timeouts: int
    bytes_by_type: dict[str, int]
    count_by_type: dict[str, int]
    proposer_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _steady(self, kind: str | None = None) -> list[OpRecord]:
        return [
            record
            for record in self.records
            if record.completed_at >= self.spec.warmup
            and (kind is None or record.kind == kind)
        ]

    def throughput(self, window: float = 1.0) -> MedianCI:
        """Median requests/second over fixed windows (paper methodology:
        1 s aggregation).  For runs whose steady-state interval is shorter
        than a few windows the window shrinks so at least four fit —
        otherwise short CI runs would report nothing.
        """
        steady_span = self.spec.duration - self.spec.warmup
        effective = max(min(window, steady_span / 4), 1e-3)
        windows = WindowedThroughput(window=effective)
        for record in self._steady():
            windows.add(record.completed_at)
        rates = windows.rates(start=self.spec.warmup, end=self.spec.duration)
        if not rates:
            return MedianCI(0.0, 0.0, 0.0, 0.99)
        return median_with_ci(rates, confidence=0.99)

    def latency_percentile(self, kind: str, p: float = 95.0) -> float | None:
        """The p-th percentile latency of steady-state ``kind`` requests."""
        latencies = [record.latency for record in self._steady(kind)]
        if not latencies:
            return None
        return percentile(latencies, p)

    def latency_timeline(
        self, kind: str, p: float = 95.0, window: float = 10.0
    ) -> list[tuple[float, float | None]]:
        """Windowed latency percentile over elapsed time (Figure 4)."""
        series = WindowedPercentile(window=window)
        for record in self.records:
            if record.kind == kind:
                series.add(record.completed_at, record.latency)
        return series.series(p, start=0.0, end=self.spec.duration)

    def read_round_trips(self) -> list[int]:
        """Round trips of every steady-state read (Figure 3's sample)."""
        return [record.round_trips for record in self._steady("read")]

    def round_trip_cdf(self, max_rt: int = 15) -> list[tuple[int, float]]:
        """Cumulative percentage of reads completing within k round trips."""
        round_trips = self.read_round_trips()
        if not round_trips:
            return []
        total = len(round_trips)
        cdf = []
        for k in range(0, max_rt + 1):
            within = sum(1 for rt in round_trips if rt <= k)
            cdf.append((k, 100.0 * within / total))
        return cdf

    def completed_ops(self) -> int:
        return len(self._steady())


# ----------------------------------------------------------------------
def _build_protocol(
    protocol: str,
    sim: Simulator,
    crdt_config: CrdtPaxosConfig | None,
    raft_config: RaftConfig | None,
    multipaxos_config: MultiPaxosConfig | None,
    gla_config: GlaConfig | None,
) -> tuple[Any, CounterAdapter]:
    """Return (replica factory, client adapter) for a protocol name."""
    if protocol == "crdt-paxos":
        config = crdt_config or CrdtPaxosConfig()

        def factory(node_id: str, peers: list[str]) -> CrdtPaxosReplica:
            return CrdtPaxosReplica(node_id, peers, GCounter.initial(), config)

        return factory, CrdtPaxosAdapter()

    if protocol == "crdt-paxos-batching":
        config = crdt_config or CrdtPaxosConfig()
        config.batching = True

        def factory(node_id: str, peers: list[str]) -> CrdtPaxosReplica:
            return CrdtPaxosReplica(node_id, peers, GCounter.initial(), config)

        return factory, CrdtPaxosAdapter()

    if protocol == "raft":
        config = raft_config or RaftConfig()

        def factory(node_id: str, peers: list[str]) -> RaftNode:
            return RaftNode(
                node_id,
                peers,
                IntCounter(),
                config,
                rng=sim.rng.stream(f"raft:{node_id}"),
            )

        return factory, RsmAdapter()

    if protocol == "multi-paxos":
        config = multipaxos_config or MultiPaxosConfig()

        def factory(node_id: str, peers: list[str]) -> MultiPaxosNode:
            return MultiPaxosNode(
                node_id,
                peers,
                IntCounter(),
                config,
                rng=sim.rng.stream(f"multipaxos:{node_id}"),
            )

        return factory, RsmAdapter()

    if protocol == "gla":
        config = gla_config or GlaConfig()

        def factory(node_id: str, peers: list[str]) -> GlaNode:
            return GlaNode(node_id, peers, IntCounter, config)

        return factory, RsmAdapter()

    raise ConfigurationError(
        f"unknown protocol {protocol!r}; known: {', '.join(PROTOCOLS)}"
    )


def run_workload(
    protocol: str,
    spec: WorkloadSpec,
    *,
    seed: int = 0,
    n_replicas: int = 3,
    latency: LatencyModel | None = None,
    faults: FaultPlan | None = None,
    service_model: ServiceModel | None = None,
    failure_schedule: FailureSchedule | None = None,
    fifo_links: bool = True,
    crdt_config: CrdtPaxosConfig | None = None,
    raft_config: RaftConfig | None = None,
    multipaxos_config: MultiPaxosConfig | None = None,
    gla_config: GlaConfig | None = None,
) -> RunResult:
    """Run one benchmark configuration end to end and return its result.

    ``fifo_links`` defaults to True: the paper's test bed spoke Erlang
    distribution over TCP, which never reorders one link's messages.
    Protocol-correctness tests use reordering networks instead.
    """
    sim = Simulator(seed=seed)
    network = SimNetwork(
        sim,
        latency=latency or LogNormalLatency(),
        faults=faults,
        fifo_links=fifo_links,
    )
    factory, adapter = _build_protocol(
        protocol, sim, crdt_config, raft_config, multipaxos_config, gla_config
    )
    cluster = SimCluster(
        sim, network, factory, n_replicas=n_replicas, service_model=service_model
    )
    if failure_schedule is not None:
        failure_schedule.install(cluster)

    recorder = Recorder()
    clients = []
    for index in range(spec.n_clients):
        client = ClosedLoopClient(
            sim=sim,
            network=network,
            address=f"c{index}",
            replicas=list(cluster.addresses),
            home_replica=index,
            adapter=adapter,
            recorder=recorder,
            rng=sim.rng.stream(f"client:{index}"),
            read_ratio=spec.read_ratio,
            stop_time=spec.duration,
            client_timeout=spec.client_timeout,
            increment_amount=spec.increment_amount,
        )
        clients.append(client)
        client.start()

    sim.run(until=spec.duration)

    proposer_stats: dict[str, dict[str, int]] = {}
    for address in cluster.addresses:
        node = cluster.node(address)
        if isinstance(node, CrdtPaxosReplica):
            proposer_stats[address] = node.proposer.stats.snapshot()

    return RunResult(
        protocol=protocol,
        spec=spec,
        records=recorder.records,
        client_timeouts=recorder.timeouts,
        bytes_by_type=dict(network.stats.bytes_by_type),
        count_by_type=dict(network.stats.count_by_type),
        proposer_stats=proposer_stats,
    )
