"""Experiment runner: build a cluster, drive clients, collect results.

``run_workload`` is the single entry point used by every benchmark figure
and by integration tests.  It is deterministic for a given seed — the
simulator, the network, the protocols' randomized timers and the clients'
operation mixes all draw from seed-derived streams.

PR 3 made the runner speak the same surface as :mod:`repro.api`: the
workload is expressed as typed CRDT operations (selected by
``spec.crdt_type``), compiled per protocol by the op adapters, and — when
``spec.n_keys`` is set — addressed to the fine-granular keyed deployment
(:class:`~repro.core.keyspace.KeyedCrdtReplica`) with Zipf key
popularity, so the e2e metrics cover the shape the keyed store
optimizes.  ``record_histories=True`` additionally captures per-key
operation histories ready for the lattice-linearizability checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Hashable

from repro.baselines.common import IntCounter
from repro.baselines.gla import GlaConfig, GlaNode
from repro.baselines.multipaxos import MultiPaxosConfig, MultiPaxosNode
from repro.baselines.raft import RaftConfig, RaftNode
from repro.checker.history import History
from repro.core import CrdtPaxosConfig, CrdtPaxosReplica
from repro.core.keyspace import KeyedCrdtReplica
from repro.errors import ConfigurationError
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.sim_transport import SimNetwork
from repro.runtime.cluster import SimCluster
from repro.runtime.failures import FailureSchedule
from repro.sim.kernel import Simulator
from repro.sim.process import ServiceModel
from repro.stats.summary import MedianCI, median_with_ci, percentile
from repro.stats.timeseries import WindowedPercentile, WindowedThroughput
from repro.workload.adapters import CrdtPaxosOpAdapter, OpAdapter, RsmOpAdapter
from repro.workload.clients import ClosedLoopClient, HistoryTap, OpRecord, Recorder
from repro.workload.profiles import OpProfile, profile_for
from repro.workload.sampler import ZipfKeySampler
from repro.workload.spec import WorkloadSpec

#: Canonical protocol names understood by :func:`run_workload`.
PROTOCOLS = (
    "crdt-paxos",
    "crdt-paxos-batching",
    "multi-paxos",
    "raft",
    "gla",
)

#: Spelling variants accepted and normalized (``crdtpaxos``,
#: ``crdt_paxos``, ... → ``crdt-paxos``): every canonical name with its
#: dashes dropped or swapped for underscores.
_ALIASES = {
    canonical.replace("-", separator): canonical
    for canonical in PROTOCOLS
    for separator in ("", "_")
}


def canonical_protocol(protocol: str) -> str:
    """Normalize a protocol spelling to its canonical dashed name."""
    name = protocol.strip().lower()
    return _ALIASES.get(name, name)


@dataclass
class RunResult:
    """Everything a figure needs from one run."""

    protocol: str
    spec: WorkloadSpec
    records: list[OpRecord]
    client_timeouts: int
    bytes_by_type: dict[str, int]
    count_by_type: dict[str, int]
    proposer_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Keyed runs only: per-replica eviction/rehydration/residency counts.
    keyed_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    #: ``record_histories=True`` runs only: checkable operation histories,
    #: one per key (keyed runs) or a single entry keyed ``None``.
    histories: dict[Hashable, History] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _steady(self, kind: str | None = None) -> list[OpRecord]:
        return [
            record
            for record in self.records
            if record.completed_at >= self.spec.warmup
            and (kind is None or record.kind == kind)
        ]

    def throughput(self, window: float = 1.0) -> MedianCI:
        """Median requests/second over fixed windows (paper methodology:
        1 s aggregation).  For runs whose steady-state interval is shorter
        than a few windows the window shrinks so at least four fit —
        otherwise short CI runs would report nothing.
        """
        steady_span = self.spec.duration - self.spec.warmup
        effective = max(min(window, steady_span / 4), 1e-3)
        windows = WindowedThroughput(window=effective)
        for record in self._steady():
            windows.add(record.completed_at)
        rates = windows.rates(start=self.spec.warmup, end=self.spec.duration)
        if not rates:
            return MedianCI(0.0, 0.0, 0.0, 0.99)
        return median_with_ci(rates, confidence=0.99)

    def latency_percentile(self, kind: str, p: float = 95.0) -> float | None:
        """The p-th percentile latency of steady-state ``kind`` requests."""
        latencies = [record.latency for record in self._steady(kind)]
        if not latencies:
            return None
        return percentile(latencies, p)

    def latency_timeline(
        self, kind: str, p: float = 95.0, window: float = 10.0
    ) -> list[tuple[float, float | None]]:
        """Windowed latency percentile over elapsed time (Figure 4)."""
        series = WindowedPercentile(window=window)
        for record in self.records:
            if record.kind == kind:
                series.add(record.completed_at, record.latency)
        return series.series(p, start=0.0, end=self.spec.duration)

    def read_round_trips(self) -> list[int]:
        """Round trips of every steady-state read (Figure 3's sample)."""
        return [record.round_trips for record in self._steady("read")]

    def round_trip_cdf(self, max_rt: int = 15) -> list[tuple[int, float]]:
        """Cumulative percentage of reads completing within k round trips."""
        round_trips = self.read_round_trips()
        if not round_trips:
            return []
        total = len(round_trips)
        cdf = []
        for k in range(0, max_rt + 1):
            within = sum(1 for rt in round_trips if rt <= k)
            cdf.append((k, 100.0 * within / total))
        return cdf

    def completed_ops(self) -> int:
        return len(self._steady())

    def distinct_keys_touched(self) -> int:
        """How many distinct keys completed at least one operation."""
        return len({r.key for r in self.records if r.key is not None})


# ----------------------------------------------------------------------
def _build_protocol(
    protocol: str,
    spec: WorkloadSpec,
    profile: OpProfile,
    sim: Simulator,
    crdt_config: CrdtPaxosConfig | None,
    raft_config: RaftConfig | None,
    multipaxos_config: MultiPaxosConfig | None,
    gla_config: GlaConfig | None,
    spill_store_factory: Any = None,
) -> tuple[Any, OpAdapter]:
    """Return (replica factory, client adapter) for a protocol name."""
    if protocol in ("crdt-paxos", "crdt-paxos-batching"):
        config = crdt_config or CrdtPaxosConfig()
        if protocol == "crdt-paxos-batching":
            config.batching = True

        if spec.keyed:

            def factory(node_id: str, peers: list[str]) -> KeyedCrdtReplica:
                spill_store = (
                    spill_store_factory(node_id)
                    if spill_store_factory is not None
                    else None
                )
                return KeyedCrdtReplica(
                    node_id,
                    peers,
                    lambda key: profile.initial_state(),
                    config,
                    spill_store=spill_store,
                )

        else:

            def factory(node_id: str, peers: list[str]) -> CrdtPaxosReplica:
                return CrdtPaxosReplica(
                    node_id, peers, profile.initial_state(), config
                )

        return factory, CrdtPaxosOpAdapter()

    # The log-based baselines replicate one integer counter and have no
    # keyed deployment; reject anything the dialect cannot express.
    if protocol in ("raft", "multi-paxos", "gla"):
        if spec.keyed:
            raise ConfigurationError(
                f"protocol {protocol!r} has no keyed deployment; "
                "n_keys requires crdt-paxos"
            )
        if spec.crdt_type != "g-counter":
            raise ConfigurationError(
                f"protocol {protocol!r} only replicates a counter; "
                f"crdt_type {spec.crdt_type!r} requires crdt-paxos"
            )

    if protocol == "raft":
        config = raft_config or RaftConfig()

        def factory(node_id: str, peers: list[str]) -> RaftNode:
            return RaftNode(
                node_id,
                peers,
                IntCounter(),
                config,
                rng=sim.rng.stream(f"raft:{node_id}"),
            )

        return factory, RsmOpAdapter()

    if protocol == "multi-paxos":
        config = multipaxos_config or MultiPaxosConfig()

        def factory(node_id: str, peers: list[str]) -> MultiPaxosNode:
            return MultiPaxosNode(
                node_id,
                peers,
                IntCounter(),
                config,
                rng=sim.rng.stream(f"multipaxos:{node_id}"),
            )

        return factory, RsmOpAdapter()

    if protocol == "gla":
        config = gla_config or GlaConfig()

        def factory(node_id: str, peers: list[str]) -> GlaNode:
            return GlaNode(node_id, peers, IntCounter, config)

        return factory, RsmOpAdapter()

    raise ConfigurationError(
        f"unknown protocol {protocol!r}; known: {', '.join(PROTOCOLS)}"
    )


def run_workload(
    protocol: str,
    spec: WorkloadSpec,
    *,
    seed: int = 0,
    n_replicas: int = 3,
    latency: LatencyModel | None = None,
    faults: FaultPlan | None = None,
    service_model: ServiceModel | None = None,
    failure_schedule: FailureSchedule | None = None,
    fifo_links: bool = True,
    record_histories: bool = False,
    crdt_config: CrdtPaxosConfig | None = None,
    raft_config: RaftConfig | None = None,
    multipaxos_config: MultiPaxosConfig | None = None,
    gla_config: GlaConfig | None = None,
    spill_store_factory: Any = None,
) -> RunResult:
    """Run one benchmark configuration end to end and return its result.

    ``fifo_links`` defaults to True: the paper's test bed spoke Erlang
    distribution over TCP, which never reorders one link's messages.
    Protocol-correctness tests use reordering networks instead.

    ``record_histories`` (CRDT Paxos only) switches reads to the
    profile's identity query, installs the profile's inclusion tagger,
    and returns per-key :class:`~repro.checker.history.History` objects
    in ``RunResult.histories`` — ready for
    :func:`repro.checker.lattice_linearizability.check_all`.

    ``spill_store_factory`` (keyed CRDT Paxos only): ``node_id →
    SpillStore`` builder attaching a frozen-record spill tier to every
    replica, enabling ``crdt_config.keyed_max_frozen`` — the deployment
    shape where RAM holds only the hot keys and the rest of the keyspace
    lives in storage.
    """
    protocol = canonical_protocol(protocol)
    profile = profile_for(spec.crdt_type, increment_amount=spec.increment_amount)

    if spill_store_factory is not None and (
        protocol not in ("crdt-paxos", "crdt-paxos-batching") or not spec.keyed
    ):
        raise ConfigurationError(
            "spill_store_factory requires a keyed CRDT Paxos deployment "
            "(crdt-paxos protocol with spec.n_keys set); it would be "
            "silently ignored here"
        )

    history_tap: HistoryTap | None = None
    if record_histories:
        if protocol not in ("crdt-paxos", "crdt-paxos-batching"):
            raise ConfigurationError(
                "record_histories requires a CRDT Paxos protocol"
            )
        history_tap = HistoryTap()
        tagger = profile.inclusion_tagger()
        if tagger is not None:
            base = crdt_config or CrdtPaxosConfig()
            crdt_config = replace(base, inclusion_tagger=tagger)

    sim = Simulator(seed=seed)
    network = SimNetwork(
        sim,
        latency=latency or LogNormalLatency(),
        faults=faults,
        fifo_links=fifo_links,
    )
    factory, adapter = _build_protocol(
        protocol,
        spec,
        profile,
        sim,
        crdt_config,
        raft_config,
        multipaxos_config,
        gla_config,
        spill_store_factory,
    )
    cluster = SimCluster(
        sim, network, factory, n_replicas=n_replicas, service_model=service_model
    )
    if failure_schedule is not None:
        failure_schedule.install(cluster)

    key_sampler = None
    if spec.keyed:
        assert spec.n_keys is not None
        key_sampler = ZipfKeySampler(spec.n_keys, spec.key_skew, seed=seed)

    recorder = Recorder()
    clients = []
    for index in range(spec.n_clients):
        client = ClosedLoopClient(
            sim=sim,
            network=network,
            address=f"c{index}",
            replicas=list(cluster.addresses),
            home_replica=index,
            adapter=adapter,
            profile=profile,
            recorder=recorder,
            rng=sim.rng.stream(f"client:{index}"),
            read_ratio=spec.read_ratio,
            stop_time=spec.duration,
            client_timeout=spec.client_timeout,
            key_sampler=key_sampler,
            history_tap=history_tap,
        )
        clients.append(client)
        client.start()

    sim.run(until=spec.duration)

    proposer_stats: dict[str, dict[str, int]] = {}
    keyed_stats: dict[str, dict[str, int]] = {}
    for address in cluster.addresses:
        node = cluster.node(address)
        if isinstance(node, CrdtPaxosReplica):
            proposer_stats[address] = node.proposer.stats.snapshot()
        elif isinstance(node, KeyedCrdtReplica):
            proposer_stats[address] = node.stats.snapshot()
            keyed_stats[address] = {
                "resident": node.resident_count(),
                "frozen": node.frozen_count(),
                "spilled": node.spilled_count(),
                "evictions": node.evictions,
                "rehydrations": node.rehydrations,
                "spills": node.spills,
                "spill_loads": node.spill_loads,
                "keyed_batches_packed": node.acceptor_stats.keyed_batches_packed,
                "keyed_batches_unpacked": node.acceptor_stats.keyed_batches_unpacked,
                "keyed_batch_messages": node.acceptor_stats.keyed_batch_messages,
                "keyed_batch_bytes_saved": node.acceptor_stats.keyed_batch_bytes_saved,
                "keyed_envelopes_superseded": (
                    node.acceptor_stats.keyed_envelopes_superseded
                ),
                "write_through_persists": node.write_through_persists,
                "group_commits": node.group_commits,
                "rejoin_refreshes": node.rejoin_refreshes,
                "evict_scan_ops": node.evict_scan_ops,
            }

    return RunResult(
        protocol=protocol,
        spec=spec,
        records=recorder.records,
        client_timeouts=recorder.timeouts,
        bytes_by_type=dict(network.stats.bytes_by_type),
        count_by_type=dict(network.stats.count_by_type),
        proposer_stats=proposer_stats,
        keyed_stats=keyed_stats,
        histories=history_tap.histories if history_tap is not None else {},
    )
