"""Workload specification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark run's client behaviour.

    ``read_ratio`` is the probability that a request is a read (the
    paper's mixes: 1.0, 0.95, 0.9, 0.5, 0.0).  ``warmup`` seconds at the
    start are excluded from all statistics — it covers leader election in
    the baselines so steady-state numbers are compared.  ``client_timeout``
    is the client-side give-up-and-fail-over interval: on expiry the
    client re-issues the operation to the next replica (how Basho Bench
    behaves when a node dies mid-run).

    ``crdt_type`` selects the operation profile
    (:mod:`repro.workload.profiles`) — which CRDT the run replicates and
    what its updates/reads look like.  The default reproduces the
    paper's replicated G-Counter; the log-based RSM baselines only
    implement that one.

    The optional **keyed profile** switches CRDT Paxos runs to the
    fine-granular deployment (§1: one protocol instance per key inside a
    key-value store).  ``n_keys`` sizes the keyspace; every operation
    draws its key from a Zipf(``key_skew``) popularity distribution
    (0 = uniform, ~1 = classic hot-key skew).  Eviction pressure comes
    from the protocol config (``keyed_max_resident`` /
    ``keyed_idle_evict_s``), not the spec.
    """

    n_clients: int
    read_ratio: float
    duration: float
    warmup: float = 0.5
    client_timeout: float = 0.5
    increment_amount: int = 1
    crdt_type: str = "g-counter"
    n_keys: int | None = None
    key_skew: float = 0.0

    @property
    def keyed(self) -> bool:
        return self.n_keys is not None

    def __post_init__(self) -> None:
        if self.n_clients <= 0:
            raise ConfigurationError("n_clients must be positive")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigurationError("read_ratio must be within [0, 1]")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ConfigurationError("warmup must be within [0, duration)")
        if self.client_timeout <= 0:
            raise ConfigurationError("client_timeout must be positive")
        if self.n_keys is not None and self.n_keys < 1:
            raise ConfigurationError("n_keys must be >= 1 or None")
        if self.key_skew < 0:
            raise ConfigurationError("key_skew must be non-negative")
        if self.key_skew > 0 and self.n_keys is None:
            raise ConfigurationError("key_skew requires n_keys")
