"""Framed TCP transport: sans-io nodes on real sockets.

The production face of the wire stack.  One :class:`FrameStream` wraps a
TCP connection and moves length-prefixed :mod:`repro.wire` frames; a
:class:`StreamNodeServer` hosts any sans-io protocol node (a
:class:`~repro.core.keyspace.KeyedCrdtReplica`, a baseline RSM node, …)
behind a listening socket, with peer-to-peer traffic over lazily dialed
outbound connections and timers on the event loop; a
:class:`StreamClient` is the awaitable request/reply side.

Every frame on the wire is a ``(sender id, message)`` tuple — the
destination is implied by the connection — so a server learns the return
route for a client the moment its first frame arrives.  Frames are
written back-to-back on one connection per destination, preserving TCP's
FIFO property per link; the protocol itself never relies on it.

The multi-process bench rig (``python -m repro.bench net``) spawns one
OS process per :class:`StreamNodeServer` and measures ops/s and
bytes/op through this module, so its numbers are hardware numbers:
real serialization, real syscalls, real scheduling.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable

from repro.errors import RequestTimeout, SerializationError, TransportError
from repro.net.control import NetStats, NetStatsReply
from repro.net.node import Effects
from repro.wire import FrameDecoder, encode_frame

#: Socket read granularity; large enough that a coalesced KeyedBatch
#: usually arrives in one read.
_READ_CHUNK = 1 << 16


def uvloop_installed() -> bool:
    """Install uvloop's event-loop policy when available.

    Returns whether uvloop is active.  The container may not ship it;
    everything works identically (slower) on the stock loop, so this is
    a best-effort accelerator, never a dependency.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    uvloop.install()
    return True


class FrameStream:
    """One framed TCP connection (reader/writer pair).

    ``recv`` returns decoded messages one at a time and ``None`` at EOF;
    a malformed frame raises :class:`SerializationError` and the only
    safe reaction is closing the connection (frame sync is lost).
    """

    __slots__ = (
        "_reader",
        "_writer",
        "_decoder",
        "_inbox",
        "bytes_sent",
        "bytes_received",
        "frames_sent",
    )

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._inbox: deque[Any] = deque()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0

    @property
    def frames_received(self) -> int:
        return self._decoder.frames_decoded

    async def send(self, message: Any) -> int:
        """Write one frame; returns its length in bytes."""
        frame = encode_frame(message)
        self._writer.write(frame)
        self.bytes_sent += len(frame)
        self.frames_sent += 1
        await self._writer.drain()
        return len(frame)

    async def recv(self) -> Any | None:
        """Next decoded message, or ``None`` once the peer closed."""
        while not self._inbox:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                if self._decoder.pending_bytes:
                    raise SerializationError(
                        "connection closed mid-frame "
                        f"({self._decoder.pending_bytes} bytes pending)"
                    )
                return None
            self.bytes_received += len(chunk)
            self._inbox.extend(self._decoder.feed(chunk))
        return self._inbox.popleft()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # already torn down by the peer


async def open_stream(host: str, port: int) -> FrameStream:
    reader, writer = await asyncio.open_connection(host, port)
    return FrameStream(reader, writer)


class StreamNodeServer:
    """Host one sans-io protocol node behind a listening socket.

    ``peers`` maps peer node ids to ``(host, port)``; protocol sends to
    those ids dial (and cache) outbound connections, sends to any other
    id are routed back over the inbound connection that id last spoke
    on, and sends to ids the server has never heard of are dropped —
    exactly the unreliable-channel model the protocol assumes.
    """

    def __init__(
        self,
        node: Any,
        host: str,
        port: int,
        peers: dict[str, tuple[str, int]] | None = None,
    ) -> None:
        self.node = node
        self.host = host
        self.port = port
        self.peers = dict(peers or {})
        self._server: asyncio.Server | None = None
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._routes: dict[str, FrameStream] = {}
        self._inbound: set[FrameStream] = set()
        self._outbound: dict[str, FrameStream] = {}
        self._outboxes: dict[str, asyncio.Queue] = {}
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self._bytes_received_closed = 0

    @property
    def bytes_received(self) -> int:
        """Total socket bytes read, live connections included."""
        return self._bytes_received_closed + sum(
            stream.bytes_received for stream in self._inbound
        )

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_start(loop.time()))

    async def close(self) -> None:
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        for stream in list(self._outbound.values()):
            await stream.close()
        self._outbound.clear()
        # Closing inbound streams lets their handler coroutines exit by
        # the EOF path instead of dying cancelled at loop teardown.
        for stream in list(self._inbound):
            await stream.close()

    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = FrameStream(reader, writer)
        self._inbound.add(stream)
        loop = asyncio.get_running_loop()
        try:
            while True:
                message = await stream.recv()
                if message is None:
                    return
                src, payload = message
                self.messages_received += 1
                self._routes[src] = stream
                if isinstance(payload, NetStats):
                    # Transport-level control: answered here, the node
                    # never sees it.
                    self._send(
                        src,
                        NetStatsReply(
                            request_id=payload.request_id,
                            node=self.node.node_id,
                            messages_sent=self.messages_sent,
                            bytes_sent=self.bytes_sent,
                            messages_received=self.messages_received,
                            bytes_received=self.bytes_received,
                        ),
                    )
                    continue
                self._apply(self.node.on_message(src, payload, loop.time()))
        except (SerializationError, ConnectionError, OSError):
            return  # framing lost or peer gone: drop the connection
        except asyncio.CancelledError:
            return  # event loop shutting down: the connection dies with it
        finally:
            self._inbound.discard(stream)
            self._bytes_received_closed += stream.bytes_received
            for src, route in list(self._routes.items()):
                if route is stream:
                    del self._routes[src]
            await stream.close()

    # ------------------------------------------------------------------
    def _fire_timer(self, key: str) -> None:
        if self._closed:
            return
        self._timers.pop(key, None)
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_timer(key, loop.time()))

    def _apply(self, effects: Effects) -> None:
        loop = asyncio.get_running_loop()
        for key in effects.cancels:
            handle = self._timers.pop(key, None)
            if handle is not None:
                handle.cancel()
        for key, delay in effects.timers:
            existing = self._timers.pop(key, None)
            if existing is not None:
                existing.cancel()
            self._timers[key] = loop.call_later(delay, self._fire_timer, key)
        for dst, message in effects.sends:
            self._send(dst, message)

    def _send(self, dst: str, message: Any) -> None:
        outbox = self._outboxes.get(dst)
        if outbox is None:
            outbox = self._outboxes[dst] = asyncio.Queue()
            task = asyncio.get_running_loop().create_task(
                self._drain_outbox(dst, outbox)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        outbox.put_nowait(message)

    async def _drain_outbox(self, dst: str, outbox: asyncio.Queue) -> None:
        while not self._closed:
            message = await outbox.get()
            try:
                stream = await self._stream_to(dst)
            except (ConnectionError, OSError):
                continue  # peer unreachable: the message is lost, as allowed
            if stream is None:
                continue  # no route: drop
            try:
                sent = await stream.send((self.node.node_id, message))
            except (ConnectionError, OSError):
                self._outbound.pop(dst, None)
                continue
            self.messages_sent += 1
            self.bytes_sent += sent

    async def _stream_to(self, dst: str) -> FrameStream | None:
        placement = self.peers.get(dst)
        if placement is None:
            return self._routes.get(dst)
        stream = self._outbound.get(dst)
        if stream is None:
            stream = await open_stream(*placement)
            self._outbound[dst] = stream
        return stream


class StreamClient:
    """Awaitable request/reply client over framed sockets.

    Mirrors :class:`~repro.runtime.asyncio_cluster.AsyncioClient` —
    replies correlate by ``request_id`` — but across process boundaries.
    """

    def __init__(
        self, client_id: str, replicas: dict[str, tuple[str, int]]
    ) -> None:
        self.client_id = client_id
        self._replicas = dict(replicas)
        self._streams: dict[str, FrameStream] = {}
        self._pumps: dict[str, asyncio.Task] = {}
        self._pending: dict[str, asyncio.Future] = {}
        #: Unsolicited replies (late duplicates, refusals after timeout).
        self.stray_replies = 0

    async def _stream_to(self, replica: str) -> FrameStream:
        stream = self._streams.get(replica)
        if stream is None:
            placement = self._replicas.get(replica)
            if placement is None:
                raise TransportError(f"unknown replica {replica!r}")
            stream = await open_stream(*placement)
            self._streams[replica] = stream
            self._pumps[replica] = asyncio.get_running_loop().create_task(
                self._pump(replica, stream)
            )
        return stream

    async def _pump(self, replica: str, stream: FrameStream) -> None:
        try:
            while True:
                message = await stream.recv()
                if message is None:
                    return
                _, payload = message
                future = self._pending.pop(
                    getattr(payload, "request_id", None), None
                )
                if future is not None and not future.done():
                    future.set_result(payload)
                else:
                    self.stray_replies += 1
        except (SerializationError, ConnectionError, OSError):
            return
        finally:
            if self._streams.get(replica) is stream:
                del self._streams[replica]

    async def request(
        self, replica: str, message: Any, timeout: float = 5.0
    ) -> Any:
        """Send ``message`` (which must carry a ``request_id``) to
        ``replica`` and await the correlated reply."""
        request_id = message.request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        stream = await self._stream_to(replica)
        await stream.send((self.client_id, message))
        try:
            return await asyncio.wait_for(future, timeout=timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise RequestTimeout(
                f"request {request_id} to {replica} timed out after {timeout}s"
            ) from None

    async def transport_stats(
        self, replica: str, timeout: float = 5.0
    ) -> NetStatsReply:
        """Fetch a replica process's socket-level traffic counters."""
        return await self.request(
            replica, NetStats(request_id=f"stats:{self.client_id}:{replica}"),
            timeout=timeout,
        )

    async def close(self) -> None:
        for task in self._pumps.values():
            task.cancel()
        for stream in list(self._streams.values()):
            await stream.close()
        self._streams.clear()
        self._pumps.clear()
