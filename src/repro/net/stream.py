"""Framed TCP transport: sans-io nodes on real sockets, supervised.

The production face of the wire stack.  One :class:`FrameStream` wraps a
TCP connection and moves length-prefixed :mod:`repro.wire` frames; a
:class:`StreamNodeServer` hosts any sans-io protocol node (a
:class:`~repro.core.keyspace.KeyedCrdtReplica`, a baseline RSM node, …)
behind a listening socket, with peer-to-peer traffic over supervised
outbound connections and timers on the event loop; a
:class:`StreamClient` is the awaitable request/reply side.

Every frame on the wire is a ``(sender id, message)`` tuple — the
destination is implied by the connection — so a server learns the return
route for a client the moment its first frame arrives.  Frames are
written back-to-back on one connection per destination, preserving TCP's
FIFO property per link; the protocol itself never relies on it.

The multi-process bench rig (``python -m repro.bench net``) spawns one
OS process per :class:`StreamNodeServer` and measures ops/s and
bytes/op through this module, so its numbers are hardware numbers:
real serialization, real syscalls, real scheduling.

Fault model
===========

The transport assumes the protocol it carries tolerates message loss,
duplication and reordering (it does — §2.1), so supervision never
buffers unboundedly or retries a *message*; it supervises *links*:

* **What is retried.**  Outbound peer connections.  A failed dial or a
  send error evicts the cached stream and schedules a redial under
  jittered exponential backoff (:class:`SupervisionPolicy`:
  ``redial_base`` doubling per consecutive failure up to ``redial_cap``,
  ±``redial_jitter`` deterministic per-link jitter so a restarted
  replica is not hit by a synchronized dial storm).  The first
  successful reconnect resets the backoff (counted in
  ``backoff_resets``).  Return routes to clients are never redialed —
  the server cannot dial a client; a dead client route drops traffic.

* **What is shed.**  Messages.  Each destination has a bounded outbox
  (``outbox_limit``); when a peer is dead-but-addressed long enough to
  fill it, the *oldest* message is shed (counted in ``outbox_shed``) —
  loss is allowed by the model, unbounded memory growth against a dead
  peer is not.  A message whose dial or send fails is likewise dropped,
  never requeued: the protocol's own re-drive timers are the retry
  mechanism with end-to-end semantics.

* **Frame desync.**  A malformed frame poisons that connection's
  decoder — frame boundaries are lost, so the only safe reaction is
  teardown.  The receiver counts ``frame_decode_errors``, drops the
  connection, and the sender's next write fails, evicting its cached
  stream and entering the redial path.  Recovery is a fresh connection
  with a fresh decoder; the poison never outlives the socket.

* **Strict wire mode.**  Sends encode with ``strict=True`` by default:
  an unregistered type raises :class:`SerializationError` *at the
  sender* instead of silently crossing the wire as a pickle blob.

All of it is observable: :class:`~repro.net.control.NetStats` returns
the fault counters next to the byte counters, and the process-level
nemesis (:mod:`repro.nemesis.process`) asserts campaigns actually
exercised them.
"""

from __future__ import annotations

import asyncio
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import RequestTimeout, SerializationError, TransportError
from repro.net.control import (
    GarbageInject,
    GarbageInjectDone,
    NetStats,
    NetStatsReply,
    Sever,
    SeverDone,
)
from repro.net.node import Effects
from repro.wire import FrameDecoder, encode_frame

#: Socket read granularity; large enough that a coalesced KeyedBatch
#: usually arrives in one read.
_READ_CHUNK = 1 << 16

#: Default garbage for :class:`GarbageInject` with an empty payload —
#: long enough to complete a bogus "frame" (bad magic) at the receiver.
_GARBAGE = b"XX\x00\x08not-a-frame\xde\xad\xbe\xef"


def uvloop_installed() -> bool:
    """Install uvloop's event-loop policy when available.

    Returns whether uvloop is active.  The container may not ship it;
    everything works identically (slower) on the stock loop, so this is
    a best-effort accelerator, never a dependency.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    uvloop.install()
    return True


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for the per-peer link supervisor.

    The backoff discipline mirrors the proposer's re-drive backoff
    (``backoff_multiplier`` / ``backoff_cap`` / ``backoff_jitter`` on
    :class:`~repro.core.config.CrdtPaxosConfig`): exponential growth per
    consecutive failure, a hard cap, deterministic jitter to
    de-synchronize a fleet, and a reset on first success.
    """

    #: Delay before the first redial after a failure (seconds).
    redial_base: float = 0.05
    #: Multiplier applied per additional consecutive failure.
    redial_multiplier: float = 2.0
    #: Ceiling on the redial delay (seconds).
    redial_cap: float = 2.0
    #: ± fraction of deterministic per-(link, attempt) jitter.
    redial_jitter: float = 0.1
    #: Maximum queued messages per destination; beyond it the oldest
    #: message is shed (drop-oldest: fresher protocol state wins).
    outbox_limit: int = 512


class FrameStream:
    """One framed TCP connection (reader/writer pair).

    ``recv`` returns decoded messages one at a time and ``None`` at EOF;
    a malformed frame raises :class:`SerializationError` and the only
    safe reaction is closing the connection (frame sync is lost).

    ``strict`` makes every ``send`` refuse unregistered types at the
    encoder (see :func:`repro.wire.encode_frame`).
    """

    __slots__ = (
        "_reader",
        "_writer",
        "_decoder",
        "_inbox",
        "strict",
        "bytes_sent",
        "bytes_received",
        "frames_sent",
    )

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        strict: bool = False,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._inbox: deque[Any] = deque()
        self.strict = strict
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0

    @property
    def frames_received(self) -> int:
        return self._decoder.frames_decoded

    async def send(self, message: Any) -> int:
        """Write one frame; returns its length in bytes."""
        frame = encode_frame(message, strict=self.strict)
        self._writer.write(frame)
        self.bytes_sent += len(frame)
        self.frames_sent += 1
        await self._writer.drain()
        return len(frame)

    async def send_raw(self, data: bytes) -> int:
        """Write raw bytes with no framing — the nemesis' garbage path."""
        self._writer.write(data)
        self.bytes_sent += len(data)
        await self._writer.drain()
        return len(data)

    async def recv(self) -> Any | None:
        """Next decoded message, or ``None`` once the peer closed."""
        while not self._inbox:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                if self._decoder.pending_bytes:
                    raise SerializationError(
                        "connection closed mid-frame "
                        f"({self._decoder.pending_bytes} bytes pending)"
                    )
                return None
            self.bytes_received += len(chunk)
            self._inbox.extend(self._decoder.feed(chunk))
        return self._inbox.popleft()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # already torn down by the peer


async def open_stream(host: str, port: int, strict: bool = False) -> FrameStream:
    reader, writer = await asyncio.open_connection(host, port)
    return FrameStream(reader, writer, strict=strict)


class _PeerLink:
    """Supervision state for one outbound peer link."""

    __slots__ = ("failures", "not_before", "connected_once")

    def __init__(self) -> None:
        #: Consecutive dial/send failures since the last success.
        self.failures = 0
        #: Loop time before which no redial may be attempted.
        self.not_before = 0.0
        #: Whether this link ever carried a successful dial.
        self.connected_once = False


class _Outbox:
    """Bounded per-destination message queue with drop-oldest shedding."""

    __slots__ = ("_items", "_wakeup", "limit", "shed")

    def __init__(self, limit: int) -> None:
        self._items: deque[Any] = deque()
        self._wakeup = asyncio.Event()
        self.limit = limit
        self.shed = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, message: Any) -> None:
        if len(self._items) >= self.limit:
            self._items.popleft()
            self.shed += 1
        self._items.append(message)
        self._wakeup.set()

    async def get(self) -> Any:
        while not self._items:
            self._wakeup.clear()
            await self._wakeup.wait()
        return self._items.popleft()


class StreamNodeServer:
    """Host one sans-io protocol node behind a listening socket.

    ``peers`` maps peer node ids to ``(host, port)``; protocol sends to
    those ids dial (and cache) supervised outbound connections, sends to
    any other id are routed back over the inbound connection that id
    last spoke on, and sends to ids the server has never heard of are
    dropped — exactly the unreliable-channel model the protocol assumes.

    See the module docstring's *Fault model* section for what the
    supervisor retries, what it sheds, and the backoff envelope
    (:class:`SupervisionPolicy`).
    """

    def __init__(
        self,
        node: Any,
        host: str,
        port: int,
        peers: dict[str, tuple[str, int]] | None = None,
        policy: SupervisionPolicy | None = None,
        strict: bool = True,
    ) -> None:
        self.node = node
        self.host = host
        self.port = port
        self.peers = dict(peers or {})
        self.policy = policy or SupervisionPolicy()
        self.strict = strict
        self._server: asyncio.Server | None = None
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._routes: dict[str, FrameStream] = {}
        self._inbound: set[FrameStream] = set()
        self._outbound: dict[str, FrameStream] = {}
        self._links: dict[str, _PeerLink] = {}
        self._outboxes: dict[str, _Outbox] = {}
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self._bytes_received_closed = 0
        #: Transport fault counters (surfaced via NetStats).
        self.frame_decode_errors = 0
        self.connections_dropped = 0
        self.redials = 0
        self.backoff_resets = 0
        #: Strict-mode sends refused at the encoder (message dropped,
        #: drain loop survives) — a code bug, loudly countable.
        self.encode_errors = 0

    @property
    def bytes_received(self) -> int:
        """Total socket bytes read, live connections included."""
        return self._bytes_received_closed + sum(
            stream.bytes_received for stream in self._inbound
        )

    @property
    def outbox_shed(self) -> int:
        """Messages shed by the bounded per-destination outboxes."""
        return sum(outbox.shed for outbox in self._outboxes.values())

    def link_health(self) -> dict[str, dict[str, float | bool | int]]:
        """Supervision snapshot per peer: connection and backoff state."""
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:
            now = 0.0
        health: dict[str, dict[str, float | bool | int]] = {}
        for dst in self.peers:
            link = self._links.get(dst)
            health[dst] = {
                "connected": dst in self._outbound,
                "failures": link.failures if link else 0,
                "next_dial_in": (
                    max(0.0, link.not_before - now) if link else 0.0
                ),
                "queued": len(self._outboxes.get(dst) or ()),
            }
        return health

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_start(loop.time()))

    async def close(self) -> None:
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        for stream in list(self._outbound.values()):
            await stream.close()
        self._outbound.clear()
        # Closing inbound streams lets their handler coroutines exit by
        # the EOF path instead of dying cancelled at loop teardown.
        for stream in list(self._inbound):
            await stream.close()

    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = FrameStream(reader, writer, strict=self.strict)
        self._inbound.add(stream)
        loop = asyncio.get_running_loop()
        try:
            while True:
                message = await stream.recv()
                if message is None:
                    return
                src, payload = message
                self.messages_received += 1
                self._routes[src] = stream
                if self._handle_control(src, payload, stream):
                    continue
                self._apply(self.node.on_message(src, payload, loop.time()))
        except SerializationError:
            # Framing desynced (garbage bytes, torn frame): the decoder
            # is poisoned, so recovery is teardown — the peer redials.
            self.frame_decode_errors += 1
            self.connections_dropped += 1
            return
        except (ConnectionError, OSError):
            self.connections_dropped += 1
            return  # peer gone: drop the connection
        except asyncio.CancelledError:
            return  # event loop shutting down: the connection dies with it
        finally:
            self._inbound.discard(stream)
            self._bytes_received_closed += stream.bytes_received
            for src, route in list(self._routes.items()):
                if route is stream:
                    del self._routes[src]
            await stream.close()

    def _handle_control(
        self, src: str, payload: Any, stream: FrameStream
    ) -> bool:
        """Transport-level control traffic: answered here, the node never
        sees it.  Returns whether ``payload`` was consumed."""
        if isinstance(payload, NetStats):
            self._send(
                src,
                NetStatsReply(
                    request_id=payload.request_id,
                    node=self.node.node_id,
                    messages_sent=self.messages_sent,
                    bytes_sent=self.bytes_sent,
                    messages_received=self.messages_received,
                    bytes_received=self.bytes_received,
                    frame_decode_errors=self.frame_decode_errors,
                    connections_dropped=self.connections_dropped,
                    redials=self.redials,
                    backoff_resets=self.backoff_resets,
                    outbox_shed=self.outbox_shed,
                ),
            )
            return True
        if isinstance(payload, Sever):
            self._spawn(self._sever(src, payload, keep=stream))
            return True
        if isinstance(payload, GarbageInject):
            self._spawn(self._inject_garbage(src, payload))
            return True
        return False

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _sever(
        self, src: str, request: Sever, keep: FrameStream
    ) -> None:
        """Tear down every established connection except ``keep``."""
        dropped = 0
        for dst, stream in list(self._outbound.items()):
            self._outbound.pop(dst, None)
            dropped += 1
            await stream.close()
        for stream in list(self._inbound):
            if stream is keep:
                continue
            dropped += 1
            await stream.close()  # its serve loop exits via EOF
        self.connections_dropped += dropped
        self._send(src, SeverDone(request.request_id, self.node.node_id, dropped))

    async def _inject_garbage(self, src: str, request: GarbageInject) -> None:
        """Write non-frame bytes into the live outbound stream to
        ``request.dst``, desyncing the peer's decoder."""
        injected = False
        try:
            stream = await self._stream_to(request.dst)
            if stream is not None:
                await stream.send_raw(request.payload or _GARBAGE)
                injected = True
        except (ConnectionError, OSError):
            pass  # no live stream to poison: report injected=False
        self._send(
            src,
            GarbageInjectDone(request.request_id, self.node.node_id, injected),
        )

    # ------------------------------------------------------------------
    def _fire_timer(self, key: str) -> None:
        if self._closed:
            return
        self._timers.pop(key, None)
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_timer(key, loop.time()))

    def apply_effects(self, effects: Effects) -> None:
        """Execute a node-produced effects bundle on this server's loop.

        Public so out-of-band node entry points (e.g.
        :meth:`~repro.core.keyspace.KeyedCrdtReplica.rejoin` after a
        recovery) can be driven through the same send/timer machinery as
        ``on_message``/``on_timer`` results.
        """
        self._apply(effects)

    def _apply(self, effects: Effects) -> None:
        loop = asyncio.get_running_loop()
        for key in effects.cancels:
            handle = self._timers.pop(key, None)
            if handle is not None:
                handle.cancel()
        for key, delay in effects.timers:
            existing = self._timers.pop(key, None)
            if existing is not None:
                existing.cancel()
            self._timers[key] = loop.call_later(delay, self._fire_timer, key)
        for dst, message in effects.sends:
            self._send(dst, message)

    def _send(self, dst: str, message: Any) -> None:
        outbox = self._outboxes.get(dst)
        if outbox is None:
            outbox = self._outboxes[dst] = _Outbox(self.policy.outbox_limit)
            self._spawn(self._drain_outbox(dst, outbox))
        outbox.put(message)

    async def _drain_outbox(self, dst: str, outbox: _Outbox) -> None:
        while not self._closed:
            message = await outbox.get()
            try:
                stream = await self._stream_to(dst)
            except (ConnectionError, OSError):
                continue  # peer unreachable: the message is lost, as allowed
            if stream is None:
                continue  # no route: drop
            try:
                sent = await stream.send((self.node.node_id, message))
            except (ConnectionError, OSError):
                self._evict_stream(dst, stream)
                continue  # message lost; the link enters the redial path
            except SerializationError:
                self.encode_errors += 1
                continue  # strict mode refused the message at the encoder
            self.messages_sent += 1
            self.bytes_sent += sent

    def _evict_stream(self, dst: str, stream: FrameStream) -> None:
        """Drop a dead cached outbound stream and arm the redial backoff."""
        if self._outbound.get(dst) is stream:
            del self._outbound[dst]
            self.connections_dropped += 1
        link = self._links.setdefault(dst, _PeerLink())
        link.failures += 1
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:
            now = 0.0
        link.not_before = now + self._backoff_delay(dst, link.failures)

    def _backoff_delay(self, dst: str, failures: int) -> float:
        policy = self.policy
        delay = policy.redial_base * (
            policy.redial_multiplier ** max(0, failures - 1)
        )
        delay = min(delay, policy.redial_cap)
        if policy.redial_jitter:
            # Deterministic per (link, attempt): reproducible in tests,
            # de-synchronized across a fleet hammering one restarted
            # peer — same discipline as the proposer's re-drive jitter.
            seed = f"{self.node.node_id}->{dst}#{failures}".encode()
            unit = zlib.crc32(seed) / 0xFFFFFFFF
            delay *= 1.0 + policy.redial_jitter * (2.0 * unit - 1.0)
        return delay

    async def _stream_to(self, dst: str) -> FrameStream | None:
        placement = self.peers.get(dst)
        if placement is None:
            return self._routes.get(dst)
        stream = self._outbound.get(dst)
        if stream is not None:
            return stream
        return await self._dial(dst, placement)

    async def _dial(self, dst: str, placement: tuple[str, int]) -> FrameStream:
        """Dial ``dst`` under the link's backoff window.

        Raises ``ConnectionError``/``OSError`` on failure after arming
        the next backoff window; the caller drops the message (loss is
        allowed) and the *next* send waits out the window first.
        """
        link = self._links.setdefault(dst, _PeerLink())
        loop = asyncio.get_running_loop()
        wait = link.not_before - loop.time()
        if wait > 0:
            await asyncio.sleep(wait)
        if self._closed:
            raise ConnectionError("server closed")
        if link.connected_once or link.failures:
            self.redials += 1
        try:
            stream = await open_stream(*placement, strict=self.strict)
        except (ConnectionError, OSError):
            link.failures += 1
            link.not_before = loop.time() + self._backoff_delay(
                dst, link.failures
            )
            raise
        if link.failures:
            self.backoff_resets += 1
            link.failures = 0
            link.not_before = 0.0
        link.connected_once = True
        self._outbound[dst] = stream
        return stream


class StreamClient:
    """Awaitable request/reply client over framed sockets.

    Mirrors :class:`~repro.runtime.asyncio_cluster.AsyncioClient` —
    replies correlate by ``request_id`` — but across process boundaries.

    Failure handling is fail-fast: when a replica's receive pump dies
    (connection reset, EOF, frame desync) every pending future homed on
    that replica is rejected immediately with a typed
    :class:`~repro.errors.TransportError` instead of waiting out its
    request timeout, and :meth:`request_any` fails over across replicas,
    sticking with the last one that answered.
    """

    def __init__(
        self,
        client_id: str,
        replicas: dict[str, tuple[str, int]],
        strict: bool = True,
        preferred: str | None = None,
    ) -> None:
        self.client_id = client_id
        self._replicas = dict(replicas)
        self._order = sorted(replicas)
        self.strict = strict
        self._streams: dict[str, FrameStream] = {}
        self._pumps: dict[str, asyncio.Task] = {}
        self._pending: dict[str, asyncio.Future] = {}
        #: request_id → replica the request is homed on, so a pump death
        #: can reject exactly its own pending futures.
        self._owner: dict[str, str] = {}
        #: Preferred replica index for :meth:`request_any` (sticky:
        #: advanced on fail-over, so a dead home is not re-tried first
        #: on every call).
        self._preferred = self._order.index(preferred) if preferred else 0
        #: Unsolicited replies (late duplicates, refusals after timeout).
        self.stray_replies = 0
        #: Fail-over attempts made by :meth:`request_any`.
        self.failovers = 0

    async def _stream_to(self, replica: str) -> FrameStream:
        stream = self._streams.get(replica)
        if stream is None:
            placement = self._replicas.get(replica)
            if placement is None:
                raise TransportError(f"unknown replica {replica!r}")
            try:
                stream = await open_stream(*placement, strict=self.strict)
            except (ConnectionError, OSError) as exc:
                raise TransportError(
                    f"dial to replica {replica!r} at {placement} failed: {exc}"
                ) from exc
            self._streams[replica] = stream
            self._pumps[replica] = asyncio.get_running_loop().create_task(
                self._pump(replica, stream)
            )
        return stream

    async def _pump(self, replica: str, stream: FrameStream) -> None:
        reason = "connection closed by peer"
        try:
            while True:
                message = await stream.recv()
                if message is None:
                    return
                _, payload = message
                future = self._pending.pop(
                    getattr(payload, "request_id", None), None
                )
                if future is not None and not future.done():
                    self._owner.pop(getattr(payload, "request_id", None), None)
                    future.set_result(payload)
                else:
                    self.stray_replies += 1
        except SerializationError as exc:
            reason = f"frame desync: {exc}"
            return
        except (ConnectionError, OSError) as exc:
            reason = f"connection error: {exc}"
            return
        finally:
            if self._streams.get(replica) is stream:
                del self._streams[replica]
                self._pumps.pop(replica, None)
            self._fail_pending(replica, reason)

    def _fail_pending(self, replica: str, reason: str) -> None:
        """Reject every pending future homed on ``replica`` right now —
        a dead pump can never deliver their replies, so making callers
        wait out their full request timeout is pure dead air."""
        for request_id, owner in list(self._owner.items()):
            if owner != replica:
                continue
            del self._owner[request_id]
            future = self._pending.pop(request_id, None)
            if future is not None and not future.done():
                future.set_exception(
                    TransportError(
                        f"request {request_id} failed: pump for replica "
                        f"{replica!r} died ({reason})"
                    )
                )

    def _discard(self, request_id: str) -> None:
        self._pending.pop(request_id, None)
        self._owner.pop(request_id, None)

    async def request(
        self, replica: str, message: Any, timeout: float = 5.0
    ) -> Any:
        """Send ``message`` (which must carry a ``request_id``) to
        ``replica`` and await the correlated reply.

        Raises :class:`~repro.errors.TransportError` as soon as the
        connection is known dead (dial refused, send failed, pump died)
        and :class:`~repro.errors.RequestTimeout` only when the replica
        stayed reachable but silent for ``timeout`` seconds.
        """
        request_id = message.request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._owner[request_id] = replica
        try:
            stream = await self._stream_to(replica)
            await stream.send((self.client_id, message))
        except (ConnectionError, OSError) as exc:
            self._discard(request_id)
            if self._streams.get(replica) is stream:
                del self._streams[replica]
            raise TransportError(
                f"send to replica {replica!r} failed: {exc}"
            ) from exc
        except Exception:
            self._discard(request_id)
            raise
        try:
            return await asyncio.wait_for(future, timeout=timeout)
        except asyncio.TimeoutError:
            raise RequestTimeout(
                f"request {request_id} to {replica} timed out after {timeout}s"
            ) from None
        finally:
            self._discard(request_id)

    async def request_any(self, message: Any, timeout: float = 5.0) -> Any:
        """Send ``message`` to the preferred replica, failing over to the
        others on transport failure or timeout.

        ``timeout`` applies per attempt.  On success the answering
        replica becomes preferred (sticky fail-over: a killed home is
        not knocked on first for every subsequent request).  Raises the
        last error once every replica has been tried.
        """
        count = len(self._order)
        if count == 0:
            raise TransportError("no replicas configured")
        last: Exception | None = None
        for attempt in range(count):
            index = (self._preferred + attempt) % count
            replica = self._order[index]
            if attempt:
                self.failovers += 1
            try:
                reply = await self.request(replica, message, timeout=timeout)
            except (TransportError, RequestTimeout) as exc:
                last = exc
                continue
            self._preferred = index
            return reply
        assert last is not None
        raise last

    async def transport_stats(
        self, replica: str, timeout: float = 5.0
    ) -> NetStatsReply:
        """Fetch a replica process's socket-level traffic counters."""
        return await self.request(
            replica, NetStats(request_id=f"stats:{self.client_id}:{replica}"),
            timeout=timeout,
        )

    async def sever(self, replica: str, timeout: float = 5.0) -> SeverDone:
        """Nemesis: make ``replica`` drop every established connection."""
        return await self.request(
            replica, Sever(request_id=f"sever:{self.client_id}:{replica}"),
            timeout=timeout,
        )

    async def inject_garbage(
        self, replica: str, dst: str, payload: bytes = b"", timeout: float = 5.0
    ) -> GarbageInjectDone:
        """Nemesis: make ``replica`` write garbage into its live stream
        to ``dst``, poisoning the peer's frame decoder."""
        return await self.request(
            replica,
            GarbageInject(
                request_id=f"garbage:{self.client_id}:{replica}:{dst}",
                dst=dst,
                payload=payload,
            ),
            timeout=timeout,
        )

    async def close(self) -> None:
        for task in self._pumps.values():
            task.cancel()
        for stream in list(self._streams.values()):
            await stream.close()
        self._streams.clear()
        self._pumps.clear()
