"""Out-of-band control messages for real-network deployments.

These never touch the consensus protocol: the multi-process bench rig
uses them to collect transport counters from replica processes over the
same wire connection the workload rides, so byte accounting reflects
what each OS process actually wrote to its sockets; the process-level
nemesis (:mod:`repro.nemesis.process`) uses them to sever established
TCP connections and inject garbage bytes into live streams from outside
the replica process, exercising the transport's supervision layer
without cooperation from the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class NetStats:
    """Driver → replica process: report your transport counters."""

    request_id: str

    def wire_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class NetStatsReply:
    """Replica process → driver: cumulative socket-level counters.

    The trailing block are the transport *fault* counters the nemesis
    campaigns assert exercised-ness against (and operators watch for
    link health): decode errors observed on inbound streams, connections
    dropped (decode poison, peer resets, evicted dead outbound streams,
    severs), redial attempts against peers, backoff windows closed by a
    successful reconnect, and outbox messages shed by the bounded
    per-destination queues.
    """

    request_id: str
    node: str
    messages_sent: int
    bytes_sent: int
    messages_received: int
    bytes_received: int
    frame_decode_errors: int = 0
    connections_dropped: int = 0
    redials: int = 0
    backoff_resets: int = 0
    outbox_shed: int = 0

    def wire_size(self) -> int:
        return 8 + 72

    @property
    def is_refusal(self) -> bool:  # mirrors the client-message protocol
        return False


@dataclass(frozen=True, slots=True)
class Sever:
    """Nemesis → replica process: drop every established connection now.

    Models an external connection reset (conntrack flush, middlebox
    reboot, NAT timeout): all inbound and cached outbound streams are
    torn down except the connection this request arrived on (so the
    acknowledgement has a route back).  The transport must recover by
    redialing under its backoff policy; the protocol must not notice
    beyond re-driven messages.
    """

    request_id: str

    def wire_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class SeverDone:
    """Replica process → nemesis: connections actually torn down."""

    request_id: str
    node: str
    connections_dropped: int

    def wire_size(self) -> int:
        return 8 + 16

    @property
    def is_refusal(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class GarbageInject:
    """Nemesis → replica process: write garbage into a live stream.

    The replica writes ``payload`` (or a built-in non-frame byte string
    when empty) raw into its outbound stream to ``dst``, desyncing the
    peer's frame decoder mid-connection — the bit-rot/misbehaving-peer
    case.  The peer must tear the poisoned connection down and the
    sender must redial; one injected frame must never wedge the link
    permanently or corrupt protocol state (the CRC/magic checks reject
    it before any decoding).
    """

    request_id: str
    dst: str
    payload: bytes = b""

    def wire_size(self) -> int:
        return 8 + 8 + len(self.payload)


@dataclass(frozen=True, slots=True)
class GarbageInjectDone:
    """Replica process → nemesis: whether the garbage hit a live stream."""

    request_id: str
    node: str
    injected: bool

    def wire_size(self) -> int:
        return 8 + 9

    @property
    def is_refusal(self) -> bool:
        return False
