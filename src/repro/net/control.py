"""Out-of-band control messages for real-network deployments.

These never touch the consensus protocol: the multi-process bench rig
uses them to collect transport counters from replica processes over the
same wire connection the workload rides, so byte accounting reflects
what each OS process actually wrote to its sockets.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class NetStats:
    """Driver → replica process: report your transport counters."""

    request_id: str

    def wire_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class NetStatsReply:
    """Replica process → driver: cumulative socket-level counters."""

    request_id: str
    node: str
    messages_sent: int
    bytes_sent: int
    messages_received: int
    bytes_received: int

    def wire_size(self) -> int:
        return 8 + 32

    @property
    def is_refusal(self) -> bool:  # mirrors the client-message protocol
        return False
