"""The simulated network fabric.

Routes envelopes between registered endpoints through a latency model and a
fault plan.  Reordering needs no special machinery: two messages on the same
link sample independent delays, so a later send regularly overtakes an
earlier one — exactly the asynchrony the protocols must survive.

The fabric also keeps per-message-type traffic statistics which the
message-overhead experiment (Falerio GLA vs. CRDT Paxos) reads out.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Protocol

from repro.errors import TransportError
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.message import Envelope
from repro.sim.kernel import Simulator


class Endpoint(Protocol):
    """Anything that can receive an envelope at its arrival instant."""

    def deliver(self, envelope: Envelope) -> None: ...


def _load_wire() -> None:
    """Import :mod:`repro.wire`, installing exact codec-backed sizing.

    Deferred to network construction: the wire tag registry imports the
    protocol modules, so pulling it in while ``repro.crdt`` is still
    initializing (this module is reachable from ``crdt.*`` via
    ``net.message``) would be a circular import.  By the time anyone
    builds a network, every protocol module is fully loaded.
    """
    import repro.wire  # noqa: F401


class CallbackEndpoint:
    """Adapter turning a plain callable into an :class:`Endpoint`."""

    def __init__(self, callback: Callable[[Envelope], None]) -> None:
        self._callback = callback

    def deliver(self, envelope: Envelope) -> None:
        self._callback(envelope)


class NetworkStats:
    """Aggregate traffic counters, broken down by payload type name."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0
        self.count_by_type: dict[str, int] = defaultdict(int)
        self.bytes_by_type: dict[str, int] = defaultdict(int)

    def record_send(self, type_name: str, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.count_by_type[type_name] += 1
        self.bytes_by_type[type_name] += size

    def mean_bytes(self, type_name: str) -> float:
        count = self.count_by_type.get(type_name, 0)
        if count == 0:
            return 0.0
        return self.bytes_by_type[type_name] / count


class SimNetwork:
    """Unreliable, reordering message fabric over the simulator.

    ``send`` is fire-and-forget, mirroring the system model: the sender
    learns nothing about loss or delay.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        faults: FaultPlan | None = None,
        fifo_links: bool = False,
    ) -> None:
        _load_wire()
        self._sim = sim
        self._latency = latency or LogNormalLatency()
        self._rng = sim.rng.stream("network")
        self.faults = faults or FaultPlan()
        self.stats = NetworkStats()
        self._endpoints: dict[str, Endpoint] = {}
        #: With ``fifo_links`` messages on one (src, dst) link never
        #: overtake each other — the TCP behaviour of the paper's Erlang
        #: test bed.  Off by default: the *protocols* must tolerate
        #: reordering (§2.1), and the correctness tests rely on it.
        self.fifo_links = fifo_links
        self._link_clock: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def register(self, address: str, endpoint: Endpoint) -> None:
        if address in self._endpoints:
            raise TransportError(f"address already registered: {address}")
        self._endpoints[address] = endpoint

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def addresses(self) -> list[str]:
        return sorted(self._endpoints)

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any) -> None:
        """Route one message; may drop, duplicate, and delays arbitrarily."""
        envelope = Envelope(src=src, dst=dst, payload=payload)
        size = envelope.size_bytes()
        self.stats.record_send(type(payload).__name__, size)

        if dst not in self._endpoints:
            # Sends to crashed-and-removed or unknown endpoints vanish,
            # which the unreliable-channel model already permits.
            self.stats.messages_dropped += 1
            return
        if self.faults.should_drop(self._rng, src, dst, self._sim.now):
            self.stats.messages_dropped += 1
            return

        copies = 2 if self.faults.should_duplicate(self._rng, src, dst, self._sim.now) else 1
        if copies == 2:
            self.stats.messages_duplicated += 1
        spike = self.faults.extra_delay(self._rng, src, dst, self._sim.now)
        for _ in range(copies):
            delay = self._latency.sample(self._rng, size) + spike
            arrival = self._sim.now + delay
            if self.fifo_links:
                link = (src, dst)
                arrival = max(arrival, self._link_clock.get(link, 0.0) + 1e-9)
                self._link_clock[link] = arrival
            self._sim.schedule(arrival - self._sim.now, self._deliver, envelope)

    def _deliver(self, envelope: Envelope) -> None:
        endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        endpoint.deliver(envelope)
