"""Asyncio message transport for wall-clock deployments.

The same sans-io protocol nodes that run under the deterministic simulator
run unchanged on asyncio: this module provides the in-process network
(``loop.call_later`` stands in for link latency) and the node runtime that
executes :class:`~repro.net.node.Effects` with real timers.

Registered protocol messages cross this fabric as real length-prefixed
binary frames (:mod:`repro.wire`): ``send`` encodes the payload once,
delivery decodes a fresh object from those bytes, and byte accounting is
the actual frame length — the in-process network is wire-faithful to the
socket transport in :mod:`repro.net.stream`, which hands the same frames
to a TCP connection instead of ``loop.call_later``.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable

from repro.errors import TransportError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import ENVELOPE_OVERHEAD_BYTES, Envelope
from repro.net.node import Effects, ProtocolNode
from repro.net.sim_transport import NetworkStats
from repro.wire import decode_frame, encode_frame, spec_for


class AsyncioNetwork:
    """In-process asyncio fabric with optional artificial link latency."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ) -> None:
        self._latency = latency or ConstantLatency(delay=0.0)
        self._rng = random.Random(seed)
        self._endpoints: dict[str, Callable[[Envelope], None]] = {}
        self.stats = NetworkStats()

    def register(self, address: str, deliver: Callable[[Envelope], None]) -> None:
        if address in self._endpoints:
            raise TransportError(f"address already registered: {address}")
        self._endpoints[address] = deliver

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def send(self, src: str, dst: str, payload: Any) -> None:
        frame = None
        if spec_for(type(payload)) is not None:
            # The payload rides as real wire bytes; what the receiver gets
            # is decoded from this frame, never the sender's object graph.
            frame = encode_frame(payload)
            size = ENVELOPE_OVERHEAD_BYTES + len(frame)
        else:
            size = Envelope(src=src, dst=dst, payload=payload).size_bytes()
        self.stats.record_send(type(payload).__name__, size)
        deliver = self._endpoints.get(dst)
        if deliver is None:
            self.stats.messages_dropped += 1
            return
        delay = self._latency.sample(self._rng, size)
        loop = asyncio.get_running_loop()
        if delay <= 0:
            loop.call_soon(self._deliver, deliver, src, dst, payload, frame)
        else:
            loop.call_later(delay, self._deliver, deliver, src, dst, payload, frame)

    def _deliver(
        self,
        deliver: Callable[[Envelope], None],
        src: str,
        dst: str,
        payload: Any,
        frame: bytes | None,
    ) -> None:
        self.stats.messages_delivered += 1
        if frame is not None:
            payload, _ = decode_frame(frame)
        deliver(Envelope(src=src, dst=dst, payload=payload))


class AsyncioNodeRuntime:
    """Drives one :class:`ProtocolNode` on the running event loop."""

    def __init__(self, network: AsyncioNetwork, node: ProtocolNode) -> None:
        self._network = network
        self.node = node
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self.crashed = False
        network.register(node.node_id, self._deliver)

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_start(loop.time()))

    def crash(self) -> None:
        if self.crashed:
            return
        self.crashed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    def recover(self) -> None:
        if not self.crashed:
            return
        self.crashed = False
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_recover(loop.time()))

    # ------------------------------------------------------------------
    def apply_effects(self, effects: Effects) -> None:
        """Execute effects produced outside the message/timer path (see
        :meth:`repro.runtime.cluster.SimNodeRuntime.apply_effects`)."""
        self._apply(effects)

    def _deliver(self, envelope: Envelope) -> None:
        if self.crashed:
            return
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_message(envelope.src, envelope.payload, loop.time()))

    def _fire_timer(self, key: str) -> None:
        if self.crashed:
            return
        self._timers.pop(key, None)
        loop = asyncio.get_running_loop()
        self._apply(self.node.on_timer(key, loop.time()))

    def _apply(self, effects: Effects) -> None:
        loop = asyncio.get_running_loop()
        for key in effects.cancels:
            handle = self._timers.pop(key, None)
            if handle is not None:
                handle.cancel()
        for key, delay in effects.timers:
            existing = self._timers.pop(key, None)
            if existing is not None:
                existing.cancel()
            self._timers[key] = loop.call_later(delay, self._fire_timer, key)
        for dst, message in effects.sends:
            self._network.send(self.node.node_id, dst, message)
