"""Message envelopes and wire-size accounting.

Protocol messages are plain dataclasses.  For bandwidth accounting (one of
the paper's claims is that coordination overhead is *a single counter per
message*) every message can report an approximate serialized size through a
``wire_size()`` method; objects without one are sized by a conservative
structural estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable

#: Fixed per-envelope overhead: source/destination addresses, message tag,
#: transport framing.  A rough but consistent figure; only *relative* sizes
#: matter for the experiments.
ENVELOPE_OVERHEAD_BYTES = 32

#: Optional codec-backed sizer consulted before any estimate.  Installed
#: by :mod:`repro.wire` (which the transports import), it returns the
#: *real* encoded length for wire-registered classes and ``None`` for
#: everything else — unregistered objects keep the structural estimator
#: below, so ad-hoc payloads stay sized exactly as documented.
_EXACT_SIZER: Callable[[Any], int | None] | None = None


def install_exact_sizer(sizer: Callable[[Any], int | None]) -> None:
    """Route :func:`wire_size` through a codec that knows exact lengths."""
    global _EXACT_SIZER
    _EXACT_SIZER = sizer


def wire_size(obj: Any) -> int:
    """The serialized size of ``obj`` in bytes.

    With :mod:`repro.wire` imported this is the exact encoded body length
    for every registered protocol class.  Otherwise — and for objects the
    codec does not know — objects may implement ``wire_size() -> int`` to
    report a figure themselves, and everything else gets a small
    structural estimate that keeps accounting sane.
    """
    sizer = _EXACT_SIZER
    if sizer is not None:
        exact = sizer(obj)
        if exact is not None:
            return exact
    method = getattr(obj, "wire_size", None)
    if callable(method):
        return int(method())
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(wire_size(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(wire_size(k) + wire_size(v) for k, v in obj.items())
    if is_dataclass(obj) and not isinstance(obj, type):
        return 8 + sum(wire_size(getattr(obj, f.name)) for f in fields(obj))
    return 16


def cached_wire_size(obj: Any) -> int:
    """:func:`wire_size` with per-object memoization.

    For immutable objects that expose an instance dict (all CRDT payloads
    do) the computed size is stored on the object, so broadcasting one
    payload to N peers — or re-sending it on a timeout re-drive — sizes
    it once instead of N times.  Wire sizes are structural (no hash
    salting), so the memo is safe to keep across serialization.
    """
    d = getattr(obj, "__dict__", None)
    if d is None:
        return wire_size(obj)
    cached = d.get("_cached_wire_size")
    if cached is None:
        cached = wire_size(obj)
        try:
            object.__setattr__(obj, "_cached_wire_size", cached)
        except (AttributeError, TypeError):
            pass  # slots-only or otherwise unwritable: just recompute
    return cached


@dataclass(frozen=True)
class Envelope:
    """A routed message: source address, destination address, payload."""

    src: str
    dst: str
    payload: Any

    def size_bytes(self) -> int:
        """Total wire size; memoized — sizing a large payload (e.g. a
        64-entry AppendEntries batch) is the hottest loop in big runs."""
        cached = self.__dict__.get("_size")
        if cached is None:
            cached = ENVELOPE_OVERHEAD_BYTES + wire_size(self.payload)
            object.__setattr__(self, "_size", cached)
        return cached
