"""Link latency models.

The paper's cluster was fully connected with 10 Gbit/s links; one-way
delays in such a fabric are dominated by a fixed cost (kernel, NIC, switch)
plus a small size-proportional serialization term and occasional jitter.
The models below capture those regimes; experiments pick one and share it
across all links, matching the homogeneous test bed.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Samples a one-way message delay in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random, size_bytes: int) -> float:
        """Return the delay for one message of ``size_bytes``."""


class ConstantLatency(LatencyModel):
    """Fixed delay plus deterministic per-byte serialization cost."""

    def __init__(self, delay: float = 100e-6, per_byte: float = 0.0) -> None:
        self.delay = delay
        self.per_byte = per_byte

    def sample(self, rng: random.Random, size_bytes: int) -> float:
        return self.delay + self.per_byte * size_bytes


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` plus per-byte cost."""

    def __init__(self, low: float, high: float, per_byte: float = 0.0) -> None:
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = low
        self.high = high
        self.per_byte = per_byte

    def sample(self, rng: random.Random, size_bytes: int) -> float:
        return rng.uniform(self.low, self.high) + self.per_byte * size_bytes


class LogNormalLatency(LatencyModel):
    """Log-normally distributed delay — the classic LAN jitter shape.

    ``median`` is the median one-way delay; ``sigma`` the log-space standard
    deviation (0.2–0.5 are realistic for a quiet data-centre network).  An
    optional per-byte term models serialization of large CRDT payloads.
    """

    def __init__(
        self, median: float = 100e-6, sigma: float = 0.3, per_byte: float = 8e-10
    ) -> None:
        if median <= 0:
            raise ValueError("median latency must be positive")
        self.median = median
        self.sigma = sigma
        self.per_byte = per_byte

    def sample(self, rng: random.Random, size_bytes: int) -> float:
        jittered = self.median * math.exp(rng.gauss(0.0, self.sigma))
        return jittered + self.per_byte * size_bytes
