"""Network fault injection: loss, duplication, and partitions.

The system model (§2.1) explicitly allows messages to be lost, duplicated,
delayed arbitrarily or reordered.  Delay and reorder come from the latency
models; this module adds probabilistic loss/duplication and time-windowed
partitions that block whole groups of links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Partition:
    """Blocks all traffic between ``group_a`` and ``group_b`` during a window.

    Traffic *within* each group is unaffected.  ``until`` may be ``None``
    for a partition that never heals (within the experiment horizon).
    """

    group_a: frozenset[str]
    group_b: frozenset[str]
    start: float
    until: float | None = None

    def blocks(self, src: str, dst: str, now: float) -> bool:
        if now < self.start:
            return False
        if self.until is not None and now >= self.until:
            return False
        crosses = (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )
        return crosses


@dataclass(frozen=True)
class LinkDisruption:
    """Per-link fault window: one-way or symmetric loss/dup/delay bursts.

    Where :class:`Partition` blocks whole groups symmetrically and
    completely, a disruption targets a set of directed links for a time
    window with *partial* badness: ``loss_probability < 1`` models a lossy
    burst, ``extra_delay > 0`` a congestion spike (added on top of the
    latency model, optionally jittered uniformly up to ``delay_jitter``),
    ``duplicate_probability`` a retransmit storm.  ``src``/``dst`` of
    ``None`` match any endpoint; with ``symmetric=True`` the reverse
    direction is disrupted too — leave it ``False`` for the one-way link
    faults the paper's §2.1 channel model permits and TCP-era tools rarely
    exercise.
    """

    start: float = 0.0
    until: float | None = None
    src: frozenset[str] | None = None
    dst: frozenset[str] | None = None
    symmetric: bool = False
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    extra_delay: float = 0.0
    delay_jitter: float = 0.0

    def active(self, now: float) -> bool:
        if now < self.start:
            return False
        return self.until is None or now < self.until

    def matches(self, src: str, dst: str) -> bool:
        if self._matches_directed(src, dst):
            return True
        return self.symmetric and self._matches_directed(dst, src)

    def _matches_directed(self, src: str, dst: str) -> bool:
        if self.src is not None and src not in self.src:
            return False
        return self.dst is None or dst in self.dst


@dataclass
class FaultPlan:
    """Aggregate fault configuration consulted for every send.

    ``loss_probability`` and ``duplicate_probability`` apply independently
    per message.  ``partitions`` is a list of scheduled partitions.  An
    empty plan (the default) is a reliable-but-reordering network.

    ``scope`` optionally restricts probabilistic loss/duplication to links
    whose *both* endpoints are in the set — e.g. the replica group, while
    client sessions (which in practice run over TCP with retransmission)
    stay reliable.  Partitions always apply regardless of scope.
    """

    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    partitions: list[Partition] = field(default_factory=list)
    scope: frozenset[str] | None = None
    disruptions: list[LinkDisruption] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ValueError("duplicate_probability must be in [0, 1)")

    def add_partition(self, partition: Partition) -> None:
        self.partitions.append(partition)

    def add_disruption(self, disruption: LinkDisruption) -> None:
        self.disruptions.append(disruption)

    def _in_scope(self, src: str, dst: str) -> bool:
        return self.scope is None or (src in self.scope and dst in self.scope)

    def _active_disruptions(self, src: str, dst: str, now: float):
        for disruption in self.disruptions:
            if disruption.active(now) and disruption.matches(src, dst):
                yield disruption

    def is_blocked(self, src: str, dst: str, now: float) -> bool:
        """Deterministically blocked (partition, or a loss-1.0 disruption)."""
        for partition in self.partitions:
            if partition.blocks(src, dst, now):
                return True
        for disruption in self._active_disruptions(src, dst, now):
            if disruption.loss_probability >= 1.0:
                return True
        return False

    def should_drop(self, rng: random.Random, src: str, dst: str, now: float) -> bool:
        for partition in self.partitions:
            if partition.blocks(src, dst, now):
                return True
        for disruption in self._active_disruptions(src, dst, now):
            if (
                disruption.loss_probability > 0.0
                and rng.random() < disruption.loss_probability
            ):
                return True
        if (
            self.loss_probability > 0.0
            and self._in_scope(src, dst)
            and rng.random() < self.loss_probability
        ):
            return True
        return False

    def should_duplicate(
        self, rng: random.Random, src: str = "", dst: str = "", now: float = 0.0
    ) -> bool:
        for disruption in self._active_disruptions(src, dst, now):
            if (
                disruption.duplicate_probability > 0.0
                and rng.random() < disruption.duplicate_probability
            ):
                return True
        return (
            self.duplicate_probability > 0.0
            and self._in_scope(src, dst)
            and rng.random() < self.duplicate_probability
        )

    def extra_delay(self, rng: random.Random, src: str, dst: str, now: float) -> float:
        """Sum of active delay spikes on the link (0.0 on the fast path)."""
        if not self.disruptions:
            return 0.0
        total = 0.0
        for disruption in self._active_disruptions(src, dst, now):
            if disruption.extra_delay > 0.0 or disruption.delay_jitter > 0.0:
                total += disruption.extra_delay
                if disruption.delay_jitter > 0.0:
                    total += rng.random() * disruption.delay_jitter
        return total
