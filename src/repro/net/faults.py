"""Network fault injection: loss, duplication, and partitions.

The system model (§2.1) explicitly allows messages to be lost, duplicated,
delayed arbitrarily or reordered.  Delay and reorder come from the latency
models; this module adds probabilistic loss/duplication and time-windowed
partitions that block whole groups of links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Partition:
    """Blocks all traffic between ``group_a`` and ``group_b`` during a window.

    Traffic *within* each group is unaffected.  ``until`` may be ``None``
    for a partition that never heals (within the experiment horizon).
    """

    group_a: frozenset[str]
    group_b: frozenset[str]
    start: float
    until: float | None = None

    def blocks(self, src: str, dst: str, now: float) -> bool:
        if now < self.start:
            return False
        if self.until is not None and now >= self.until:
            return False
        crosses = (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )
        return crosses


@dataclass
class FaultPlan:
    """Aggregate fault configuration consulted for every send.

    ``loss_probability`` and ``duplicate_probability`` apply independently
    per message.  ``partitions`` is a list of scheduled partitions.  An
    empty plan (the default) is a reliable-but-reordering network.

    ``scope`` optionally restricts probabilistic loss/duplication to links
    whose *both* endpoints are in the set — e.g. the replica group, while
    client sessions (which in practice run over TCP with retransmission)
    stay reliable.  Partitions always apply regardless of scope.
    """

    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    partitions: list[Partition] = field(default_factory=list)
    scope: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ValueError("duplicate_probability must be in [0, 1)")

    def add_partition(self, partition: Partition) -> None:
        self.partitions.append(partition)

    def _in_scope(self, src: str, dst: str) -> bool:
        return self.scope is None or (src in self.scope and dst in self.scope)

    def should_drop(self, rng: random.Random, src: str, dst: str, now: float) -> bool:
        for partition in self.partitions:
            if partition.blocks(src, dst, now):
                return True
        if (
            self.loss_probability > 0.0
            and self._in_scope(src, dst)
            and rng.random() < self.loss_probability
        ):
            return True
        return False

    def should_duplicate(
        self, rng: random.Random, src: str = "", dst: str = ""
    ) -> bool:
        return (
            self.duplicate_probability > 0.0
            and self._in_scope(src, dst)
            and rng.random() < self.duplicate_probability
        )
