"""The sans-io protocol node interface.

Every replication protocol in this repository (CRDT Paxos, Multi-Paxos,
Raft, Falerio-style GLA) is written as a *pure state machine*: a node
receives a message or a timer expiry, updates internal state, and returns
the IO it wants performed as an :class:`Effects` value.  Nodes never touch a
socket, a clock, or an event loop.

This buys three drivers for the price of one implementation:

* the deterministic simulator (:mod:`repro.runtime.cluster`) for tests and
  benchmark figures,
* the adversarial interleaving explorer (:mod:`repro.checker.scheduler`)
  for correctness campaigns,
* the asyncio runtime (:mod:`repro.runtime.asyncio_cluster`) for real
  wall-clock deployments used by the examples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Effects:
    """IO requested by a protocol step, to be executed by the driver.

    ``sends``   — ``(destination address, message)`` pairs.
    ``timers``  — ``(key, delay seconds)``; setting a key that is already
                  armed re-arms it (the old expiry is cancelled).
    ``cancels`` — timer keys to disarm.
    """

    sends: list[tuple[str, Any]] = field(default_factory=list)
    timers: list[tuple[str, float]] = field(default_factory=list)
    cancels: list[str] = field(default_factory=list)

    def send(self, dst: str, message: Any) -> None:
        self.sends.append((dst, message))

    def broadcast(self, dsts: list[str], message: Any) -> None:
        for dst in dsts:
            self.sends.append((dst, message))

    def set_timer(self, key: str, delay: float) -> None:
        self.timers.append((key, delay))

    def cancel_timer(self, key: str) -> None:
        self.cancels.append(key)

    def merge(self, other: "Effects") -> None:
        """Fold another effects bundle into this one (in order)."""
        self.sends.extend(other.sends)
        self.timers.extend(other.timers)
        self.cancels.extend(other.cancels)

    @property
    def empty(self) -> bool:
        return not (self.sends or self.timers or self.cancels)


class ProtocolNode(ABC):
    """Base class for sans-io protocol participants.

    Subclasses implement the three hooks below.  ``now`` is the driver's
    current time in seconds; nodes must treat it as opaque (only deltas and
    comparisons are meaningful) so that virtual and wall-clock drivers are
    interchangeable.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id

    @abstractmethod
    def on_start(self, now: float) -> Effects:
        """Called once when the node is brought up."""

    @abstractmethod
    def on_message(self, src: str, message: Any, now: float) -> Effects:
        """Called for every delivered message."""

    def on_timer(self, key: str, now: float) -> Effects:
        """Called when a timer armed via :class:`Effects` expires."""
        return Effects()

    def on_recover(self, now: float) -> Effects:
        """Called after a crash-recovery.

        Under the crash-recovery model of the paper internal state is
        preserved; the hook exists so nodes can re-arm timers (which do not
        survive a crash) and resume periodic duties.
        """
        return self.on_start(now)
