"""Message-passing network substrate.

The system model of the paper (§2.1) assumes asynchronous processes that
communicate over *unreliable* channels: messages may be lost, duplicated,
delayed arbitrarily, or reordered.  This package provides that channel:

* :class:`~repro.net.node.ProtocolNode` / :class:`~repro.net.node.Effects` —
  the sans-io interface every protocol implementation in this repository
  follows.  A node never performs IO; it returns the sends and timer
  operations it wants as data, which a driver executes.  The same node code
  therefore runs under the deterministic simulator, the adversarial
  interleaving explorer, and the asyncio transport.
* :class:`~repro.net.latency.LatencyModel` implementations — constant,
  uniform and log-normal link delays with an optional per-byte component.
* :class:`~repro.net.faults.FaultPlan` — probabilistic loss/duplication and
  scheduled network partitions.
* :class:`~repro.net.sim_transport.SimNetwork` — the simulated fabric that
  routes envelopes between registered endpoints.
* :class:`~repro.net.adversary.AdversarialNetwork` — delivers pending
  messages in uniformly random order (the "protocol scheduler that enforces
  random interleavings" the authors used to test their implementation).
"""

from repro.net.faults import FaultPlan, LinkDisruption, Partition
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.message import Envelope, wire_size
from repro.net.node import Effects, ProtocolNode
from repro.net.sim_transport import SimNetwork

__all__ = [
    "ConstantLatency",
    "Effects",
    "Envelope",
    "FaultPlan",
    "LatencyModel",
    "LinkDisruption",
    "LogNormalLatency",
    "Partition",
    "ProtocolNode",
    "SimNetwork",
    "UniformLatency",
    "wire_size",
]
