"""Adversarially scheduled message delivery.

The paper's authors tested their Erlang implementation "using a protocol
scheduler that enforces random interleavings of incoming messages".  This
module is that scheduler's network half: instead of sampling latencies, all
in-flight messages sit in a pool and an explorer picks the next one to
deliver uniformly at random (optionally dropping or duplicating picks).

Uniform pick-next explores far more hostile interleavings than randomized
latency — a message can be overtaken by arbitrarily many later ones — while
remaining fully deterministic under a seed.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TransportError
from repro.net.message import Envelope
from repro.net.sim_transport import Endpoint, NetworkStats, _load_wire
from repro.sim.kernel import Simulator

#: Virtual time consumed by one adversarial delivery.  Non-zero so that
#: "now" is strictly increasing and timestamps remain a total order.
DELIVERY_EPSILON = 1e-9


class AdversarialNetwork:
    """Drop-in replacement for :class:`~repro.net.sim_transport.SimNetwork`
    whose delivery order is controlled by an explorer, not by latencies."""

    def __init__(self, sim: Simulator, wire_fidelity: bool = True) -> None:
        _load_wire()
        self._sim = sim
        self._rng = sim.rng.stream("adversary")
        self.stats = NetworkStats()
        self._endpoints: dict[str, Endpoint] = {}
        self._pool: list[Envelope] = []
        #: With ``wire_fidelity`` every registered protocol message is
        #: encoded to its binary wire body at send time and decoded at
        #: delivery, so campaigns exercise the real codec on every hop:
        #: what the handler sees is what crossed the (virtual) wire, and
        #: a codec bug fails the campaign's invariants, not just a
        #: round-trip unit test.  Unregistered payloads (raw test probes)
        #: pass through unchanged.
        self.wire_fidelity = wire_fidelity
        from repro.wire import decode_body, encode_body, spec_for

        self._encode_body = encode_body
        self._decode_body = decode_body
        self._spec_for = spec_for
        #: Which envelopes the channel may duplicate.  Client sessions are
        #: usually dedup'd (TCP/request ids), so explorers restrict
        #: duplication to replica↔replica links; the protocol itself makes
        #: no at-most-once assumption there.
        self.duplicable: Callable[[Envelope], bool] = lambda envelope: True
        #: Nemesis link-block predicate ``(src, dst) -> bool``.  A blocked
        #: pick is *held* (parked until :meth:`release_held`), not dropped:
        #: a healed partition may deliver long-delayed traffic, which is
        #: strictly more hostile than silently losing it.
        self.blocked: Callable[[str, str], bool] | None = None
        #: Nemesis per-link loss ``(src, dst) -> probability``, applied at
        #: pick time on top of the explorer's global drop probability.
        self.link_loss: Callable[[str, str], float] | None = None
        self._held: list[Envelope] = []
        self.messages_held = 0

    # ------------------------------------------------------------------
    def register(self, address: str, endpoint: Endpoint) -> None:
        if address in self._endpoints:
            raise TransportError(f"address already registered: {address}")
        self._endpoints[address] = endpoint

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def addresses(self) -> list[str]:
        return sorted(self._endpoints)

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any) -> None:
        envelope = Envelope(src=src, dst=dst, payload=payload)
        self.stats.record_send(type(payload).__name__, envelope.size_bytes())
        if self.wire_fidelity and self._spec_for(type(payload)) is not None:
            # Freeze the payload to wire bytes *now* (send semantics);
            # each delivery decodes a fresh object from these bytes.
            object.__setattr__(envelope, "_wire_body", self._encode_body(payload))
        self._pool.append(envelope)

    @property
    def pending(self) -> int:
        return len(self._pool)

    @property
    def held(self) -> int:
        return len(self._held)

    def release_held(self) -> int:
        """Return every held (link-blocked) envelope to the delivery pool.

        Call when the nemesis heals a partition; the envelopes then race
        with fresh traffic under the usual uniform pick-next schedule.
        Returns how many were released.
        """
        released = len(self._held)
        self._pool.extend(self._held)
        self._held.clear()
        return released

    def deliver_random(self, drop_probability: float = 0.0, duplicate_probability: float = 0.0) -> bool:
        """Deliver (or drop) one uniformly chosen pending message.

        Returns False when the pool is empty.  A duplicated pick is
        delivered now *and* returned to the pool for a second, later
        delivery — modelling channel duplication.
        """
        if not self._pool:
            return False
        index = self._rng.randrange(len(self._pool))
        envelope = self._pool.pop(index)
        if self.blocked is not None and self.blocked(envelope.src, envelope.dst):
            self._held.append(envelope)
            self.messages_held += 1
            return True
        if self.link_loss is not None:
            loss = self.link_loss(envelope.src, envelope.dst)
            if loss > 0.0 and self._rng.random() < loss:
                self.stats.messages_dropped += 1
                return True
        if drop_probability > 0.0 and self._rng.random() < drop_probability:
            self.stats.messages_dropped += 1
            return True
        if (
            duplicate_probability > 0.0
            and self.duplicable(envelope)
            and self._rng.random() < duplicate_probability
        ):
            self.stats.messages_duplicated += 1
            self._pool.append(envelope)
        self._deliver(envelope)
        return True

    def drain(self, max_deliveries: int = 1_000_000) -> int:
        """Deliver every pending message (in random order) until quiescent.

        New messages produced by handlers join the pool and are themselves
        randomly scheduled.  Returns the number of deliveries performed.
        """
        delivered = 0
        while self._pool and delivered < max_deliveries:
            self.deliver_random()
            delivered += 1
        return delivered

    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None:
            self.stats.messages_dropped += 1
            return
        self._sim.now += DELIVERY_EPSILON
        self.stats.messages_delivered += 1
        body = envelope.__dict__.get("_wire_body")
        if body is not None:
            # The handler receives what the wire carried, not the sender's
            # object graph — duplicated picks each decode independently.
            envelope = Envelope(
                src=envelope.src, dst=envelope.dst, payload=self._decode_body(body)
            )
        endpoint.deliver(envelope)
