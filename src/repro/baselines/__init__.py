"""Baseline replication protocols the paper compares against.

* :mod:`repro.baselines.multipaxos` — leader-based Multi-Paxos with a
  command log and leader read leases (the riak_ensemble role in §4).
* :mod:`repro.baselines.raft` — Raft with randomized elections; *both*
  updates and consistent reads are appended to the log (the rabbitmq/ra
  role in §4, which explains its mix-independent throughput).
* :mod:`repro.baselines.gla` — the wait-free generalized lattice agreement
  protocol of Falerio et al. with its ever-growing proposal sets; excluded
  from the paper's throughput runs for exactly that reason, included here
  to *measure* the growth (message-overhead experiment).

All three speak the protocol-agnostic client interface of
:mod:`repro.baselines.common` so the workload generator can drive any of
them interchangeably with CRDT Paxos.
"""

from repro.baselines.common import (
    IntCounter,
    RsmQuery,
    RsmQueryDone,
    RsmUpdate,
    RsmUpdateDone,
    StateMachine,
)

__all__ = [
    "IntCounter",
    "RsmQuery",
    "RsmQueryDone",
    "RsmUpdate",
    "RsmUpdateDone",
    "StateMachine",
]
