"""The Falerio-style generalized lattice agreement node.

Lattice: finite sets of *commands* under union.  Every client command —
update or read — becomes a uniquely tagged command joined into proposals.

The proposal loop follows the wait-free algorithm's shape:

1. a proposer's value is the union of everything it has accepted plus its
   buffered new commands;
2. it sends ``Propose(seq, value)`` to all acceptors;
3. an acceptor ACKs iff its accepted set is contained in the proposal
   (then adopts the proposal); otherwise it NACKs with the union of both;
4. a quorum of ACKs *learns* the value; any NACK folds the returned set in
   and re-proposes with a higher sequence number.

Each refinement can only grow the value, and a value can grow at most once
per concurrent proposer between rounds, which bounds the number of
refinements — the O(N) wait-freedom argument.  A command completes when it
appears in a learned value: updates are then acknowledged; a read's result
is computed by folding all update commands of the learned value into the
state machine (updates commute, so set semantics suffice).

There is deliberately **no truncation**: ``accepted`` and every proposal
carry the full command history.  ``GlaNode.stats`` exposes the growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.common import (
    RsmQuery,
    RsmQueryDone,
    RsmUpdate,
    RsmUpdateDone,
    StateMachine,
)
from repro.net.message import wire_size as _wire_size
from repro.net.node import Effects, ProtocolNode
from repro.errors import ConfigurationError

#: A command: (unique id, kind, payload).  Kind "read" commands are
#: position markers and do not modify the state machine.
Command = tuple[str, str, Any]


@dataclass(frozen=True, slots=True)
class Propose:
    seq: int
    value: frozenset

    def wire_size(self) -> int:
        return 16 + sum(_wire_size(command) for command in self.value)


@dataclass(frozen=True, slots=True)
class ProposeAck:
    seq: int

    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class ProposeNack:
    seq: int
    value: frozenset

    def wire_size(self) -> int:
        return 16 + sum(_wire_size(command) for command in self.value)


@dataclass
class GlaConfig:
    """GLA knobs; only request supervision is configurable."""

    request_timeout: float | None = 1.0

    def __post_init__(self) -> None:
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive or None")


class GlaNode(ProtocolNode):
    """Proposer + acceptor + learner for set-union lattice agreement."""

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        machine_factory: Any,
        config: GlaConfig | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.remotes = [p for p in peers if p != node_id]
        self.majority = len(peers) // 2 + 1
        self.config = config or GlaConfig()
        self._machine_factory = machine_factory

        # Acceptor state: the ever-growing accepted command set.
        self.accepted: frozenset = frozenset()

        # Proposer state.
        self._seq = 0
        self._proposal: frozenset | None = None
        self._acks: set[str] = set()
        self.learned: frozenset = frozenset()
        self._buffer: list[Command] = []
        self._pending: dict[str, tuple[str, str, str]] = {}  # cmd id → route
        self._command_counter = 0

        # Observability.
        self.proposals_sent = 0
        self.refinements = 0

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> Effects:
        return Effects()

    def on_message(self, src: str, message: Any, now: float) -> Effects:
        if isinstance(message, RsmUpdate):
            return self._submit(src, message.request_id, "update", message.command)
        if isinstance(message, RsmQuery):
            return self._submit(src, message.request_id, "read", message.command)
        if isinstance(message, Propose):
            return self._on_propose(src, message)
        if isinstance(message, ProposeAck):
            return self._on_ack(src, message)
        if isinstance(message, ProposeNack):
            return self._on_nack(src, message)
        return Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        if key == "retry" and self._proposal is not None:
            return self._send_proposal(self._proposal)
        return Effects()

    # ------------------------------------------------------------------
    # Client commands
    # ------------------------------------------------------------------
    def _submit(
        self, client: str, request_id: str, kind: str, payload: Any
    ) -> Effects:
        self._command_counter += 1
        command: Command = (
            f"{self.node_id}:{self._command_counter}",
            kind,
            payload,
        )
        self._pending[command[0]] = (client, request_id, kind)
        self._buffer.append(command)
        if self._proposal is None:
            return self._start_proposal()
        return Effects()

    def _start_proposal(self) -> Effects:
        value = self.accepted | frozenset(self._buffer)
        self._buffer = []
        self._proposal = value
        return self._send_proposal(value)

    def _send_proposal(self, value: frozenset) -> Effects:
        self._seq += 1
        self._acks = set()
        self.proposals_sent += 1
        effects = Effects()
        message = Propose(seq=self._seq, value=value)
        effects.broadcast(self.remotes, message)
        # The local acceptor adopts its own proposal immediately.
        self.accepted = self.accepted | value
        self._acks.add(self.node_id)
        if self.config.request_timeout is not None:
            effects.set_timer("retry", self.config.request_timeout)
        if len(self._acks) >= self.majority:  # single-node group
            effects.merge(self._learn(value))
        return effects

    # ------------------------------------------------------------------
    # Acceptor
    # ------------------------------------------------------------------
    def _on_propose(self, src: str, msg: Propose) -> Effects:
        effects = Effects()
        if self.accepted <= msg.value:
            self.accepted = msg.value
            effects.send(src, ProposeAck(seq=msg.seq))
        else:
            self.accepted = self.accepted | msg.value
            effects.send(src, ProposeNack(seq=msg.seq, value=self.accepted))
        return effects

    # ------------------------------------------------------------------
    # Proposer replies
    # ------------------------------------------------------------------
    def _on_ack(self, src: str, msg: ProposeAck) -> Effects:
        if self._proposal is None or msg.seq != self._seq:
            return Effects()
        self._acks.add(src)
        if len(self._acks) >= self.majority:
            return self._learn(self._proposal)
        return Effects()

    def _on_nack(self, src: str, msg: ProposeNack) -> Effects:
        if self._proposal is None or msg.seq != self._seq:
            return Effects()
        self.refinements += 1
        refined = self._proposal | msg.value
        self._proposal = refined
        return self._send_proposal(refined)

    # ------------------------------------------------------------------
    # Learner
    # ------------------------------------------------------------------
    def _learn(self, value: frozenset) -> Effects:
        effects = Effects()
        effects.cancel_timer("retry")
        self.learned = self.learned | value
        self._proposal = None

        completed = [
            command for command in self.learned if command[0] in self._pending
        ]
        if completed:
            # Reads fold every learned *update* into a fresh machine; the
            # update commands commute, so any application order works.
            machine: StateMachine | None = None
            for command in sorted(completed):
                client, request_id, kind = self._pending.pop(command[0])
                if kind == "update":
                    effects.send(client, RsmUpdateDone(request_id=request_id))
                    continue
                if machine is None:
                    machine = self._machine_factory()
                    for cmd_id, cmd_kind, payload in sorted(self.learned):
                        if cmd_kind == "update":
                            machine.apply_update(payload)
                effects.send(
                    client,
                    RsmQueryDone(
                        request_id=request_id,
                        result=machine.apply_query(command[2]),
                        served_by=self.node_id,
                        via="gla",
                    ),
                )

        if self._buffer:
            effects.merge(self._start_proposal())
        return effects
