"""Generalized lattice agreement baseline (Falerio et al., PODC 2012).

The wait-free GLA protocol over the powerset lattice of submitted
commands.  Proposals carry the proposer's entire accepted command set;
under contention the sets only ever grow, and no truncation mechanism is
described in the original paper — the reason the CRDT-Paxos authors left
it out of their throughput evaluation and the reason this repository
includes it: the message-overhead benchmark measures exactly that growth
against CRDT Paxos' constant one-round-per-message overhead.
"""

from repro.baselines.gla.node import GlaConfig, GlaNode

__all__ = ["GlaConfig", "GlaNode"]
