"""Multi-Paxos baseline with leader read leases.

Mirrors the second comparison system of the paper's evaluation
(riak_ensemble): a ballot-based leader replicates update commands through
a per-slot Phase 2 exchange, while reads are served locally at the leader
under a quorum-renewed lease — which is why Multi-Paxos profits from
read-heavy mixes in Figure 1, unlike Raft.
"""

from repro.baselines.multipaxos.config import MultiPaxosConfig
from repro.baselines.multipaxos.node import MultiPaxosNode

__all__ = ["MultiPaxosConfig", "MultiPaxosNode"]
