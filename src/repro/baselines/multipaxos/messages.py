"""Multi-Paxos wire messages.

Ballots are ``(counter, node index)`` pairs, totally ordered; slots are
1-indexed log positions.  Commit knowledge piggybacks on Phase 2 and
heartbeat traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.message import wire_size as _wire_size

Ballot = tuple[int, int]


@dataclass(frozen=True, slots=True)
class PaxEntry:
    """A log-slot value: an update command or a no-op gap filler."""

    kind: str  # "update" | "read" | "noop"
    command: Any = None
    client: str = ""
    request_id: str = ""

    def wire_size(self) -> int:
        return 16 + _wire_size(self.command)


@dataclass(frozen=True, slots=True)
class Phase1a:
    """Leadership bid: promise me everything from ``from_slot`` on."""

    ballot: Ballot
    from_slot: int

    def wire_size(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class Phase1b:
    """Promise (or refusal) with the acceptor's accepted tail.

    ``accepted`` maps slot → (ballot, entry) for slots ≥ the requested
    ``from_slot``.  If part of that range is already compacted here,
    ``snapshot`` carries the machine state at ``snapshot_slot`` so the new
    leader can catch up.
    """

    ballot: Ballot
    granted: bool
    accepted: tuple[tuple[int, Ballot, PaxEntry], ...] = ()
    commit_index: int = 0
    snapshot_slot: int = 0
    snapshot: Any = None

    def wire_size(self) -> int:
        return (
            33
            + sum(24 + entry.wire_size() for _, _, entry in self.accepted)
            + _wire_size(self.snapshot)
        )


@dataclass(frozen=True, slots=True)
class Phase2a:
    """Propose ``entry`` for ``slot`` under ``ballot``."""

    ballot: Ballot
    slot: int
    entry: PaxEntry
    commit_index: int

    def wire_size(self) -> int:
        return 32 + self.entry.wire_size()


@dataclass(frozen=True, slots=True)
class Phase2b:
    """Acceptance of one slot (or a refusal carrying the higher ballot)."""

    ballot: Ballot
    slot: int
    accepted: bool

    def wire_size(self) -> int:
        return 25


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Leader liveness + lease renewal + commit dissemination."""

    ballot: Ballot
    commit_index: int

    def wire_size(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class HeartbeatAck:
    ballot: Ballot
    #: The follower's applied frontier, so the leader can detect laggards.
    applied_index: int

    def wire_size(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class CatchupRequest:
    """A follower asks the leader for slots it is missing."""

    from_slot: int

    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class CatchupReply:
    """Entries (or a snapshot) repairing a follower's gap."""

    entries: tuple[tuple[int, Ballot, PaxEntry], ...]
    commit_index: int
    snapshot_slot: int = 0
    snapshot: Any = None

    def wire_size(self) -> int:
        return (
            24
            + sum(24 + entry.wire_size() for _, _, entry in self.entries)
            + _wire_size(self.snapshot)
        )
