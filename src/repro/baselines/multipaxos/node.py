"""The Multi-Paxos replica state machine (sans-io).

A ballot-based stable leader replicates update commands into numbered log
slots via per-slot Phase 2 exchanges; Phase 1 runs once per leadership
change over the whole suffix.  Reads are served *locally* at the leader
while it holds a quorum-renewed lease — no log slot, no round trip — which
is the riak_ensemble behaviour the paper benchmarks ("the Multi-Paxos
implementation employs leader read leases").

Safety notes implemented here:

* a follower that recently acknowledged a leader refuses Phase 1 bids from
  other candidates until the lease promise expires, so a lease-holding
  leader cannot be silently superseded;
* a fresh leader serves lease reads only after everything it inherited
  from earlier ballots has committed (the *read barrier*), since those
  entries may already be acknowledged to clients;
* commands are applied in slot order; gaps trigger a catch-up exchange and
  the applied prefix is compacted into machine snapshots.
"""

from __future__ import annotations

import random
from typing import Any

from repro.baselines.common import (
    Forwarded,
    RsmQuery,
    RsmQueryDone,
    RsmUpdate,
    RsmUpdateDone,
    StateMachine,
)
from repro.baselines.multipaxos.config import MultiPaxosConfig
from repro.baselines.multipaxos.messages import (
    Ballot,
    CatchupReply,
    CatchupRequest,
    Heartbeat,
    HeartbeatAck,
    PaxEntry,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
)
from repro.net.node import Effects, ProtocolNode

_BUFFER_LIMIT = 100_000
_CATCHUP_BATCH = 256

#: Ballot below every real ballot (real counters start at 1).
_NO_BALLOT: Ballot = (0, -1)


class MultiPaxosNode(ProtocolNode):
    """One Multi-Paxos replica (acceptor + potential leader)."""

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        machine: StateMachine,
        config: MultiPaxosConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = sorted(peers)
        self.remotes = [p for p in self.peers if p != node_id]
        self.majority = len(self.peers) // 2 + 1
        self.my_index = self.peers.index(node_id)
        self.config = config or MultiPaxosConfig()
        self._rng = rng or random.Random(hash(node_id) & 0xFFFFFFFF)

        # Acceptor state.
        self.promised: Ballot = _NO_BALLOT
        self.accepted: dict[int, tuple[Ballot, PaxEntry]] = {}
        self.commit_index = 0
        self.applied_index = 0
        self.machine = machine
        self.snapshot_slot = 0
        self.snapshot_data: Any = machine.snapshot()
        self._lease_promise_until = 0.0

        # Role.
        self.role = "follower"
        self.leader_id: str | None = None
        self._max_ballot_counter = 0

        # Leader state.
        self.ballot: Ballot = _NO_BALLOT
        self.next_slot = 1
        self._phase1_votes: dict[str, Phase1b] = {}
        self._slot_acks: dict[int, set[str]] = {}
        self._committed: set[int] = set()
        self._pending: dict[int, tuple[str, str]] = {}
        self._read_barrier = 0
        self._lease_until = 0.0
        self._hb_sent_at = -1.0
        self._hb_acks: set[str] = set()

        # Command routing.
        self._buffer: list[tuple[str, RsmUpdate | RsmQuery]] = []

        # Observability.
        self.elections_started = 0
        self.lease_reads = 0
        self.log_reads = 0
        self.snapshots_taken = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self, now: float) -> Effects:
        effects = Effects()
        if self.role == "leader":
            # Recovered leader: the lease is gone until re-acknowledged.
            self._lease_until = 0.0
            effects.set_timer("heartbeat", self.config.heartbeat_interval)
        else:
            self._arm_election(effects)
        return effects

    def _arm_election(self, effects: Effects) -> None:
        timeout = self._rng.uniform(
            self.config.election_timeout_min, self.config.election_timeout_max
        )
        effects.set_timer("election", timeout)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: str, message: Any, now: float) -> Effects:
        if isinstance(message, (RsmUpdate, RsmQuery)):
            return self._on_client_command(src, message, now)
        if isinstance(message, Forwarded):
            return self._on_client_command(message.client, message.message, now)
        if isinstance(message, Phase1a):
            return self._on_phase1a(src, message, now)
        if isinstance(message, Phase1b):
            return self._on_phase1b(src, message, now)
        if isinstance(message, Phase2a):
            return self._on_phase2a(src, message, now)
        if isinstance(message, Phase2b):
            return self._on_phase2b(src, message, now)
        if isinstance(message, Heartbeat):
            return self._on_heartbeat_msg(src, message, now)
        if isinstance(message, HeartbeatAck):
            return self._on_heartbeat_ack(src, message, now)
        if isinstance(message, CatchupRequest):
            return self._on_catchup_request(src, message)
        if isinstance(message, CatchupReply):
            return self._on_catchup_reply(src, message)
        return Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        if key == "election":
            return self._start_election(now)
        if key == "heartbeat":
            return self._heartbeat_tick(now)
        return Effects()

    # ------------------------------------------------------------------
    # Elections (Phase 1 over the log suffix)
    # ------------------------------------------------------------------
    def _start_election(self, now: float) -> Effects:
        effects = Effects()
        if self.role == "leader":
            return effects
        self.elections_started += 1
        self.role = "candidate"
        self._max_ballot_counter += 1
        self.ballot = (self._max_ballot_counter, self.my_index)
        self.promised = self.ballot
        self.leader_id = None
        self._phase1_votes = {
            self.node_id: self._make_phase1b(self.applied_index + 1, granted=True)
        }
        effects.broadcast(
            self.remotes,
            Phase1a(ballot=self.ballot, from_slot=self.applied_index + 1),
        )
        self._arm_election(effects)
        if len(self._phase1_votes) >= self.majority:  # single-node group
            self._become_leader(effects, now)
        return effects

    def _make_phase1b(self, from_slot: int, granted: bool) -> Phase1b:
        snapshot_slot = 0
        snapshot = None
        if granted and from_slot <= self.snapshot_slot:
            snapshot_slot = self.snapshot_slot
            snapshot = self.snapshot_data
        accepted = tuple(
            (slot, ballot, entry)
            for slot, (ballot, entry) in sorted(self.accepted.items())
            if slot >= from_slot
        ) if granted else ()
        return Phase1b(
            ballot=self.promised,
            granted=granted,
            accepted=accepted,
            commit_index=self.commit_index,
            snapshot_slot=snapshot_slot,
            snapshot=snapshot,
        )

    def _on_phase1a(self, src: str, msg: Phase1a, now: float) -> Effects:
        effects = Effects()
        self._observe_counter(msg.ballot)
        lease_blocked = (
            now < self._lease_promise_until
            and self.leader_id is not None
            and self.leader_id != src
        )
        if msg.ballot > self.promised and not lease_blocked:
            if self.role == "leader":
                self._abdicate(effects)
            self.promised = msg.ballot
            self.role = "follower"
            self._arm_election(effects)
            effects.send(src, self._make_phase1b(msg.from_slot, granted=True))
        else:
            effects.send(src, self._make_phase1b(msg.from_slot, granted=False))
        return effects

    def _on_phase1b(self, src: str, msg: Phase1b, now: float) -> Effects:
        effects = Effects()
        self._observe_counter(msg.ballot)
        if self.role != "candidate":
            return effects
        if not msg.granted:
            if msg.ballot > self.ballot:
                self.role = "follower"
                self._arm_election(effects)
            return effects
        if msg.ballot != self.ballot:
            return effects
        self._phase1_votes[src] = msg
        if len(self._phase1_votes) >= self.majority:
            self._become_leader(effects, now)
        return effects

    def _become_leader(self, effects: Effects, now: float) -> None:
        self.role = "leader"
        self.leader_id = self.node_id

        # Adopt the most advanced snapshot among the quorum, then the
        # highest-ballot accepted value per slot, then everybody's commit
        # knowledge.
        votes = list(self._phase1_votes.values())
        best_snapshot = max(votes, key=lambda v: v.snapshot_slot)
        if best_snapshot.snapshot_slot > self.applied_index:
            self.machine.restore(best_snapshot.snapshot)
            self.snapshot_data = best_snapshot.snapshot
            self.snapshot_slot = best_snapshot.snapshot_slot
            self.applied_index = best_snapshot.snapshot_slot
            self.accepted = {
                slot: value
                for slot, value in self.accepted.items()
                if slot > self.snapshot_slot
            }
        for vote in votes:
            for slot, ballot, entry in vote.accepted:
                if slot <= self.snapshot_slot:
                    continue
                current = self.accepted.get(slot)
                if current is None or current[0] < ballot:
                    self.accepted[slot] = (ballot, entry)
            self.commit_index = max(self.commit_index, vote.commit_index)

        highest = max(self.accepted, default=self.commit_index)
        self.next_slot = max(highest, self.commit_index, self.snapshot_slot) + 1

        # Re-propose the whole uncommitted suffix under my ballot, filling
        # holes with no-ops; none of it may be lost (it could be acked).
        self._slot_acks = {}
        self._committed = {
            slot for slot in self._committed if slot <= self.commit_index
        }
        for slot in range(self.commit_index + 1, self.next_slot):
            _, entry = self.accepted.get(slot, (None, PaxEntry(kind="noop")))
            self.accepted[slot] = (self.ballot, entry)
            self._slot_acks[slot] = {self.node_id}
            effects.broadcast(
                self.remotes,
                Phase2a(
                    ballot=self.ballot,
                    slot=slot,
                    entry=entry,
                    commit_index=self.commit_index,
                ),
            )
        self._read_barrier = self.next_slot - 1
        self._lease_until = 0.0
        effects.cancel_timer("election")
        effects.merge(self._heartbeat_tick(now))
        self._apply_committed(effects)
        self._flush_buffer(effects)
        self._maybe_commit(effects)

    def _abdicate(self, effects: Effects) -> None:
        self.role = "follower"
        self.leader_id = None
        self._lease_until = 0.0
        effects.cancel_timer("heartbeat")
        self._arm_election(effects)

    def _observe_counter(self, ballot: Ballot) -> None:
        if ballot[0] > self._max_ballot_counter:
            self._max_ballot_counter = ballot[0]

    # ------------------------------------------------------------------
    # Client commands
    # ------------------------------------------------------------------
    def _on_client_command(
        self, client: str, msg: RsmUpdate | RsmQuery, now: float
    ) -> Effects:
        effects = Effects()
        if self.role == "leader":
            if isinstance(msg, RsmQuery):
                self._serve_read(client, msg, now, effects)
            else:
                self._propose(client, msg, "update", effects)
        elif self.leader_id is not None and self.leader_id != self.node_id:
            effects.send(self.leader_id, Forwarded(client=client, message=msg))
        elif len(self._buffer) < _BUFFER_LIMIT:
            self._buffer.append((client, msg))
        return effects

    def _serve_read(
        self, client: str, msg: RsmQuery, now: float, effects: Effects
    ) -> None:
        lease_ok = now < self._lease_until
        barrier_ok = self.commit_index >= self._read_barrier
        if lease_ok and barrier_ok:
            # Local lease read: the applied state reflects every update
            # this leadership has acknowledged, and the barrier guarantees
            # everything inherited from older ballots is in as well.
            self.lease_reads += 1
            result = self.machine.apply_query(msg.command)
            effects.send(
                client,
                RsmQueryDone(
                    request_id=msg.request_id,
                    result=result,
                    served_by=self.node_id,
                    via="lease",
                ),
            )
            return
        self.log_reads += 1
        self._propose(client, msg, "read", effects)

    def _propose(
        self,
        client: str,
        msg: RsmUpdate | RsmQuery,
        kind: str,
        effects: Effects,
    ) -> None:
        slot = self.next_slot
        self.next_slot += 1
        entry = PaxEntry(
            kind=kind,
            command=msg.command,
            client=client,
            request_id=msg.request_id,
        )
        self.accepted[slot] = (self.ballot, entry)
        self._slot_acks[slot] = {self.node_id}
        self._pending[slot] = (client, msg.request_id)
        effects.broadcast(
            self.remotes,
            Phase2a(
                ballot=self.ballot,
                slot=slot,
                entry=entry,
                commit_index=self.commit_index,
            ),
        )
        self._maybe_commit(effects)  # single-node groups commit instantly

    def _flush_buffer(self, effects: Effects) -> None:
        buffered, self._buffer = self._buffer, []
        for client, msg in buffered:
            effects.merge(self._on_client_command(client, msg, now=0.0))

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def _on_phase2a(self, src: str, msg: Phase2a, now: float) -> Effects:
        effects = Effects()
        self._observe_counter(msg.ballot)
        if msg.ballot < self.promised:
            effects.send(
                src, Phase2b(ballot=self.promised, slot=msg.slot, accepted=False)
            )
            return effects
        if msg.ballot > self.promised or self.role != "follower":
            if self.role == "leader" and msg.ballot > self.ballot:
                self._abdicate(effects)
            self.role = "follower"
        self.promised = msg.ballot
        self.leader_id = src
        self._lease_promise_until = now + self.config.lease_duration
        self._arm_election(effects)
        if msg.slot > self.snapshot_slot:
            self.accepted[msg.slot] = (msg.ballot, msg.entry)
        if msg.commit_index > self.commit_index:
            self.commit_index = msg.commit_index
            self._apply_committed(effects)
        self._flush_buffer(effects)
        effects.send(src, Phase2b(ballot=msg.ballot, slot=msg.slot, accepted=True))
        return effects

    def _on_phase2b(self, src: str, msg: Phase2b, now: float) -> Effects:
        effects = Effects()
        self._observe_counter(msg.ballot)
        if self.role != "leader":
            return effects
        if not msg.accepted:
            if msg.ballot > self.ballot:
                self._abdicate(effects)
            return effects
        if msg.ballot != self.ballot:
            return effects
        acks = self._slot_acks.setdefault(msg.slot, {self.node_id})
        acks.add(src)
        self._maybe_commit(effects)
        return effects

    def _maybe_commit(self, effects: Effects) -> None:
        for slot, acks in self._slot_acks.items():
            if slot not in self._committed and len(acks) >= self.majority:
                self._committed.add(slot)
        advanced = False
        while self.commit_index + 1 in self._committed:
            self.commit_index += 1
            advanced = True
        if advanced:
            self._apply_committed(effects)

    # ------------------------------------------------------------------
    # Heartbeats and leases
    # ------------------------------------------------------------------
    def _heartbeat_tick(self, now: float) -> Effects:
        effects = Effects()
        if self.role != "leader":
            return effects
        self._hb_sent_at = now
        self._hb_acks = {self.node_id}
        effects.broadcast(
            self.remotes,
            Heartbeat(ballot=self.ballot, commit_index=self.commit_index),
        )
        # Re-drive a bounded window of stuck slots: a lost Phase2a/2b would
        # otherwise hole the log forever and block every later commit.
        # Re-proposals are idempotent (same ballot, slot and entry).
        stuck = [
            slot
            for slot in range(self.commit_index + 1, self.next_slot)
            if slot not in self._committed and slot in self.accepted
        ][:_CATCHUP_BATCH]
        for slot in stuck:
            _, entry = self.accepted[slot]
            effects.broadcast(
                self.remotes,
                Phase2a(
                    ballot=self.ballot,
                    slot=slot,
                    entry=entry,
                    commit_index=self.commit_index,
                ),
            )
        if len(self._hb_acks) >= self.majority:  # single-node group
            self._lease_until = now + self.config.lease_duration
        effects.set_timer("heartbeat", self.config.heartbeat_interval)
        return effects

    def _on_heartbeat_msg(self, src: str, msg: Heartbeat, now: float) -> Effects:
        effects = Effects()
        self._observe_counter(msg.ballot)
        if msg.ballot < self.promised:
            return effects
        if self.role == "leader" and msg.ballot > self.ballot:
            self._abdicate(effects)
        self.role = "follower"
        self.promised = msg.ballot
        self.leader_id = src
        self._lease_promise_until = now + self.config.lease_duration
        self._arm_election(effects)
        if msg.commit_index > self.commit_index:
            self.commit_index = msg.commit_index
            self._apply_committed(effects)
        if self.applied_index < self.commit_index:
            effects.send(src, CatchupRequest(from_slot=self.applied_index + 1))
        self._flush_buffer(effects)
        effects.send(
            src, HeartbeatAck(ballot=msg.ballot, applied_index=self.applied_index)
        )
        return effects

    def _on_heartbeat_ack(self, src: str, msg: HeartbeatAck, now: float) -> Effects:
        effects = Effects()
        if self.role != "leader" or msg.ballot != self.ballot:
            return effects
        self._hb_acks.add(src)
        if len(self._hb_acks) >= self.majority and self._hb_sent_at >= 0:
            self._lease_until = self._hb_sent_at + self.config.lease_duration
        return effects

    # ------------------------------------------------------------------
    # Catch-up and application
    # ------------------------------------------------------------------
    def _on_catchup_request(self, src: str, msg: CatchupRequest) -> Effects:
        effects = Effects()
        if msg.from_slot <= self.snapshot_slot:
            effects.send(
                src,
                CatchupReply(
                    entries=(),
                    commit_index=self.commit_index,
                    snapshot_slot=self.snapshot_slot,
                    snapshot=self.snapshot_data,
                ),
            )
            return effects
        entries = tuple(
            (slot, ballot, entry)
            for slot, (ballot, entry) in sorted(self.accepted.items())
            if msg.from_slot <= slot <= self.commit_index
        )[:_CATCHUP_BATCH]
        effects.send(
            src, CatchupReply(entries=entries, commit_index=self.commit_index)
        )
        return effects

    def _on_catchup_reply(self, src: str, msg: CatchupReply) -> Effects:
        effects = Effects()
        if msg.snapshot_slot > self.applied_index:
            self.machine.restore(msg.snapshot)
            self.snapshot_data = msg.snapshot
            self.snapshot_slot = msg.snapshot_slot
            self.applied_index = msg.snapshot_slot
            self.accepted = {
                slot: value
                for slot, value in self.accepted.items()
                if slot > self.snapshot_slot
            }
        for slot, ballot, entry in msg.entries:
            if slot <= self.snapshot_slot:
                continue
            current = self.accepted.get(slot)
            if current is None or current[0] <= ballot:
                self.accepted[slot] = (ballot, entry)
        if msg.commit_index > self.commit_index:
            self.commit_index = msg.commit_index
        self._apply_committed(effects)
        if self.applied_index < self.commit_index and self.leader_id:
            effects.send(
                self.leader_id, CatchupRequest(from_slot=self.applied_index + 1)
            )
        return effects

    def _apply_committed(self, effects: Effects) -> None:
        while self.applied_index < self.commit_index:
            slot = self.applied_index + 1
            if slot <= self.snapshot_slot:
                self.applied_index = self.snapshot_slot
                continue
            if slot not in self.accepted:
                break  # gap; a catch-up is (or will be) in flight
            _, entry = self.accepted[slot]
            if entry.kind == "update":
                self.machine.apply_update(entry.command)
            pending = self._pending.pop(slot, None)
            if pending is not None:
                client, request_id = pending
                if entry.kind == "update":
                    effects.send(client, RsmUpdateDone(request_id=request_id))
                elif entry.kind == "read":
                    effects.send(
                        client,
                        RsmQueryDone(
                            request_id=request_id,
                            result=self.machine.apply_query(entry.command),
                            served_by=self.node_id,
                            via="log",
                        ),
                    )
            self.applied_index = slot
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self.applied_index - self.snapshot_slot >= self.config.snapshot_threshold:
            self.snapshot_data = self.machine.snapshot()
            self.snapshot_slot = self.applied_index
            self.accepted = {
                slot: value
                for slot, value in self.accepted.items()
                if slot > self.snapshot_slot
            }
            self.snapshots_taken += 1
