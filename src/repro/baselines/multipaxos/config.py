"""Multi-Paxos tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class MultiPaxosConfig:
    """Timeouts, lease parameters and compaction limits.

    The read lease must be shorter than the election timeout so a
    partitioned leader's lease expires before a successor can be elected —
    the standard safety argument for lease reads under bounded clock drift
    (drift is zero in the simulator).
    """

    election_timeout_min: float = 0.150
    election_timeout_max: float = 0.300
    heartbeat_interval: float = 0.030
    lease_duration: float = 0.120
    snapshot_threshold: int = 1024

    def __post_init__(self) -> None:
        if self.election_timeout_min <= 0:
            raise ConfigurationError("election_timeout_min must be positive")
        if self.election_timeout_max < self.election_timeout_min:
            raise ConfigurationError(
                "election_timeout_max must be >= election_timeout_min"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if not self.heartbeat_interval < self.lease_duration:
            raise ConfigurationError("heartbeat_interval must be below lease_duration")
        if not self.lease_duration <= self.election_timeout_min:
            raise ConfigurationError(
                "lease_duration must not exceed election_timeout_min"
            )
        if self.snapshot_threshold <= 1:
            raise ConfigurationError("snapshot_threshold must be > 1")
