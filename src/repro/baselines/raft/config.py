"""Raft tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class RaftConfig:
    """Timeouts and batching limits.

    Defaults follow the classic paper values (150–300 ms election
    timeouts); the benchmark calibration scales them down together with
    the simulated link latencies.
    """

    election_timeout_min: float = 0.150
    election_timeout_max: float = 0.300
    heartbeat_interval: float = 0.030
    max_entries_per_append: int = 64
    snapshot_threshold: int = 1024

    def __post_init__(self) -> None:
        if self.election_timeout_min <= 0:
            raise ConfigurationError("election_timeout_min must be positive")
        if self.election_timeout_max < self.election_timeout_min:
            raise ConfigurationError(
                "election_timeout_max must be >= election_timeout_min"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if self.heartbeat_interval >= self.election_timeout_min:
            raise ConfigurationError(
                "heartbeat_interval must be below election_timeout_min"
            )
        if self.max_entries_per_append <= 0:
            raise ConfigurationError("max_entries_per_append must be positive")
        if self.snapshot_threshold <= 1:
            raise ConfigurationError("snapshot_threshold must be > 1")
