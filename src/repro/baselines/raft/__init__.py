"""Raft baseline (Ongaro & Ousterhout, USENIX ATC '14).

Mirrors the comparison system of the paper's evaluation (rabbitmq/ra):
a leader-based, log-replicating consensus protocol where **both updates
and consistent reads are appended to the command log** — the property the
paper credits for Raft's mix-independent throughput in Figure 1.
"""

from repro.baselines.raft.config import RaftConfig
from repro.baselines.raft.log import LogEntry, RaftLog
from repro.baselines.raft.node import RaftNode

__all__ = ["LogEntry", "RaftConfig", "RaftLog", "RaftNode"]
