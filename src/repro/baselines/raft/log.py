"""The Raft command log with snapshot-based compaction.

Entries are 1-indexed as in the Raft paper.  After compaction the list
holds only entries with index > ``base_index``; ``base_index`` /
``base_term`` describe the snapshot boundary.  This is exactly the
auxiliary state CRDT Paxos exists to avoid — kept here in full so the
baseline is honest about its costs (the benchmarks report log sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.message import wire_size as _wire_size


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One replicated command.

    ``kind`` is ``"update"``, ``"read"`` (the ra-style read-through-log) or
    ``"noop"`` (appended by a fresh leader to learn the commit frontier).
    ``client`` / ``request_id`` route the completion back; they are only
    meaningful on the leader that accepted the command.
    """

    term: int
    kind: str
    command: Any = None
    client: str = ""
    request_id: str = ""

    def wire_size(self) -> int:
        return 16 + _wire_size(self.command)


class RaftLog:
    """1-indexed entry storage with a compacted prefix."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self.base_index = 0
        self.base_term = 0

    # ------------------------------------------------------------------
    @property
    def last_index(self) -> int:
        return self.base_index + len(self._entries)

    @property
    def last_term(self) -> int:
        if self._entries:
            return self._entries[-1].term
        return self.base_term

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, index: int) -> LogEntry | None:
        """The entry at a global index, or None if compacted/absent."""
        offset = index - self.base_index
        if offset < 1 or offset > len(self._entries):
            return None
        return self._entries[offset - 1]

    def term_at(self, index: int) -> int | None:
        """Term of the entry at ``index`` (knows the snapshot boundary)."""
        if index == self.base_index:
            return self.base_term
        entry = self.entry(index)
        return None if entry is None else entry.term

    def slice_from(self, index: int, limit: int) -> tuple[LogEntry, ...]:
        """Up to ``limit`` entries starting at global ``index``."""
        offset = index - self.base_index
        if offset < 1:
            raise IndexError(f"index {index} is compacted (base {self.base_index})")
        return tuple(self._entries[offset - 1 : offset - 1 + limit])

    # ------------------------------------------------------------------
    def append(self, entry: LogEntry) -> int:
        """Append one entry; returns its global index."""
        self._entries.append(entry)
        return self.last_index

    def truncate_from(self, index: int) -> None:
        """Drop the entry at ``index`` and everything after it."""
        offset = index - self.base_index
        if offset < 1:
            raise IndexError(f"cannot truncate into compacted prefix ({index})")
        del self._entries[offset - 1 :]

    def compact_to(self, index: int) -> None:
        """Discard entries up to and including ``index`` (snapshotted)."""
        term = self.term_at(index)
        if term is None:
            raise IndexError(f"cannot compact to unknown index {index}")
        offset = index - self.base_index
        self._entries = self._entries[offset:]
        self.base_index = index
        self.base_term = term

    def reset_to_snapshot(self, index: int, term: int) -> None:
        """Replace everything with a snapshot boundary (InstallSnapshot)."""
        self._entries = []
        self.base_index = index
        self.base_term = term
