"""Raft RPCs, modelled as one-way messages (reply is a separate send)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.raft.log import LogEntry
from repro.net.message import wire_size as _wire_size


@dataclass(frozen=True, slots=True)
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int

    def wire_size(self) -> int:
        return 24 + len(self.candidate)


@dataclass(frozen=True, slots=True)
class RequestVoteReply:
    term: int
    granted: bool

    def wire_size(self) -> int:
        return 9


@dataclass(frozen=True, slots=True)
class AppendEntries:
    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int
    #: Per-peer RPC sequence number, echoed by the reply.  The leader only
    #: acts on the reply to its *latest* RPC; without this, a heartbeat
    #: retransmission racing a pipelined append would spawn a duplicate
    #: self-perpetuating reply stream and melt the leader.
    seq: int = 0

    def wire_size(self) -> int:
        return 40 + len(self.leader) + sum(e.wire_size() for e in self.entries)


@dataclass(frozen=True, slots=True)
class AppendEntriesReply:
    term: int
    success: bool
    #: On success: highest index known replicated.  On failure: the
    #: follower's last log index, used as a back-off hint.
    match_index: int
    seq: int = 0

    def wire_size(self) -> int:
        return 25


@dataclass(frozen=True, slots=True)
class InstallSnapshot:
    term: int
    leader: str
    last_included_index: int
    last_included_term: int
    snapshot: Any
    seq: int = 0

    def wire_size(self) -> int:
        return 32 + len(self.leader) + _wire_size(self.snapshot)


@dataclass(frozen=True, slots=True)
class InstallSnapshotReply:
    term: int
    last_included_index: int
    seq: int = 0

    def wire_size(self) -> int:
        return 24
