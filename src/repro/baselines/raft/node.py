"""The Raft replica state machine (sans-io).

A faithful single-file Raft: randomized elections, log replication with
pipelined/batched AppendEntries, commit-from-current-term rule, snapshot
compaction and InstallSnapshot for lagging followers.

Client commands — updates *and reads* — are appended to the log (the
behaviour of the rabbitmq/ra implementation the paper benchmarked); a read
is answered when its entry is applied, so every read costs a log slot and
a majority round trip, which is why Raft's throughput in Figure 1 does not
improve with the read ratio.

Non-leaders forward client commands to the leader (buffering them while no
leader is known); the leader replies directly to the client.
"""

from __future__ import annotations

import random
from typing import Any

from repro.baselines.common import (
    Forwarded,
    RsmQuery,
    RsmQueryDone,
    RsmUpdate,
    RsmUpdateDone,
    StateMachine,
)
from repro.baselines.raft.config import RaftConfig
from repro.baselines.raft.log import LogEntry, RaftLog
from repro.baselines.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
    RequestVote,
    RequestVoteReply,
)
from repro.net.node import Effects, ProtocolNode

#: Upper bound on commands buffered while no leader is known.
_BUFFER_LIMIT = 100_000


class RaftNode(ProtocolNode):
    """One Raft replica.

    Parameters
    ----------
    node_id, peers:
        This node's address and the full group membership (incl. self).
    machine:
        The replicated :class:`StateMachine` (fresh instance per node).
    config:
        Timeouts and batching limits.
    rng:
        Source of election-timeout randomness.  Pass a seeded generator
        for deterministic simulations.
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        machine: StateMachine,
        config: RaftConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(node_id)
        if node_id not in peers:
            raise ValueError(f"node_id {node_id!r} must be listed in peers")
        self.peers = list(peers)
        self.remotes = [p for p in peers if p != node_id]
        self.majority = len(peers) // 2 + 1
        self.config = config or RaftConfig()
        self._rng = rng or random.Random(hash(node_id) & 0xFFFFFFFF)

        # Persistent state (preserved across crash-recovery).
        self.term = 0
        self.voted_for: str | None = None
        self.log = RaftLog()
        self.machine = machine
        self.snapshot_data: Any = machine.snapshot()

        # Volatile state.
        self.role = "follower"
        self.leader_id: str | None = None
        self.commit_index = 0
        self.last_applied = 0
        self._votes: set[str] = set()

        # Leader state.
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self._outstanding: dict[str, bool] = {}
        self._dirty: dict[str, bool] = {}
        self._rpc_seq: dict[str, int] = {}

        # Command routing.
        self._pending: dict[int, tuple[str, str]] = {}  # index → (client, req)
        self._buffer: list[tuple[str, RsmUpdate | RsmQuery]] = []

        # Observability.
        self.elections_started = 0
        self.snapshots_taken = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self, now: float) -> Effects:
        effects = Effects()
        if self.role == "leader":
            effects.set_timer("heartbeat", self.config.heartbeat_interval)
        else:
            self._arm_election(effects)
        return effects

    def _arm_election(self, effects: Effects) -> None:
        timeout = self._rng.uniform(
            self.config.election_timeout_min, self.config.election_timeout_max
        )
        effects.set_timer("election", timeout)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: str, message: Any, now: float) -> Effects:
        if isinstance(message, (RsmUpdate, RsmQuery)):
            return self._on_client_command(src, message)
        if isinstance(message, Forwarded):
            return self._on_forwarded(message)
        if isinstance(message, RequestVote):
            return self._on_request_vote(src, message)
        if isinstance(message, RequestVoteReply):
            return self._on_request_vote_reply(src, message)
        if isinstance(message, AppendEntries):
            return self._on_append_entries(src, message)
        if isinstance(message, AppendEntriesReply):
            return self._on_append_entries_reply(src, message)
        if isinstance(message, InstallSnapshot):
            return self._on_install_snapshot(src, message)
        if isinstance(message, InstallSnapshotReply):
            return self._on_install_snapshot_reply(src, message)
        return Effects()

    def on_timer(self, key: str, now: float) -> Effects:
        if key == "election":
            return self._start_election()
        if key == "heartbeat":
            return self._on_heartbeat()
        return Effects()

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------
    def _start_election(self) -> Effects:
        effects = Effects()
        if self.role == "leader":
            return effects
        self.elections_started += 1
        self.role = "candidate"
        self.term += 1
        self.voted_for = self.node_id
        self.leader_id = None
        self._votes = {self.node_id}
        request = RequestVote(
            term=self.term,
            candidate=self.node_id,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        effects.broadcast(self.remotes, request)
        self._arm_election(effects)
        if len(self._votes) >= self.majority:  # single-node group
            self._become_leader(effects)
        return effects

    def _on_request_vote(self, src: str, msg: RequestVote) -> Effects:
        effects = Effects()
        if msg.term > self.term:
            self._step_down(msg.term, effects)
        granted = False
        if msg.term == self.term and self.voted_for in (None, msg.candidate):
            up_to_date = (msg.last_log_term, msg.last_log_index) >= (
                self.log.last_term,
                self.log.last_index,
            )
            if up_to_date and self.role != "leader":
                granted = True
                self.voted_for = msg.candidate
                self._arm_election(effects)
        effects.send(src, RequestVoteReply(term=self.term, granted=granted))
        return effects

    def _on_request_vote_reply(self, src: str, msg: RequestVoteReply) -> Effects:
        effects = Effects()
        if msg.term > self.term:
            self._step_down(msg.term, effects)
            return effects
        if self.role != "candidate" or msg.term != self.term or not msg.granted:
            return effects
        self._votes.add(src)
        if len(self._votes) >= self.majority:
            self._become_leader(effects)
        return effects

    def _become_leader(self, effects: Effects) -> None:
        self.role = "leader"
        self.leader_id = self.node_id
        for peer in self.remotes:
            self.next_index[peer] = self.log.last_index + 1
            self.match_index[peer] = 0
            self._outstanding[peer] = False
            self._dirty[peer] = False
        # A no-op entry lets the new leader commit (and thus learn the
        # commit frontier for) everything from earlier terms.
        self.log.append(LogEntry(term=self.term, kind="noop"))
        effects.cancel_timer("election")
        effects.set_timer("heartbeat", self.config.heartbeat_interval)
        for peer in self.remotes:
            self._send_append(peer, effects)
        self._advance_commit(effects)
        self._flush_buffer(effects)

    def _step_down(self, new_term: int, effects: Effects) -> None:
        was_leader = self.role == "leader"
        self.term = new_term
        self.voted_for = None
        self.role = "follower"
        self.leader_id = None
        self._votes = set()
        if was_leader:
            effects.cancel_timer("heartbeat")
        self._arm_election(effects)

    # ------------------------------------------------------------------
    # Client commands
    # ------------------------------------------------------------------
    def _on_client_command(
        self, client: str, msg: RsmUpdate | RsmQuery
    ) -> Effects:
        effects = Effects()
        if self.role == "leader":
            self._append_command(client, msg, effects)
        elif self.leader_id is not None and self.leader_id != self.node_id:
            effects.send(self.leader_id, Forwarded(client=client, message=msg))
        elif len(self._buffer) < _BUFFER_LIMIT:
            self._buffer.append((client, msg))
        return effects

    def _on_forwarded(self, msg: Forwarded) -> Effects:
        return self._on_client_command(msg.client, msg.message)

    def _append_command(
        self, client: str, msg: RsmUpdate | RsmQuery, effects: Effects
    ) -> None:
        kind = "update" if isinstance(msg, RsmUpdate) else "read"
        entry = LogEntry(
            term=self.term,
            kind=kind,
            command=msg.command,
            client=client,
            request_id=msg.request_id,
        )
        index = self.log.append(entry)
        self._pending[index] = (client, msg.request_id)
        for peer in self.remotes:
            if self._outstanding.get(peer):
                self._dirty[peer] = True
            else:
                self._send_append(peer, effects)
        self._advance_commit(effects)  # single-node groups commit instantly

    def _flush_buffer(self, effects: Effects) -> None:
        buffered, self._buffer = self._buffer, []
        for client, msg in buffered:
            if self.role == "leader":
                self._append_command(client, msg, effects)
            elif self.leader_id is not None:
                effects.send(self.leader_id, Forwarded(client=client, message=msg))
            else:
                self._buffer.append((client, msg))

    # ------------------------------------------------------------------
    # Log replication (leader side)
    # ------------------------------------------------------------------
    def _send_append(self, peer: str, effects: Effects) -> None:
        seq = self._rpc_seq.get(peer, 0) + 1
        self._rpc_seq[peer] = seq
        next_index = self.next_index[peer]
        if next_index <= self.log.base_index:
            effects.send(
                peer,
                InstallSnapshot(
                    term=self.term,
                    leader=self.node_id,
                    last_included_index=self.log.base_index,
                    last_included_term=self.log.base_term,
                    snapshot=self.snapshot_data,
                    seq=seq,
                ),
            )
            self._outstanding[peer] = True
            self._dirty[peer] = False
            return
        prev_index = next_index - 1
        prev_term = self.log.term_at(prev_index)
        assert prev_term is not None, "next_index points into compacted log"
        entries = self.log.slice_from(
            next_index, self.config.max_entries_per_append
        )
        effects.send(
            peer,
            AppendEntries(
                term=self.term,
                leader=self.node_id,
                prev_log_index=prev_index,
                prev_log_term=prev_term,
                entries=entries,
                leader_commit=self.commit_index,
                seq=seq,
            ),
        )
        self._outstanding[peer] = True
        self._dirty[peer] = False

    def _on_heartbeat(self) -> Effects:
        effects = Effects()
        if self.role != "leader":
            return effects
        for peer in self.remotes:
            # Force a send even with an RPC outstanding: this re-drives
            # followers whose replies were lost.
            self._send_append(peer, effects)
        effects.set_timer("heartbeat", self.config.heartbeat_interval)
        return effects

    def _on_append_entries_reply(
        self, src: str, msg: AppendEntriesReply
    ) -> Effects:
        effects = Effects()
        if msg.term > self.term:
            self._step_down(msg.term, effects)
            return effects
        if self.role != "leader" or msg.term != self.term:
            return effects
        if msg.seq != self._rpc_seq.get(src):
            # Reply to a superseded RPC (a heartbeat already retransmitted
            # past it); acting on it would fork a duplicate append stream.
            return effects
        self._outstanding[src] = False
        if msg.success:
            self.match_index[src] = max(self.match_index.get(src, 0), msg.match_index)
            self.next_index[src] = self.match_index[src] + 1
            self._advance_commit(effects)
        else:
            # Back off using the follower's hint, at least one step.
            self.next_index[src] = max(
                1, min(self.next_index[src] - 1, msg.match_index + 1)
            )
        if self._dirty.get(src) or self.next_index[src] <= self.log.last_index:
            self._send_append(src, effects)
        return effects

    def _advance_commit(self, effects: Effects) -> None:
        if self.role != "leader":
            return
        matches = sorted(
            [self.log.last_index] + [self.match_index.get(p, 0) for p in self.remotes],
            reverse=True,
        )
        candidate = matches[self.majority - 1]
        if candidate > self.commit_index and self.log.term_at(candidate) == self.term:
            self.commit_index = candidate
            self._apply_committed(effects)

    # ------------------------------------------------------------------
    # Log replication (follower side)
    # ------------------------------------------------------------------
    def _on_append_entries(self, src: str, msg: AppendEntries) -> Effects:
        effects = Effects()
        if msg.term < self.term:
            effects.send(
                src,
                AppendEntriesReply(
                    term=self.term,
                    success=False,
                    match_index=self.log.last_index,
                    seq=msg.seq,
                ),
            )
            return effects
        if msg.term > self.term or self.role != "follower":
            self._step_down(msg.term, effects)
        self.leader_id = msg.leader
        self._arm_election(effects)
        self._flush_buffer(effects)

        prev_index = msg.prev_log_index
        entries = msg.entries
        if prev_index < self.log.base_index:
            # Part of this append is already compacted here; clip it.
            skip = self.log.base_index - prev_index
            if skip >= len(entries) and prev_index + len(entries) <= self.log.base_index:
                effects.send(
                    src,
                    AppendEntriesReply(
                        term=self.term,
                        success=True,
                        match_index=self.log.base_index,
                        seq=msg.seq,
                    ),
                )
                return effects
            entries = entries[skip:]
            prev_index = self.log.base_index

        local_prev_term = self.log.term_at(prev_index)
        if local_prev_term is None or (
            prev_index > self.log.base_index
            and local_prev_term != msg.prev_log_term
        ):
            effects.send(
                src,
                AppendEntriesReply(
                    term=self.term,
                    success=False,
                    match_index=min(prev_index - 1, self.log.last_index),
                    seq=msg.seq,
                ),
            )
            return effects

        for offset, entry in enumerate(entries):
            index = prev_index + 1 + offset
            existing = self.log.entry(index)
            if existing is None:
                if index == self.log.last_index + 1:
                    self.log.append(entry)
                continue
            if existing.term != entry.term:
                for stale in range(index, self.log.last_index + 1):
                    self._pending.pop(stale, None)
                self.log.truncate_from(index)
                self.log.append(entry)

        match = prev_index + len(entries)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.log.last_index)
            self._apply_committed(effects)
        effects.send(
            src,
            AppendEntriesReply(
                term=self.term, success=True, match_index=match, seq=msg.seq
            ),
        )
        return effects

    def _on_install_snapshot(self, src: str, msg: InstallSnapshot) -> Effects:
        effects = Effects()
        if msg.term < self.term:
            effects.send(
                src,
                InstallSnapshotReply(
                    term=self.term,
                    last_included_index=self.log.base_index,
                    seq=msg.seq,
                ),
            )
            return effects
        if msg.term > self.term or self.role != "follower":
            self._step_down(msg.term, effects)
        self.leader_id = msg.leader
        self._arm_election(effects)
        if msg.last_included_index > self.log.base_index:
            self.machine.restore(msg.snapshot)
            self.snapshot_data = msg.snapshot
            self.log.reset_to_snapshot(
                msg.last_included_index, msg.last_included_term
            )
            self.commit_index = max(self.commit_index, msg.last_included_index)
            self.last_applied = msg.last_included_index
            self._pending.clear()
        effects.send(
            src,
            InstallSnapshotReply(
                term=self.term,
                last_included_index=msg.last_included_index,
                seq=msg.seq,
            ),
        )
        return effects

    def _on_install_snapshot_reply(
        self, src: str, msg: InstallSnapshotReply
    ) -> Effects:
        effects = Effects()
        if msg.term > self.term:
            self._step_down(msg.term, effects)
            return effects
        if self.role != "leader":
            return effects
        if msg.seq != self._rpc_seq.get(src):
            return effects
        self._outstanding[src] = False
        self.match_index[src] = max(
            self.match_index.get(src, 0), msg.last_included_index
        )
        self.next_index[src] = self.match_index[src] + 1
        if self.next_index[src] <= self.log.last_index:
            self._send_append(src, effects)
        return effects

    # ------------------------------------------------------------------
    # Applying committed entries
    # ------------------------------------------------------------------
    def _apply_committed(self, effects: Effects) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry(self.last_applied)
            assert entry is not None, "applying a compacted entry"
            if entry.kind == "update":
                self.machine.apply_update(entry.command)
            pending = self._pending.pop(self.last_applied, None)
            if pending is None:
                continue
            client, request_id = pending
            if entry.kind == "update":
                effects.send(client, RsmUpdateDone(request_id=request_id))
            elif entry.kind == "read":
                result = self.machine.apply_query(entry.command)
                effects.send(
                    client,
                    RsmQueryDone(
                        request_id=request_id,
                        result=result,
                        served_by=self.node_id,
                        via="log",
                    ),
                )
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        applied_in_log = self.last_applied - self.log.base_index
        if applied_in_log >= self.config.snapshot_threshold:
            self.snapshot_data = self.machine.snapshot()
            self.log.compact_to(self.last_applied)
            self.snapshots_taken += 1
