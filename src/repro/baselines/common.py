"""Shared building blocks for the log-based baseline protocols.

The paper's baselines replicate a *simple integer* (not a CRDT) through a
command log: "For Multi-Paxos and Raft, we used a simple replicated
integer as the counter."  :class:`IntCounter` is that integer;
:class:`StateMachine` is the generic interface so tests can replicate
richer machines too.

Client traffic uses one protocol-agnostic message family (``Rsm*``) so the
workload generator can drive Multi-Paxos, Raft and CRDT Paxos through the
same adapter seam.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.net.message import wire_size as _wire_size


class StateMachine(ABC):
    """A deterministic state machine replicated via a command log."""

    @abstractmethod
    def apply_update(self, command: Any) -> None:
        """Apply a state-modifying command (no return value)."""

    @abstractmethod
    def apply_query(self, command: Any) -> Any:
        """Evaluate a read-only command against the current state."""

    @abstractmethod
    def snapshot(self) -> Any:
        """Serializable copy of the full state (for log truncation)."""

    @abstractmethod
    def restore(self, snapshot: Any) -> None:
        """Replace the state with a snapshot."""


class IntCounter(StateMachine):
    """The replicated integer counter used in the paper's evaluation.

    Update commands: ``("incr", amount)``.  Query commands: ``("read",)``.
    """

    def __init__(self) -> None:
        self.value = 0

    def apply_update(self, command: Any) -> None:
        kind, amount = command
        if kind != "incr":
            raise ValueError(f"unknown update command: {command!r}")
        self.value += amount

    def apply_query(self, command: Any) -> Any:
        (kind,) = command
        if kind != "read":
            raise ValueError(f"unknown query command: {command!r}")
        return self.value

    def snapshot(self) -> Any:
        return self.value

    def restore(self, snapshot: Any) -> None:
        self.value = snapshot


# ----------------------------------------------------------------------
# Protocol-agnostic client messages
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RsmUpdate:
    """Client-submitted update command."""

    request_id: str
    command: Any

    def wire_size(self) -> int:
        return 8 + _wire_size(self.command)


@dataclass(frozen=True, slots=True)
class RsmQuery:
    """Client-submitted read command."""

    request_id: str
    command: Any

    def wire_size(self) -> int:
        return 8 + _wire_size(self.command)


@dataclass(frozen=True, slots=True)
class RsmUpdateDone:
    """Update applied (committed and executed at the serving replica)."""

    request_id: str

    def wire_size(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class RsmQueryDone:
    """Read completed with its result.

    ``served_by`` names the answering replica, and ``via`` how the read
    was served (``"lease"``, ``"log"``, …) — diagnostics for experiments.
    """

    request_id: str
    result: Any
    served_by: str = ""
    via: str = ""

    def wire_size(self) -> int:
        return 8 + _wire_size(self.result)


@dataclass(frozen=True, slots=True)
class Forwarded:
    """A client command relayed to the leader by a non-leader replica.

    Carries the original client address so the leader can reply directly.
    """

    client: str
    message: RsmUpdate | RsmQuery

    def wire_size(self) -> int:
        return 8 + self.message.wire_size()
