"""Simulated sharded deployments: N groups, one fabric, one coordinator.

:class:`ShardedSimDeployment` builds the whole multi-group shape on one
simulator/network pair: per group a
:class:`~repro.runtime.cluster.SimCluster` of
:class:`~repro.core.keyspace.KeyedCrdtReplica` replicas (addresses
``<group>-r0``, ``<group>-r1``, ...), each born with a
:class:`~repro.core.keyspace.GroupOwnership` over the deployment's
**birth table**, plus one :class:`~repro.sharding.migration
.MigrationCoordinator` runtime driving key moves.

The birth-table rule: *every* replica — including replicas of groups
added to the ring later — anchors its ownership to the same immutable
birth table.  A group created by :meth:`grow` therefore owns nothing at
birth and accrues keys strictly through committed migrations
(``moved_in`` marks); only the client-side
:class:`~repro.sharding.routing.RoutingService` ever sees grown tables.
This keeps replica-side ownership monotone and migration-driven — no
replica ever changes its mind about a key without an epoch-stamped
commit.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.api.sharded import ShardedStore
from repro.api.store import SimStore
from repro.core.config import CrdtPaxosConfig
from repro.core.keyspace import GroupOwnership, KeyedCrdtReplica
from repro.crdt.base import StateCRDT
from repro.net.sim_transport import SimNetwork
from repro.runtime.cluster import SimCluster, SimNodeRuntime
from repro.sharding.migration import MigrationCoordinator
from repro.sharding.routing import RoutingService, RoutingTable
from repro.sim.kernel import Simulator
from repro.sim.process import ServiceModel
from repro.storage.base import SpillStore


class ShardedSimDeployment:
    """N independent CRDT-Paxos groups plus a migration coordinator."""

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        groups: Iterable[str],
        initial_state_for: Callable[[Hashable], StateCRDT],
        *,
        n_replicas: int = 3,
        config: CrdtPaxosConfig | None = None,
        vnodes: int = 64,
        pins: dict[Hashable, str] | None = None,
        service_model: ServiceModel | None = None,
        spill_store_factory: Callable[[str], SpillStore] | None = None,
        coordinator_id: str = "shard-coordinator",
    ) -> None:
        self.sim = sim
        self.network = network
        self._initial_state_for = initial_state_for
        self._config = config
        self._n_replicas = n_replicas
        self._service_model = service_model
        self._spill_store_factory = spill_store_factory
        #: The immutable birth table every replica's ownership anchors to.
        self.birth_table = RoutingTable(groups, vnodes=vnodes, pins=pins)
        self.routing = RoutingService(self.birth_table)
        self.clusters: dict[str, SimCluster] = {}
        for name in self.birth_table.groups:
            self.clusters[name] = self._build_cluster(name, n_replicas)
        self.coordinator = MigrationCoordinator(
            coordinator_id,
            {
                name: list(cluster.addresses)
                for name, cluster in self.clusters.items()
            },
            self.routing,
            config=config,
        )
        self.coordinator_runtime = SimNodeRuntime(
            sim, network, self.coordinator, service_model
        )
        self.coordinator_runtime.start()

    # ------------------------------------------------------------------
    def _build_cluster(self, group: str, n_replicas: int) -> SimCluster:
        def factory(node_id: str, peers: list[str]) -> KeyedCrdtReplica:
            spill_store = (
                self._spill_store_factory(node_id)
                if self._spill_store_factory is not None
                else None
            )
            return KeyedCrdtReplica(
                node_id,
                peers,
                self._initial_state_for,
                self._config,
                spill_store=spill_store,
                ownership=GroupOwnership(group, self.birth_table),
            )

        return SimCluster(
            self.sim,
            self.network,
            factory,
            n_replicas=n_replicas,
            name_prefix=f"{group}-r",
            service_model=self._service_model,
        )

    def replicas(self, group: str) -> list[KeyedCrdtReplica]:
        cluster = self.clusters[group]
        return [cluster.node(address) for address in cluster.addresses]  # type: ignore[misc]

    def all_replicas(self) -> list[KeyedCrdtReplica]:
        return [r for group in self.clusters for r in self.replicas(group)]

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def store(
        self,
        client: str = "sharded",
        *,
        timeout: float = 1.0,
        max_attempts: int | None = None,
        max_bounces: int = 16,
    ) -> ShardedStore:
        """A :class:`~repro.api.sharded.ShardedStore` over every group,
        sharing this deployment's routing service (committed moves are
        visible to it immediately; WrongGroup hints cover the rest)."""
        def build(name: str) -> SimStore:
            return SimStore(
                self.clusters[name],
                client=f"{client}-{name}",
                timeout=timeout,
                max_attempts=max_attempts,
                keyed=True,
            )

        stores = {name: build(name) for name in self.clusters}
        # store_factory lets an already-issued client follow ring growth:
        # the first route to a grown group builds its frontend lazily.
        return ShardedStore(
            stores, self.routing, max_bounces=max_bounces, store_factory=build
        )

    # ------------------------------------------------------------------
    # Migration / membership change
    # ------------------------------------------------------------------
    def migrate(self, key: Hashable, target: str) -> None:
        """Start one live key move (freeze → install → commit)."""
        self.coordinator_runtime.apply_effects(
            self.coordinator.migrate(key, target, self.sim.now)
        )

    def grow(
        self,
        name: str,
        *,
        n_replicas: int | None = None,
        rebalance_keys: Iterable[Hashable] = (),
    ) -> list[tuple[Hashable, str]]:
        """Add a group to the ring and start the bounded rebalance.

        Builds the new group's cluster (born owning nothing — see the
        birth-table rule above), grows the client-side table, plans the
        bounded key movement for ``rebalance_keys`` (only keys whose arc
        the new group captures move) and starts those migrations.
        Returns the plan so callers can assert its bound.
        """
        cluster = self._build_cluster(
            name, n_replicas if n_replicas is not None else self._n_replicas
        )
        self.clusters[name] = cluster
        self.coordinator.add_group(name, list(cluster.addresses))
        # The grown table is a *planning* artifact: replica ownership
        # anchors to the birth table, and the client view converges per
        # key as each migration commits its override (epochs reserved
        # after the grown table's, so they always win).  Swapping the
        # client table wholesale would route keys at the new group
        # before it owns anything.
        grown = self.routing.grow(name)
        plan = self.routing.plan_rebalance(rebalance_keys, grown)
        self.coordinator_runtime.apply_effects(
            self.coordinator.rebalance(plan, self.sim.now)
        )
        return plan

    def shrink(
        self, name: str, keys: Iterable[Hashable]
    ) -> list[tuple[Hashable, str]]:
        """Drain a group: migrate its ``keys`` to the shrunk ring's
        owners.  The group's cluster stays up until the moves commit
        (its replicas must answer freezes); retire it afterwards."""
        shrunk = self.routing.shrink(name)
        plan = [
            (key, shrunk.owner(key))
            for key in keys
            if self.routing.owner(key) == name
        ]
        self.coordinator_runtime.apply_effects(
            self.coordinator.rebalance(plan, self.sim.now)
        )
        return plan

    def settle(self, max_steps: int = 200_000) -> bool:
        """Drive the simulator until every migration retires (or the
        event queue drains / the step budget expires).  True when the
        coordinator is idle."""
        steps = 0
        while not self.coordinator.idle and steps < max_steps:
            if not self.sim.step():
                break
            steps += 1
        return self.coordinator.idle

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def group_stats(self) -> dict[str, dict[str, Any]]:
        """Per-group aggregates: ops, migrations, refusals, residency."""
        stats: dict[str, dict[str, Any]] = {}
        for name, cluster in self.clusters.items():
            replicas = self.replicas(name)
            stats[name] = {
                "replicas": list(cluster.addresses),
                "updates_completed": sum(
                    r.stats.updates_completed for r in replicas
                ),
                "queries_completed": sum(
                    r.stats.queries_completed for r in replicas
                ),
                "wrong_group_refusals": sum(
                    r.wrong_group_refusals for r in replicas
                ),
                "migrations_out": sum(r.migrations_out for r in replicas),
                "migrations_in": sum(r.migrations_in for r in replicas),
                "resident": sum(r.resident_count() for r in replicas),
            }
        return stats
