"""Log-less key migration between CRDT-Paxos groups.

The §3.3 observation that makes this cheap: a key's entire durable
state is the ``(payload, round, learned-max)`` triple, so moving it is
a quorum read + install — freeze the source group, join a read quorum
of frozen snapshots, install the joined triple at a write quorum of the
destination, commit.  No log shipping, no leader hand-off (the groups
are leaderless).

Phases driven by :class:`MigrationCoordinator` (one sans-io node):

1. **freeze** — broadcast :class:`~repro.core.messages.MigrateFreeze` to
   the source group.  A frozen replica stops acking the key forever
   (until commit), so any update that ever completed has its write
   quorum of acks *before* each member's freeze point — the snapshot
   read quorum intersects it and the fold below subsumes every
   certified state.
2. **install** — once a read quorum of source snapshots is folded
   (state join, round max, learned-max join), broadcast
   :class:`~repro.core.messages.MigrateInstall` to the destination
   group; destinations fold the triple in (the same monotone refresh a
   rejoining replica performs) and buffer client commands for the key.
3. **commit** — once a write quorum of destinations acked the install,
   the move is law: routing commits the override, and
   :class:`~repro.core.messages.MigrateCommit` tells sources to drop
   the key behind a durable forwarding mark and destinations to serve
   (replaying what they buffered).

Each phase re-drives on a jittered exponential backoff until its quorum
answers; commit re-drives until every member acked or the re-drive
budget expires (a member that never hears the commit stays frozen, which
is safe — its forwarding hint already points at the target).
"""

from __future__ import annotations

import zlib
from typing import Any, Hashable, Mapping

from repro.core.config import CrdtPaxosConfig
from repro.core.keyspace import Keyed
from repro.core.messages import (
    MigrateCommit,
    MigrateCommitAck,
    MigrateFreeze,
    MigrateFrozen,
    MigrateInstall,
    MigrateInstalled,
)
from repro.errors import ConfigurationError
from repro.net.node import Effects, ProtocolNode
from repro.quorum.system import MajorityQuorum
from repro.sharding.routing import RoutingService

#: Per-migration re-drive timer prefix (namespaced by request id).
_MIG_TIMER = "mig|"

#: Commit re-drives after which a migration retires even with members
#: unacked: the move is already law (routing committed at install
#: quorum), and a permanently dead member's durable freeze mark keeps it
#: safe — it forwards clients to the target forever.
_COMMIT_REDRIVE_LIMIT = 25


class _Migration:
    """One in-flight key move."""

    __slots__ = (
        "request_id",
        "key",
        "source",
        "target",
        "epoch",
        "phase",
        "replied",
        "acked",
        "state",
        "round",
        "learned_max",
        "rounds",
        "commit_redrives",
    )

    def __init__(
        self, request_id: str, key: Hashable, source: str, target: str, epoch: int
    ) -> None:
        self.request_id = request_id
        self.key = key
        self.source = source
        self.target = target
        self.epoch = epoch
        self.phase = "freeze"
        #: Members that answered the current phase (reset per phase).
        self.replied: set[str] = set()
        #: Members (source ∪ target) that acked the commit.
        self.acked: set[str] = set()
        self.state: Any = None
        self.round: Any = None
        self.learned_max: Any = None
        #: Fruitless re-drive rounds in the current phase (backoff).
        self.rounds = 0
        self.commit_redrives = 0


class MigrationCoordinator(ProtocolNode):
    """Sans-io coordinator driving key moves between groups.

    Parameters
    ----------
    groups:
        ``group name → member addresses`` for every group it may touch.
    routing:
        The :class:`~repro.sharding.routing.RoutingService` that issues
        migration epochs and records committed moves.
    config:
        Backoff law for re-drives (``request_timeout`` as base cadence,
        ``backoff_multiplier``/``backoff_cap``/``backoff_jitter``).
    """

    def __init__(
        self,
        node_id: str,
        groups: Mapping[str, list[str]],
        routing: RoutingService,
        config: CrdtPaxosConfig | None = None,
    ) -> None:
        super().__init__(node_id)
        if not groups:
            raise ConfigurationError("coordinator needs at least one group")
        self.groups = {name: list(members) for name, members in groups.items()}
        self.quorums = {
            name: MajorityQuorum(members) for name, members in self.groups.items()
        }
        self.routing = routing
        self.config = config or CrdtPaxosConfig()
        self._open: dict[str, _Migration] = {}
        self._by_key: dict[Hashable, str] = {}
        self._seq = 0
        #: Observability.
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_retired = 0
        self.redrives = 0

    # ------------------------------------------------------------------
    def add_group(self, name: str, members: list[str]) -> None:
        """Register a group added to the ring after construction."""
        if name in self.groups:
            raise ConfigurationError(f"group {name!r} already registered")
        self.groups[name] = list(members)
        self.quorums[name] = MajorityQuorum(members)

    @property
    def idle(self) -> bool:
        return not self._open

    def open_count(self) -> int:
        return len(self._open)

    def on_start(self, now: float) -> Effects:
        return Effects()

    # ------------------------------------------------------------------
    def migrate(self, key: Hashable, target: str, now: float) -> Effects:
        """Start moving ``key`` to ``target``; returns the freeze burst.

        A no-op (empty effects) when the key already lives at ``target``
        or a move for it is in flight — per-key moves are serialized,
        while moves of *different* keys run concurrently (each owns a
        reserved epoch, and the per-key marks compare epochs per key, so
        out-of-order commits across keys are harmless).
        """
        if target not in self.groups:
            raise ConfigurationError(f"unknown target group {target!r}")
        if key in self._by_key:
            return Effects()
        source = self.routing.owner(key)
        if source == target:
            return Effects()
        if source not in self.groups:
            raise ConfigurationError(f"unknown source group {source!r}")
        self._seq += 1
        request_id = f"mig:{self.node_id}:{self._seq}"
        migration = _Migration(
            request_id, key, source, target, self.routing.reserve_epoch()
        )
        self._open[request_id] = migration
        self._by_key[key] = request_id
        self.migrations_started += 1
        effects = Effects()
        self._drive(migration, effects)
        return effects

    def rebalance(
        self, plan: list[tuple[Hashable, str]], now: float
    ) -> Effects:
        """Start every move in a :meth:`RoutingService.plan_rebalance` plan."""
        effects = Effects()
        for key, target in plan:
            effects.merge(self.migrate(key, target, now))
        return effects

    # ------------------------------------------------------------------
    def _drive(self, migration: _Migration, effects: Effects) -> None:
        """(Re-)broadcast the current phase and arm its re-drive timer."""
        if migration.phase == "freeze":
            message: Any = MigrateFreeze(
                request_id=migration.request_id,
                epoch=migration.epoch,
                target=migration.target,
            )
            members = self.groups[migration.source]
        elif migration.phase == "install":
            message = MigrateInstall(
                request_id=migration.request_id,
                epoch=migration.epoch,
                round=migration.round,
                state=migration.state,
                learned_max=migration.learned_max,
            )
            members = self.groups[migration.target]
        else:  # commit: source ∪ target, minus members that already acked
            message = MigrateCommit(
                request_id=migration.request_id,
                epoch=migration.epoch,
                target=migration.target,
            )
            members = [
                m
                for m in (
                    *self.groups[migration.source],
                    *self.groups[migration.target],
                )
                if m not in migration.acked
            ]
        keyed = Keyed(key=migration.key, message=message)
        for dst in members:
            effects.send(dst, keyed)
        effects.set_timer(
            _MIG_TIMER + migration.request_id, self._delay(migration)
        )

    def _delay(self, migration: _Migration) -> float:
        config = self.config
        base = config.request_timeout if config.request_timeout is not None else 0.05
        delay = min(
            base * config.backoff_multiplier**migration.rounds,
            config.backoff_cap,
        )
        if config.backoff_jitter > 0.0:
            # Deterministic jitter (seeded runs stay bit-identical).
            token = f"{migration.request_id}:{migration.phase}:{migration.rounds}"
            frac = (zlib.crc32(token.encode()) % 1000) / 999.0
            delay *= 1.0 + config.backoff_jitter * frac
        return delay

    def _retire(self, migration: _Migration, effects: Effects) -> None:
        del self._open[migration.request_id]
        if self._by_key.get(migration.key) == migration.request_id:
            del self._by_key[migration.key]
        effects.cancel_timer(_MIG_TIMER + migration.request_id)
        self.migrations_retired += 1

    # ------------------------------------------------------------------
    def on_message(self, src: str, message: Any, now: float) -> Effects:
        if isinstance(message, Keyed):
            message = message.message
        request_id = getattr(message, "request_id", None)
        migration = self._open.get(request_id) if request_id is not None else None
        if migration is None:
            return Effects()  # retired or not ours
        effects = Effects()
        if isinstance(message, MigrateFrozen) and migration.phase == "freeze":
            if src in migration.replied:
                return effects
            migration.replied.add(src)
            migration.rounds = 0
            # Fold the snapshot: join is the lattice's least upper bound,
            # so the quorum fold subsumes every state any completed
            # update certified (quorum intersection).
            migration.state = (
                message.state
                if migration.state is None
                else migration.state.join(message.state)
            )
            if (
                migration.round is None
                or message.round.number > migration.round.number
            ):
                migration.round = message.round
            if message.learned_max is not None:
                migration.learned_max = (
                    message.learned_max
                    if migration.learned_max is None
                    else migration.learned_max.join(message.learned_max)
                )
            if self.quorums[migration.source].is_quorum(migration.replied):
                migration.phase = "install"
                migration.replied = set()
                migration.rounds = 0
                self._drive(migration, effects)
        elif isinstance(message, MigrateInstalled) and migration.phase == "install":
            if src in migration.replied:
                return effects
            migration.replied.add(src)
            migration.rounds = 0
            if self.quorums[migration.target].is_quorum(migration.replied):
                # The installed triple is durable at a write quorum of
                # the destination: the move is law.
                self.routing.commit_move(
                    migration.key, migration.target, migration.epoch
                )
                migration.phase = "commit"
                migration.rounds = 0
                self.migrations_completed += 1
                self._drive(migration, effects)
        elif isinstance(message, MigrateCommitAck):
            migration.acked.add(src)
            everyone = set(self.groups[migration.source]) | set(
                self.groups[migration.target]
            )
            if migration.acked >= everyone:
                self._retire(migration, effects)
        return effects

    def on_timer(self, key: str, now: float) -> Effects:
        if not key.startswith(_MIG_TIMER):
            return Effects()
        migration = self._open.get(key[len(_MIG_TIMER):])
        if migration is None:
            return Effects()
        effects = Effects()
        migration.rounds += 1
        self.redrives += 1
        if migration.phase == "commit":
            migration.commit_redrives += 1
            if migration.commit_redrives > _COMMIT_REDRIVE_LIMIT:
                self._retire(migration, effects)
                return effects
        self._drive(migration, effects)
        return effects
