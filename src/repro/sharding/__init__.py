"""Sharded multi-group keyspace: routing, log-less migration, membership.

One CRDT-Paxos group caps the system at a single protocol instance per
node; this package is the first layer above the group.  A versioned
:class:`~repro.sharding.routing.RoutingTable` (consistent-hash ring
with virtual nodes, plus explicit pins) partitions the keyspace across
N independent groups — each its own
:class:`~repro.core.keyspace.KeyedCrdtReplica` set with its own spill
store — and a :class:`~repro.sharding.migration.MigrationCoordinator`
moves keys between groups live, under traffic, **without logs**: the
paper's §3.3 observation that a key's entire durable state is the
``(payload, round, learned-max)`` triple makes a migration a quorum
read + install, the same log-less reconfiguration family CASPaxos uses
per key.

Routing epochs
==============
Every change of ownership is stamped with a strictly increasing
*routing epoch* issued by the client-side
:class:`~repro.sharding.routing.RoutingService`.  Replicas are born
with a :class:`~repro.core.keyspace.GroupOwnership` over an immutable
**birth table** and accrue every later change as an explicit per-key,
epoch-stamped mark (``moved_out`` / ``moved_in`` / in-flight freeze),
persisted in the spill meta so ownership survives ``kill -9``.  A
replica refuses commands for keys it does not serve with a
:class:`~repro.core.messages.WrongGroup` carrying the highest
``(epoch, owner)`` hint it can attest; clients fold hints into their
routing snapshot (newest epoch wins), so a stale client converges in a
bounded number of bounces and *safety never rests on client routing* —
the worst a stale table costs is extra hops.

Migration protocol (freeze → install → commit)
==============================================
1. **Freeze.**  The coordinator broadcasts ``MigrateFreeze(epoch,
   target)`` to the source group.  A frozen replica stops serving the
   key (clients get the forwarding hint; peer protocol traffic for the
   key is *dropped*) and snapshots its triple in ``MigrateFrozen``.
   Freezing is what makes the read sound: a frozen replica never acks
   again, so any update that ever completes has a write quorum of acks
   *before* each member's freeze point — the coordinator's snapshot
   read quorum intersects that write quorum, and the join of the
   snapshots subsumes every certified state.  Freeze marks persist
   before the snapshot reply escapes (persist-before-ack), so a source
   replica that dies and recovers stays frozen.
2. **Install.**  The joined triple (state join, round max, learned-max
   join) goes to the destination group, which folds it in exactly like
   a rejoin-style quorum refresh — joining is monotone, so re-driven
   installs are idempotent.  Destinations buffer client commands for
   the key from install until commit: serving early could let a
   destination read quorum form before the installed triple is
   replicated widely enough.
3. **Commit.**  Once a write quorum of destinations acked the install,
   the move is law: routing records the override, sources drop the
   key's record behind a durable ``moved_out`` mark (late traffic gets
   the forwarding hint forever), destinations mark ``moved_in`` and
   replay their buffer through the normal client path.  Commit
   re-drives until every member acks (or a bounded budget expires — an
   unreachable member's durable freeze mark keeps it safe meanwhile).

Ring growth/shrink generalizes this to bulk rebalancing: only keys
whose arc the new group's virtual nodes capture move (bounded
movement), each via the same per-key protocol with its own epoch.

Failure matrix
==============
=============================  ==================================================
Fault                          Why the migration stays safe
=============================  ==================================================
Source member hard-killed      Freeze mark persisted before the snapshot reply
mid-freeze                     escaped; recovery restores it as a freeze, so the
                               dead generation can never ack an update the
                               coordinator's snapshot missed.  The coordinator
                               only needs a *quorum* of snapshots.
Destination member killed      Installs are idempotent joins; the re-driven
mid-install                    install refreshes the recovered member.  Commit
                               waits for a write quorum of installs.
Coordinator↔destination        Install re-drives on jittered exponential
partition                      backoff; sources stay frozen (clients bounce to
                               the target and buffer there or retry) until the
                               partition heals.  No timeout-based unfreeze
                               exists — safety never depends on timing.
Stale client                   Bounces off refusing replicas, folding
                               epoch-stamped hints; converges monotonically.
Duplicate/reordered commands   Every phase message is idempotent (epoch
                               comparisons per key); re-drives are
                               indistinguishable from duplicates.
Key migrated back (A→B→A)      Per-key marks compare epochs: the newer commit
                               clears the older direction's marks.
=============================  ==================================================
"""

from repro.sharding.deployment import ShardedSimDeployment
from repro.sharding.migration import MigrationCoordinator
from repro.sharding.routing import RoutingService, RoutingTable, stable_hash

__all__ = [
    "MigrationCoordinator",
    "RoutingService",
    "RoutingTable",
    "ShardedSimDeployment",
    "stable_hash",
]
