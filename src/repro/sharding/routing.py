"""Versioned key→group routing: consistent-hash ring plus pin overrides.

A :class:`RoutingTable` is an immutable, epoch-stamped assignment of the
keyspace to named groups.  Ownership is decided by a consistent-hash
ring with ``vnodes`` virtual points per group (bounded key movement when
the ring grows or shrinks: only keys whose arc the new group's points
capture move) unless an explicit ``pins`` override names the key's
group directly — the range/pin escape hatch for keys that must live
somewhere specific (hot keys split away from their arc, tenant
placement, migration testing).

A :class:`RoutingService` holds the *client-side* view: the current
table, a monotone epoch source for migrations, and the per-key
``(epoch, group)`` overrides committed moves produce.  Replicas never
consult it — each replica is born with a
:class:`~repro.core.keyspace.GroupOwnership` over its **birth table**
and accrues every later change as an explicit epoch-stamped migration
mark, so a stale client can never make a replica serve a key it does
not own (the replica refuses with its own attested hint).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Hashable, Iterable, Mapping

from repro.errors import ConfigurationError

#: Lazily bound :func:`repro.wire.keys.stable_key_hash` — the wire
#: package's init closes over the protocol modules, so binding at first
#: use keeps this module importable from anywhere in that chain.
_key_hash: Callable[[Any], int] | None = None


def stable_hash(value: Any) -> int:
    """Process-independent hash for ring placement.

    ``hash()`` is salted per process, and ``repr``-based digests break
    on containers whose iteration order follows the hash seed
    (frozensets).  CRC32 over the wire codec's canonical key encoding
    keeps seeded simulations, recovered replicas, and separate OS
    processes bit-identical to each other for every key shape the
    deployments use.
    """
    global _key_hash
    if _key_hash is None:
        from repro.wire.keys import stable_key_hash

        _key_hash = stable_key_hash
    return _key_hash(value)


class RoutingTable:
    """Immutable epoch-stamped key→group assignment.

    Parameters
    ----------
    groups:
        Ordered group names (≥1, unique, non-empty).
    vnodes:
        Virtual points per group on the ring; more points smooth the
        arc distribution at the cost of a larger (still tiny) ring.
    pins:
        ``key → group`` overrides consulted before the ring.
    epoch:
        The routing epoch this table was born at.
    """

    __slots__ = ("groups", "vnodes", "pins", "epoch", "_points", "_owners")

    def __init__(
        self,
        groups: Iterable[str],
        vnodes: int = 64,
        pins: Mapping[Hashable, str] | None = None,
        epoch: int = 0,
    ) -> None:
        names = list(groups)
        if not names:
            raise ConfigurationError("a routing table needs at least one group")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate group names in {names!r}")
        if any(not name for name in names):
            raise ConfigurationError("group names must be non-empty strings")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.groups: tuple[str, ...] = tuple(names)
        self.vnodes = vnodes
        self.pins: dict[Hashable, str] = dict(pins or {})
        for key, group in self.pins.items():
            if group not in self.groups:
                raise ConfigurationError(
                    f"pin {key!r} -> {group!r} names an unknown group"
                )
        self.epoch = int(epoch)
        ring: list[tuple[int, str]] = []
        for name in self.groups:
            for i in range(vnodes):
                ring.append((stable_hash(f"{name}#vnode:{i}"), name))
        # Ties (CRC collisions between groups) resolve by name so the
        # ring is deterministic regardless of insertion order.
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]

    def owner(self, key: Hashable) -> str:
        """The group serving ``key`` under this table."""
        pinned = self.pins.get(key)
        if pinned is not None:
            return pinned
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._owners):
            index = 0  # wrap: past the last point means the first owner
        return self._owners[index]

    def with_group(self, name: str, epoch: int | None = None) -> "RoutingTable":
        """A new table with ``name`` added (ring growth)."""
        if name in self.groups:
            raise ConfigurationError(f"group {name!r} already in the ring")
        return RoutingTable(
            (*self.groups, name),
            vnodes=self.vnodes,
            pins=self.pins,
            epoch=self.epoch + 1 if epoch is None else epoch,
        )

    def without_group(self, name: str, epoch: int | None = None) -> "RoutingTable":
        """A new table with ``name`` removed (ring shrink)."""
        if name not in self.groups:
            raise ConfigurationError(f"group {name!r} not in the ring")
        remaining = tuple(g for g in self.groups if g != name)
        if not remaining:
            raise ConfigurationError("cannot remove the last group")
        pins = {k: g for k, g in self.pins.items() if g != name}
        return RoutingTable(
            remaining,
            vnodes=self.vnodes,
            pins=pins,
            epoch=self.epoch + 1 if epoch is None else epoch,
        )


class RoutingService:
    """The client/coordinator-side routing view: table + move overrides.

    The service answers :meth:`owner` from the per-key overrides that
    committed migrations produce (epoch-stamped, newest wins) before
    falling back to the table, reserves strictly increasing epochs for
    in-flight migrations, and swaps tables on :meth:`grow`/:meth:`shrink`.
    It is plain bookkeeping — safety never rests on it (replicas attest
    their own ownership), only routing efficiency does.
    """

    __slots__ = ("table", "overrides", "_next_epoch")

    def __init__(self, table: RoutingTable) -> None:
        self.table = table
        #: ``key → (epoch, group)`` — committed moves newer than the table.
        self.overrides: dict[Hashable, tuple[int, str]] = {}
        self._next_epoch = table.epoch

    @property
    def epoch(self) -> int:
        """The highest routing epoch this service has issued or seen."""
        return self._next_epoch

    def owner(self, key: Hashable) -> str:
        override = self.overrides.get(key)
        if override is not None:
            return override[1]
        return self.table.owner(key)

    def reserve_epoch(self) -> int:
        """A fresh epoch for one migration (strictly increasing)."""
        self._next_epoch += 1
        return self._next_epoch

    def note(self, key: Hashable, epoch: int, group: str) -> None:
        """Fold a WrongGroup forwarding hint in (newest epoch wins)."""
        current = self.overrides.get(key)
        if current is None or current[0] < epoch:
            self.overrides[key] = (int(epoch), group)
        if epoch > self._next_epoch:
            self._next_epoch = epoch

    def commit_move(self, key: Hashable, target: str, epoch: int) -> None:
        """Record one committed migration."""
        self.note(key, epoch, target)

    def set_table(self, table: RoutingTable) -> None:
        """Swap in a grown/shrunk table; stale overrides are dropped."""
        if table.epoch > self._next_epoch:
            self._next_epoch = table.epoch
        self.table = table
        self.overrides = {
            key: mark
            for key, mark in self.overrides.items()
            if mark[0] > table.epoch
        }

    def grow(self, name: str) -> RoutingTable:
        """Add a group to the ring; returns the new table (not yet live
        for replicas — keys still have to migrate, see
        :meth:`plan_rebalance`)."""
        table = self.table.with_group(name, epoch=self.reserve_epoch())
        return table

    def shrink(self, name: str) -> RoutingTable:
        """Remove a group from the ring; returns the new table."""
        table = self.table.without_group(name, epoch=self.reserve_epoch())
        return table

    def plan_rebalance(
        self, keys: Iterable[Hashable], to_table: RoutingTable
    ) -> list[tuple[Hashable, str]]:
        """Which of ``keys`` must move to reach ``to_table``, and where.

        Compares each key's *current* owner (overrides included) with the
        target table's owner; unmoved keys are omitted — the bounded-
        movement property of the consistent-hash ring shows up here as a
        short plan.  Keys pinned off their ring arc by an earlier
        migration are repatriated to wherever ``to_table`` places them:
        after the plan executes, the table alone routes every key, which
        is exactly what :meth:`set_table` assumes when it drops the
        now-stale overrides.
        """
        plan: list[tuple[Hashable, str]] = []
        for key in keys:
            target = to_table.owner(key)
            if self.owner(key) != target:
                plan.append((key, target))
        return plan
