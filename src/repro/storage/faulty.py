"""Fault-injecting spill-store wrapper for nemesis campaigns.

A disk does not fail by raising a polite exception at a convenient
moment: writes error mid-burst, fsyncs return failure after the page
cache accepted the bytes, and a torn frame may sit at the end of a
segment.  :class:`FaultySpillStore` wraps any backend and injects
exactly those failures — deterministically under a seed, or on command
via an explicit brownout window — so the keyed replica's
persist-before-ack contract can be exercised: a failed write-through
persist must *refuse* the step's acks (never crash, never ack), and
service must resume by itself once the faults clear.

Failure model
=============

* ``put`` / ``put_meta`` — raise :class:`~repro.errors.StorageUnavailable`
  with probability ``put_failure_probability`` (or always, inside a
  :meth:`break_io` window).  With ``partial_write_probability`` the
  failure is recorded as a *partial* (torn) write: the new frame never
  becomes visible — segmented backends discard torn tails on recovery,
  so the delegate keeps the previous record — but bytes hit the device,
  which is why it is counted separately.
* ``flush`` — raise with ``flush_failure_probability`` (or inside a
  brownout): the fsync itself failed, so nothing since the last
  successful flush may be assumed durable.
* Reads (``get`` / ``keys`` / ``get_meta``) pass through unharmed: a
  brownout device typically still serves its cache, and failing reads
  would only mask the interesting write-path bugs.

Everything else (``drain_accrued``, ``crash``, byte counters, …) is
forwarded to the delegate, so the wrapper composes with
:class:`~repro.storage.latency.LatencySpillStore` and
:class:`~repro.storage.volatile.VolatileSpillStore` in either order.
"""

from __future__ import annotations

import random
from typing import Any, Hashable

from repro.errors import StorageUnavailable
from repro.storage.base import SpillRecord, SpillStore


class FaultySpillStore(SpillStore):
    """Wraps any backend, injecting seeded put/fsync failures."""

    def __init__(
        self,
        delegate: SpillStore,
        seed: int = 0,
        put_failure_probability: float = 0.0,
        flush_failure_probability: float = 0.0,
        partial_write_probability: float = 0.0,
    ) -> None:
        for name, p in (
            ("put_failure_probability", put_failure_probability),
            ("flush_failure_probability", flush_failure_probability),
            ("partial_write_probability", partial_write_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.delegate = delegate
        self._rng = random.Random(seed)
        self.put_failure_probability = put_failure_probability
        self.flush_failure_probability = flush_failure_probability
        self.partial_write_probability = partial_write_probability
        self._broken = False
        self.put_failures = 0
        self.flush_failures = 0
        self.partial_writes = 0

    # ------------------------------------------------------------------
    # Brownout window
    # ------------------------------------------------------------------
    @property
    def broken(self) -> bool:
        """Inside a :meth:`break_io` window (every write fails)."""
        return self._broken

    def break_io(self) -> None:
        """Start a brownout: every put/flush fails until :meth:`heal_io`."""
        self._broken = True

    def heal_io(self) -> None:
        """End the brownout; probabilistic faults (if any) still apply."""
        self._broken = False

    def _fail_write(self, op: str) -> None:
        if self.partial_write_probability > 0.0 and (
            self._rng.random() < self.partial_write_probability
        ):
            # Bytes hit the device but the frame is torn: recovery
            # discards it, so the previous record stays authoritative.
            self.partial_writes += 1
            raise StorageUnavailable(
                f"injected partial {op}: frame torn mid-write, previous "
                "record remains authoritative"
            )
        raise StorageUnavailable(f"injected {op} failure")

    def _maybe_fail_put(self, op: str) -> None:
        if self._broken or (
            self.put_failure_probability > 0.0
            and self._rng.random() < self.put_failure_probability
        ):
            self.put_failures += 1
            self._fail_write(op)

    # ------------------------------------------------------------------
    # SpillStore contract
    # ------------------------------------------------------------------
    def put(self, key: Hashable, record: SpillRecord) -> None:
        self._maybe_fail_put("put")
        self.delegate.put(key, record)

    def get(self, key: Hashable) -> SpillRecord | None:
        return self.delegate.get(key)

    def delete(self, key: Hashable) -> bool:
        self._maybe_fail_put("delete")
        return self.delegate.delete(key)

    def keys(self) -> list[Hashable]:
        return self.delegate.keys()

    def __len__(self) -> int:
        return len(self.delegate)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.delegate

    def put_meta(self, meta: dict[str, Any]) -> None:
        self._maybe_fail_put("put_meta")
        self.delegate.put_meta(meta)

    def get_meta(self) -> dict[str, Any] | None:
        return self.delegate.get_meta()

    def flush(self) -> None:
        if self._broken or (
            self.flush_failure_probability > 0.0
            and self._rng.random() < self.flush_failure_probability
        ):
            self.flush_failures += 1
            self._fail_write("flush")
        self.delegate.flush()

    def close(self) -> None:
        self.delegate.close()

    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # Forward delegate extras (drain_accrued, crash, byte counters…)
        # so the wrapper composes with the latency/volatile stores.
        return getattr(self.delegate, name)
