"""The spill-store contract: durable homes for frozen key records.

The paper's central observation (§3.3) is that an acceptor's *entire*
durable state is the pair ``(payload, round)`` — there is no log, so
there is nothing to replay.  A keyed replica already demotes cold keys
to exactly that record in RAM (:class:`~repro.core.keyspace.KeyedCrdtReplica`);
a :class:`SpillStore` is the second demotion tier, holding the same
records on disk (or any byte store) so the keyspace is bounded only by
storage, not by RAM.  Zheng & Garg make the same point for lattice
agreement RSMs: join-semilattice state subsumes the log, so recovery
from a snapshot needs no replay.

A store maps an arbitrary hashable key to one :class:`SpillRecord`
(payload, round watermark, §3.4 learned maximum) — last ``put`` wins —
plus one optional node-level *meta* mapping used to persist the shared
monotone counters (batch ids, learn sequence, round ids) across a
restart so a recovered node can never reuse an identifier a stale
in-flight reply might still answer.

Backends:

* :class:`~repro.storage.memory.InMemorySpillStore` — byte-faithful
  dict backend for tests (records still round-trip through the codec,
  so serialization bugs cannot hide behind object sharing);
* :class:`~repro.storage.segmented.SegmentedSpillStore` — append-mostly
  segmented files with an in-memory index and compaction;
* :class:`~repro.storage.latency.LatencySpillStore` — wraps any backend
  with a deterministic latency model for the simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

from repro.core.rounds import Round
from repro.crdt.base import StateCRDT


class SpillRecord:
    """One spilled key: the acceptor's durable state, nothing else.

    Mirrors the in-RAM frozen record bit for bit: lattice payload, round
    watermark, and (when GLA-Stability ran) the §3.4 learned maximum.
    """

    __slots__ = ("state", "round", "learned_max")

    def __init__(
        self,
        state: StateCRDT,
        round: Round,
        learned_max: StateCRDT | None = None,
    ) -> None:
        self.state = state
        self.round = round
        self.learned_max = learned_max

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpillRecord(state={self.state!r}, round={self.round!r}, "
            f"learned_max={self.learned_max!r})"
        )


class SpillStore(ABC):
    """Durable key → :class:`SpillRecord` mapping (last put wins)."""

    @abstractmethod
    def put(self, key: Hashable, record: SpillRecord) -> None:
        """Store (or overwrite) one key's record."""

    @abstractmethod
    def get(self, key: Hashable) -> SpillRecord | None:
        """The key's latest record, or None if never spilled."""

    @abstractmethod
    def delete(self, key: Hashable) -> bool:
        """Drop a key's record; True if one existed."""

    @abstractmethod
    def keys(self) -> list[Hashable]:
        """Every key currently holding a record."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of keys with a record."""

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Node-level metadata (shared counters; see module docstring)
    # ------------------------------------------------------------------
    @abstractmethod
    def put_meta(self, meta: dict[str, Any]) -> None:
        """Persist the node-level meta mapping (last put wins)."""

    @abstractmethod
    def get_meta(self) -> dict[str, Any] | None:
        """The latest meta mapping, or None if never written."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Make every completed ``put`` durable (fsync point)."""

    def close(self) -> None:
        """Release resources; the store must be reopenable by path."""
