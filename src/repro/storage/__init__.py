"""Durable spill tier for the keyed CRDT store.

See :mod:`repro.storage.base` for the contract and the safety argument
(the paper's logless acceptor pair is the *entire* durable state, so
spilled records need no log and recovery needs no replay).
"""

from repro.storage.base import SpillRecord, SpillStore
from repro.storage.latency import LatencySpillStore
from repro.storage.memory import InMemorySpillStore
from repro.storage.segmented import SegmentedSpillStore

__all__ = [
    "SpillRecord",
    "SpillStore",
    "InMemorySpillStore",
    "SegmentedSpillStore",
    "LatencySpillStore",
]
