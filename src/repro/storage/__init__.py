"""Durable spill tier for the keyed CRDT store.

See :mod:`repro.storage.base` for the contract and the safety argument
(the paper's logless acceptor pair is the *entire* durable state, so
spilled records need no log and recovery needs no replay).

Durability modes
================

How much of that pair survives a hard kill is governed by
``CrdtPaxosConfig.durability``, which decides *when* the keyed replica
writes to its spill store relative to the acks it emits:

``"none"`` (default)
    Records reach the store only on demotion (frozen-tier overflow) and
    on the planned ``spill_all()`` shutdown hook.  Cheapest, and exactly
    as safe as the paper's in-memory acceptor: a kill -9 loses promises
    made since the last spill, so a recovered replica must not serve its
    stale pairs directly — ``KeyedCrdtReplica.recover`` refuses a store
    without a clean-shutdown marker unless ``rejoin=True`` refreshes
    each key from a read quorum (a §3.3 prepare) before first use.

``"write_through"``
    The log-less analogue of an acceptor fsync: after every handling
    step that changed a key's ``(payload, round, learned-max)`` triple,
    the triple is ``put`` and the store flushed *before* the step's
    effects (the MERGED / PREPARE-ACK / VOTED acks, the client's done
    messages) escape the replica.  Any promise a peer has seen is
    durable, so recovery is sound without a rejoin.

``"group_sync"``
    Write-through with an amortized fsync: puts still happen in-step,
    but the flush is deferred to a group-commit tick
    (``durability_sync_window`` seconds) and the *certifying* acks park
    until the tick covers them.  Non-certifying traffic (requests,
    nacks) flows immediately — a learn certificate can only rest on
    ack-type messages, so leaking unflushed state via a nack is safe.

:class:`VolatileSpillStore` models the volatile-cache half of a real
disk for crash campaigns: it buffers writes until ``flush()`` and its
``crash()`` drops the buffer, so a hard kill under ``group_sync``
genuinely loses whatever the group commit had not yet covered.
Reopening a :class:`SegmentedSpillStore` directory instead models a
*process* kill (the OS page cache survives).

:class:`FaultySpillStore` injects put/fsync failures and torn partial
writes into any of the above (raising
:class:`~repro.errors.StorageUnavailable`), for nemesis campaigns that
check the persist-before-ack contract: a ``write_through`` replica whose
persist fails must refuse the step's acks, never emit them.
"""

from repro.storage.base import SpillRecord, SpillStore
from repro.storage.faulty import FaultySpillStore
from repro.storage.latency import LatencySpillStore
from repro.storage.memory import InMemorySpillStore
from repro.storage.segmented import SegmentedSpillStore
from repro.storage.volatile import VolatileSpillStore

__all__ = [
    "SpillRecord",
    "SpillStore",
    "InMemorySpillStore",
    "SegmentedSpillStore",
    "LatencySpillStore",
    "FaultySpillStore",
    "VolatileSpillStore",
]
