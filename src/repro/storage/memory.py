"""In-memory spill backend for tests and the adversarial explorer.

Byte-faithful on purpose: records round-trip through the
:mod:`repro.crdt.serialize` codec on every ``put``/``get`` even though a
dict of live objects would do, so a payload that cannot survive
encoding fails in the in-memory tests — not only once a file backend is
attached.  It also means a rehydrated payload is never the *same
object* the replica spilled, exactly like a disk read.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.crdt.serialize import decode_frozen, encode_frozen
from repro.storage.base import SpillRecord, SpillStore


class InMemorySpillStore(SpillStore):
    """Dict of encoded records; shares the file backend's observability."""

    def __init__(self) -> None:
        self._records: dict[Hashable, bytes] = {}
        self._meta: dict[str, Any] | None = None
        #: Observability (mirrors SegmentedSpillStore's counters).
        self.puts = 0
        self.gets = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def put(self, key: Hashable, record: SpillRecord) -> None:
        data = encode_frozen(record.state, record.round, record.learned_max)
        self._records[key] = data
        self.puts += 1
        self.bytes_written += len(data)

    def get(self, key: Hashable) -> SpillRecord | None:
        data = self._records.get(key)
        if data is None:
            return None
        self.gets += 1
        state, round_, learned_max = decode_frozen(data)
        return SpillRecord(state, round_, learned_max)

    def delete(self, key: Hashable) -> bool:
        return self._records.pop(key, None) is not None

    def keys(self) -> list[Hashable]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records

    # ------------------------------------------------------------------
    def put_meta(self, meta: dict[str, Any]) -> None:
        self._meta = dict(meta)

    def get_meta(self) -> dict[str, Any] | None:
        return dict(self._meta) if self._meta is not None else None

    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Total encoded record bytes currently held (RSS accounting)."""
        return sum(len(data) for data in self._records.values())
