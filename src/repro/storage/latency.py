"""Latency-modelled spill backend for the deterministic simulator.

The sans-io protocol nodes call the spill store synchronously from
inside their handlers, so a simulated deployment cannot *block* on a
disk model — instead this wrapper does what the simulator's
:class:`~repro.sim.process.ServiceModel` does for CPU time: it accounts
deterministic virtual seconds for every store operation and lets the
driver charge them.  :meth:`drain_accrued` hands the accumulated cost to
whoever owns the clock (a service model extending a node's busy time, a
benchmark adding IO time to a latency budget), resetting the meter.

Costs are per operation plus per byte, so both a seek-bound and a
bandwidth-bound device can be modelled.  Determinism: identical call
sequences accrue identical costs — there is no randomness here, which
keeps explorer campaigns reproducible under their seeds.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.crdt.serialize import encode_frozen
from repro.storage.base import SpillRecord, SpillStore


class LatencySpillStore(SpillStore):
    """Wraps any backend, metering deterministic virtual IO time."""

    def __init__(
        self,
        delegate: SpillStore,
        read_seconds: float = 100e-6,
        write_seconds: float = 150e-6,
        per_byte_seconds: float = 0.0,
        flush_seconds: float = 0.0,
    ) -> None:
        if min(read_seconds, write_seconds, per_byte_seconds, flush_seconds) < 0:
            raise ValueError("latency parameters must be non-negative")
        self.delegate = delegate
        self.read_seconds = read_seconds
        self.write_seconds = write_seconds
        self.per_byte_seconds = per_byte_seconds
        self.flush_seconds = flush_seconds
        self.reads = 0
        self.writes = 0
        self.accrued_seconds = 0.0

    # ------------------------------------------------------------------
    def _charge_read(self) -> None:
        self.reads += 1
        self.accrued_seconds += self.read_seconds

    def drain_accrued(self) -> float:
        """Return and reset the virtual seconds accrued since last drain."""
        accrued, self.accrued_seconds = self.accrued_seconds, 0.0
        return accrued

    def _charged_write(self, write, fallback_record: SpillRecord | None = None):
        """Run a backend write, charging write_seconds plus the bytes the
        backend reports having written (both backends keep a
        bytes_written counter, so the record is not encoded a second
        time just to be measured)."""
        self.writes += 1
        cost = self.write_seconds
        if self.per_byte_seconds:
            before = getattr(self.delegate, "bytes_written", None)
            result = write()
            if before is not None:
                written = self.delegate.bytes_written - before
            elif fallback_record is not None:  # unfamiliar backend
                written = len(
                    encode_frozen(
                        fallback_record.state,
                        fallback_record.round,
                        fallback_record.learned_max,
                    )
                )
            else:
                written = 0
            cost += written * self.per_byte_seconds
        else:
            result = write()
        self.accrued_seconds += cost
        return result

    # ------------------------------------------------------------------
    def put(self, key: Hashable, record: SpillRecord) -> None:
        self._charged_write(lambda: self.delegate.put(key, record), record)

    def get(self, key: Hashable) -> SpillRecord | None:
        record = self.delegate.get(key)
        if record is not None:
            self._charge_read()
        return record

    def delete(self, key: Hashable) -> bool:
        # A delete is a real write on append-mostly backends (tombstone
        # frame); charge it like one.
        return self._charged_write(lambda: self.delegate.delete(key))

    def keys(self) -> list[Hashable]:
        return self.delegate.keys()

    def __len__(self) -> int:
        return len(self.delegate)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.delegate

    def put_meta(self, meta: dict[str, Any]) -> None:
        self._charged_write(lambda: self.delegate.put_meta(meta))

    def get_meta(self) -> dict[str, Any] | None:
        return self.delegate.get_meta()

    def flush(self) -> None:
        self.delegate.flush()
        self.accrued_seconds += self.flush_seconds

    def close(self) -> None:
        self.delegate.close()
