"""Append-mostly segmented file backend for the spill tier.

Layout: a directory of numbered segment files (``seg-<n>.spill``).
Every ``put`` appends one framed record to the active segment and
updates an in-memory index (``key → (segment, offset, length)``); the
active segment rotates past ``segment_bytes``.  Overwrites and deletes
never touch old bytes — they only grow the *dead* byte count, and when
dead bytes exceed ``compact_ratio`` of the total the store compacts.
This is the classic Bitcask/LSM-lite shape: sequential writes, one seek
per read, bounded garbage.

Compaction is *incremental*: one victim segment (always the oldest
sealed one) is drained at most ``compaction_step_bytes`` of input per
store operation, its still-live frames re-appended to the active
segment, and the victim unlinked only after the copies are flushed and
fsynced.  No operation ever pays a stop-the-world rewrite, and the
protocol is crash-safe at every point: until the unlink both the
original and the copies are on disk, and the recovery replay resolves
the duplicates because copies live in strictly higher segment ids
(last frame per key wins).  Tombstones in the victim are dropped — the
oldest segment shadows nothing older.  :meth:`compact` runs the same
step loop to completion over every sealed segment.

Frame format (all integers little-endian)::

    magic   2 bytes  b"SG"
    kind    1 byte   b"R" record | b"D" delete tombstone | b"M" meta
    crc32   4 bytes  zlib.crc32 of body
    length  4 bytes  body length
    body    length bytes

Record bodies are ``u32 key-length + encoded key + encoded frozen
record`` (:mod:`repro.crdt.serialize`); tombstone bodies are the encoded
key; meta bodies are a pickled dict.  The CRC is verified on every read
and during the recovery scan, so a corrupted record is rejected before
any unpickling happens.

Recovery scan semantics (:class:`SegmentedSpillStore` constructor):
segments are replayed in order and the index is rebuilt, last frame per
key winning.  A damaged frame at the *tail of the last* segment is a
torn write (the process died mid-append): the tail is ignored and its
size reported in :attr:`torn_tail_bytes`.  A damaged frame anywhere
else is real corruption and raises
:class:`~repro.errors.SpillCorruption` — serving a silently shortened
history would hand the protocol a regressed acceptor state, which is
exactly the regression the (payload, round) pair exists to prevent.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import struct
import zlib
from typing import Any, Hashable

from repro.crdt.serialize import decode_frozen, decode_key, encode_frozen, encode_key
from repro.errors import SpillCorruption
from repro.storage.base import SpillRecord, SpillStore

_MAGIC = b"SG"
_KIND_RECORD = b"R"
_KIND_DELETE = b"D"
_KIND_META = b"M"
_HEADER = struct.Struct("<2ss I I")  # magic, kind, crc32, body length

#: Compaction never triggers below this many total bytes (tiny stores
#: would churn files for nothing).
_COMPACT_FLOOR_BYTES = 64 * 1024


def _frame(kind: bytes, body: bytes) -> bytes:
    return _HEADER.pack(_MAGIC, kind, zlib.crc32(body), len(body)) + body


class _Segment:
    """One segment file's bookkeeping."""

    __slots__ = ("path", "size", "live")

    def __init__(self, path: pathlib.Path, size: int = 0, live: int = 0) -> None:
        self.path = path
        self.size = size  # total bytes on disk
        self.live = live  # bytes of frames the index still points at


class SegmentedSpillStore(SpillStore):
    """Segmented append-mostly spill store with compaction."""

    def __init__(
        self,
        directory: str | os.PathLike,
        segment_bytes: int = 1 << 20,
        compact_ratio: float = 0.5,
        compaction_step_bytes: int = 1 << 16,
        compact_floor_bytes: int = _COMPACT_FLOOR_BYTES,
    ) -> None:
        if segment_bytes < 4096:
            raise ValueError(f"segment_bytes must be >= 4096, got {segment_bytes}")
        if not 0.0 < compact_ratio < 1.0:
            raise ValueError(f"compact_ratio must be in (0, 1), got {compact_ratio}")
        if compaction_step_bytes < 1024:
            raise ValueError(
                f"compaction_step_bytes must be >= 1024, got {compaction_step_bytes}"
            )
        if compact_floor_bytes < 0:
            raise ValueError(
                f"compact_floor_bytes must be >= 0, got {compact_floor_bytes}"
            )
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.compact_ratio = compact_ratio
        self.compaction_step_bytes = compaction_step_bytes
        self.compact_floor_bytes = compact_floor_bytes

        #: key → (segment id, frame offset, frame length)
        self._index: dict[Hashable, tuple[int, int, int]] = {}
        self._segments: dict[int, _Segment] = {}
        self._meta: dict[str, Any] | None = None
        self._meta_address: tuple[int, int] | None = None
        self._active_id = 0
        self._active_file = None
        self._read_handles: dict[int, Any] = {}
        self._closed = False
        #: In-progress incremental compaction: victim segment id, a
        #: snapshot of its bytes (sealed segments never change, so the
        #: snapshot stays valid across interleaved puts) and the replay
        #: cursor into it.
        self._compact_victim: int | None = None
        self._compact_data: bytes = b""
        self._compact_offset = 0

        #: Observability.
        self.puts = 0
        self.gets = 0
        self.bytes_written = 0
        self.compactions = 0
        self.compaction_steps = 0
        self.torn_tail_bytes = 0

        self._recover_scan()
        #: Running totals mirroring the per-segment bookkeeping, so the
        #: compaction trigger on every put/delete is O(1) instead of a
        #: sum over all segments.
        self._total_bytes = sum(s.size for s in self._segments.values())
        self._live_bytes = sum(s.live for s in self._segments.values())
        self._open_active()

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------
    def _segment_path(self, segment_id: int) -> pathlib.Path:
        return self.directory / f"seg-{segment_id:08d}.spill"

    def _recover_scan(self) -> None:
        paths = sorted(self.directory.glob("seg-*.spill"))
        ids = []
        for path in paths:
            try:
                ids.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        ids.sort()
        for position, segment_id in enumerate(ids):
            last = position == len(ids) - 1
            self._scan_segment(segment_id, tolerate_torn_tail=last)
        self._active_id = (ids[-1] + 1) if ids else 0

    def _scan_segment(self, segment_id: int, tolerate_torn_tail: bool) -> None:
        path = self._segment_path(segment_id)
        segment = _Segment(path)
        self._segments[segment_id] = segment
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            frame = self._parse_frame(data, offset)
            if frame is None:  # damaged from here on
                if tolerate_torn_tail:
                    self.torn_tail_bytes += len(data) - offset
                    segment.size = offset
                    with open(path, "r+b") as fh:  # drop the torn tail
                        fh.truncate(offset)
                    return
                raise SpillCorruption(
                    f"corrupted spill frame in {path} at offset {offset}"
                )
            kind, body, frame_len = frame
            self._replay_frame(segment_id, offset, frame_len, kind, body, path)
            offset += frame_len
        segment.size = offset

    def _parse_frame(
        self, data: bytes, offset: int
    ) -> tuple[bytes, bytes, int] | None:
        """(kind, body, frame length) or None when the frame is damaged."""
        header_end = offset + _HEADER.size
        if header_end > len(data):
            return None
        magic, kind, crc, length = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC or kind not in (_KIND_RECORD, _KIND_DELETE, _KIND_META):
            return None
        body_end = header_end + length
        if body_end > len(data):
            return None
        body = data[header_end:body_end]
        if zlib.crc32(body) != crc:
            return None
        return kind, body, _HEADER.size + length

    def _replay_frame(
        self,
        segment_id: int,
        offset: int,
        frame_len: int,
        kind: bytes,
        body: bytes,
        path: pathlib.Path,
    ) -> None:
        segment = self._segments[segment_id]
        if kind == _KIND_META:
            try:
                self._meta = pickle.loads(body)
            except Exception as exc:
                raise SpillCorruption(f"undecodable meta frame in {path}") from exc
            self._meta_address = (segment_id, offset)
            return
        if kind == _KIND_DELETE:
            key = decode_key(body)
            previous = self._index.pop(key, None)
            if previous is not None:
                self._segments[previous[0]].live -= previous[2]
            return
        (key_len,) = struct.unpack_from("<I", body, 0)
        key = decode_key(body[4 : 4 + key_len])
        previous = self._index.get(key)
        if previous is not None:
            self._segments[previous[0]].live -= previous[2]
        self._index[key] = (segment_id, offset, frame_len)
        segment.live += frame_len

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _open_active(self) -> None:
        path = self._segment_path(self._active_id)
        self._segments.setdefault(self._active_id, _Segment(path))
        self._active_file = open(path, "ab")

    def _rotate_if_needed(self) -> None:
        if self._segments[self._active_id].size >= self.segment_bytes:
            self._active_file.close()
            cached = self._read_handles.pop(self._active_id, None)
            if cached is not None:
                cached.close()
            self._active_id += 1
            self._open_active()

    def _append(self, kind: bytes, body: bytes) -> tuple[int, int, int]:
        """Append one frame to the active segment; returns its address."""
        self._rotate_if_needed()
        segment = self._segments[self._active_id]
        frame = _frame(kind, body)
        offset = segment.size
        self._active_file.write(frame)
        self._active_file.flush()
        segment.size += len(frame)
        self._total_bytes += len(frame)
        self.bytes_written += len(frame)
        return self._active_id, offset, len(frame)

    def put(self, key: Hashable, record: SpillRecord) -> None:
        key_bytes = encode_key(key)
        body = (
            struct.pack("<I", len(key_bytes))
            + key_bytes
            + encode_frozen(record.state, record.round, record.learned_max)
        )
        previous = self._index.get(key)
        segment_id, offset, frame_len = self._append(_KIND_RECORD, body)
        self._index[key] = (segment_id, offset, frame_len)
        self._segments[segment_id].live += frame_len
        self._live_bytes += frame_len
        if previous is not None:
            self._segments[previous[0]].live -= previous[2]
            self._live_bytes -= previous[2]
        self.puts += 1
        self._maybe_compact()

    def delete(self, key: Hashable) -> bool:
        previous = self._index.pop(key, None)
        if previous is None:
            return False
        self._segments[previous[0]].live -= previous[2]
        self._live_bytes -= previous[2]
        self._append(_KIND_DELETE, encode_key(key))
        self._maybe_compact()
        return True

    def put_meta(self, meta: dict[str, Any]) -> None:
        self._meta = dict(meta)
        segment_id, offset, _ = self._append(
            _KIND_META, pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._meta_address = (segment_id, offset)
        # Meta frames are never live (only the last one matters and it is
        # rewritten by compaction), so a checkpoint-only workload of
        # periodic spill_all() calls accumulates dead bytes here too —
        # without this trigger those segments would grow forever.
        self._maybe_compact()

    def get_meta(self) -> dict[str, Any] | None:
        return dict(self._meta) if self._meta is not None else None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _read_frame(self, segment_id: int, offset: int, length: int) -> bytes:
        handle = self._read_handles.get(segment_id)
        if handle is None:
            handle = open(self._segment_path(segment_id), "rb")
            self._read_handles[segment_id] = handle
        handle.seek(offset)
        data = handle.read(length)
        if len(data) != length:
            raise SpillCorruption(
                f"short read in {self._segment_path(segment_id)} at {offset}"
            )
        return data

    def get(self, key: Hashable) -> SpillRecord | None:
        address = self._index.get(key)
        if address is None:
            return None
        segment_id, offset, length = address
        data = self._read_frame(segment_id, offset, length)
        frame = self._parse_frame(data, 0)
        if frame is None or frame[0] != _KIND_RECORD:
            raise SpillCorruption(
                f"indexed frame failed integrity checks in "
                f"{self._segment_path(segment_id)} at offset {offset}"
            )
        _, body, _ = frame
        (key_len,) = struct.unpack_from("<I", body, 0)
        state, round_, learned_max = decode_frozen(body[4 + key_len :])
        self.gets += 1
        return SpillRecord(state, round_, learned_max)

    def keys(self) -> list[Hashable]:
        return list(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        return self._total_bytes

    def dead_bytes(self) -> int:
        return self._total_bytes - self._live_bytes

    def _maybe_compact(self) -> None:
        # O(1): the running totals make this affordable on every put.
        # An in-progress victim is always advanced (leaving it half-drained
        # forever would strand its duplicate copies); a new one is only
        # started when the dead-byte ratio is exceeded.
        if self._compact_victim is not None:
            self._compact_step()
            return
        total = self._total_bytes
        if total < self.compact_floor_bytes:
            return
        if self.dead_bytes() > self.compact_ratio * total:
            if self._start_victim():
                self._compact_step()

    def _start_victim(self) -> bool:
        """Select the oldest sealed segment as the compaction victim."""
        sealed = [sid for sid in self._segments if sid != self._active_id]
        if not sealed:
            # Only the active segment exists: seal it so its dead bytes
            # become reclaimable, then pick it up as the victim.
            if self._segments[self._active_id].size == 0:
                return False
            self._active_file.close()
            cached = self._read_handles.pop(self._active_id, None)
            if cached is not None:
                cached.close()
            self._active_id += 1
            self._open_active()
            sealed = [sid for sid in self._segments if sid != self._active_id]
        victim_id = min(sealed)
        self._compact_victim = victim_id
        # Sealed segments are immutable, so one read snapshots the victim.
        self._compact_data = self._segments[victim_id].path.read_bytes()
        self._compact_offset = 0
        return True

    def _compact_step(self) -> None:
        """Drain up to ``compaction_step_bytes`` of the victim.

        Live record frames (the index still points at their victim
        address) are re-appended to the active segment; dead records,
        tombstones and stale meta frames are dropped.  When the cursor
        reaches the victim's end, the active segment is flushed and
        fsynced *before* the victim is unlinked — a crash at any earlier
        point leaves both original and copies on disk, and replay picks
        the copies (higher segment id, last-wins).
        """
        victim_id = self._compact_victim
        assert victim_id is not None
        data = self._compact_data
        budget = self.compaction_step_bytes
        victim = self._segments[victim_id]
        while budget > 0 and self._compact_offset < len(data):
            offset = self._compact_offset
            frame = self._parse_frame(data, offset)
            if frame is None:
                raise SpillCorruption(
                    f"frame failed integrity checks during compaction "
                    f"({victim.path} at offset {offset})"
                )
            kind, body, frame_len = frame
            self._compact_offset += frame_len
            budget -= frame_len
            if kind == _KIND_RECORD:
                (key_len,) = struct.unpack_from("<I", body, 0)
                key = decode_key(body[4 : 4 + key_len])
                if self._index.get(key) == (victim_id, offset, frame_len):
                    victim.live -= frame_len
                    self._live_bytes -= frame_len
                    new_id, new_offset, new_len = self._append(_KIND_RECORD, body)
                    self._index[key] = (new_id, new_offset, new_len)
                    self._segments[new_id].live += new_len
                    self._live_bytes += new_len
            elif kind == _KIND_META:
                if self._meta_address == (victim_id, offset):
                    new_id, new_offset, _ = self._append(_KIND_META, body)
                    self._meta_address = (new_id, new_offset)
            # Tombstones are dropped: the victim is the oldest segment,
            # so its deletes shadow nothing that will survive it.
        self.compaction_steps += 1
        if self._compact_offset >= len(data):
            self._finish_victim(victim_id)

    def _finish_victim(self, victim_id: int) -> None:
        self.flush()  # copies durable before the originals vanish
        cached = self._read_handles.pop(victim_id, None)
        if cached is not None:
            cached.close()
        victim = self._segments.pop(victim_id)
        self._total_bytes -= victim.size
        try:
            victim.path.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._compact_victim = None
        self._compact_data = b""
        self._compact_offset = 0
        self.compactions += 1

    def compact(self) -> None:
        """Run the incremental machinery over every segment present at
        entry — one full pass.  Copies land in freshly rotated segments,
        which hold only live frames and are *not* re-drained: a live set
        larger than ``segment_bytes`` would otherwise be re-copied
        forever and the call would never return.
        """
        entry_max = self._active_id
        while True:
            if self._compact_victim is not None:
                self._compact_step()
                continue
            sealed = [sid for sid in self._segments if sid != self._active_id]
            if not sealed:
                # Only the active remains; if it is the entry-era one,
                # seal and drain it once so its dead bytes go too.
                if self._active_id > entry_max or not self._start_victim():
                    break
                continue
            if min(sealed) > entry_max:
                break
            self._start_victim()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._active_file is not None and not self._active_file.closed:
            self._active_file.flush()
            os.fsync(self._active_file.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._read_handles.values():
            handle.close()
        self._read_handles.clear()
        if self._active_file is not None:
            self._active_file.close()
