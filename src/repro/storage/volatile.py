"""Volatile write-buffer wrapper modelling fsync semantics.

A real disk acknowledges writes into a volatile cache; only an fsync
makes them power-loss durable.  The segmented backend cannot model that
distinction in-process (its ``write()`` reaches the OS page cache, which
survives a *process* kill), so crash campaigns that want power-loss /
fsync fidelity wrap any backend in :class:`VolatileSpillStore`: puts,
deletes and meta writes are buffered in RAM, :meth:`flush` applies the
buffer to the delegate in order (then flushes it — the fsync point), and
:meth:`crash` throws the buffer away, exactly like pulling the plug
between fsyncs.

Reads see the buffered overlay (read-your-writes), so a replica
operating normally cannot tell the wrapper is there; only a crash can.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.crdt.serialize import decode_frozen, encode_frozen
from repro.storage.base import SpillRecord, SpillStore

#: Overlay sentinel for a buffered (not yet durable) delete.
_TOMBSTONE = object()


class VolatileSpillStore(SpillStore):
    """Buffers writes until ``flush``; ``crash()`` drops unflushed ones."""

    def __init__(self, delegate: SpillStore) -> None:
        self.delegate = delegate
        #: key → encoded record | _TOMBSTONE, in write order (dict is
        #: ordered) — bytes, like the cache of a real disk would hold.
        self._buffer: dict[Hashable, Any] = {}
        self._meta_buffer: dict[str, Any] | None = None
        #: Observability.
        self.puts = 0
        self.flushes = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    def put(self, key: Hashable, record: SpillRecord) -> None:
        # Re-insert so flush replays in last-write order.
        self._buffer.pop(key, None)
        self._buffer[key] = encode_frozen(
            record.state, record.round, record.learned_max
        )
        self.puts += 1

    def get(self, key: Hashable) -> SpillRecord | None:
        buffered = self._buffer.get(key)
        if buffered is _TOMBSTONE:
            return None
        if buffered is not None:
            state, round_, learned_max = decode_frozen(buffered)
            return SpillRecord(state, round_, learned_max)
        return self.delegate.get(key)

    def delete(self, key: Hashable) -> bool:
        existed = key in self
        self._buffer.pop(key, None)
        self._buffer[key] = _TOMBSTONE
        return existed

    def keys(self) -> list[Hashable]:
        merged = {
            key: None for key in self.delegate.keys() if self._buffer.get(key) is not _TOMBSTONE
        }
        for key, value in self._buffer.items():
            if value is not _TOMBSTONE:
                merged[key] = None
        return list(merged)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: Hashable) -> bool:
        buffered = self._buffer.get(key)
        if buffered is _TOMBSTONE:
            return False
        if buffered is not None:
            return True
        return key in self.delegate

    # ------------------------------------------------------------------
    def put_meta(self, meta: dict[str, Any]) -> None:
        self._meta_buffer = dict(meta)

    def get_meta(self) -> dict[str, Any] | None:
        if self._meta_buffer is not None:
            return dict(self._meta_buffer)
        return self.delegate.get_meta()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Apply every buffered write to the delegate, then fsync it."""
        for key, value in self._buffer.items():
            if value is _TOMBSTONE:
                self.delegate.delete(key)
            else:
                state, round_, learned_max = decode_frozen(value)
                self.delegate.put(key, SpillRecord(state, round_, learned_max))
        self._buffer.clear()
        if self._meta_buffer is not None:
            self.delegate.put_meta(self._meta_buffer)
            self._meta_buffer = None
        self.delegate.flush()
        self.flushes += 1

    def crash(self) -> None:
        """Drop everything not yet flushed — the power-loss event."""
        self._buffer.clear()
        self._meta_buffer = None
        self.crashes += 1

    def pending_writes(self) -> int:
        """Buffered (volatile) record writes awaiting the next flush."""
        return len(self._buffer) + (1 if self._meta_buffer is not None else 0)

    def close(self) -> None:
        self.delegate.close()
