"""Message compilation shared by every client surface.

This module is the one place where a typed operation becomes a wire
message and a wire reply becomes a typed completion:

* :func:`compile_update` / :func:`compile_query` turn an
  :class:`~repro.crdt.base.UpdateOp` / :class:`~repro.crdt.base.QueryOp`
  into the protocol's :class:`~repro.core.messages.ClientUpdate` /
  :class:`~repro.core.messages.ClientQuery` — wrapped in a
  :class:`~repro.core.keyspace.Keyed` envelope when the target is one key
  of a keyed replica;
* :func:`parse_completion` normalizes the matching
  :class:`~repro.core.messages.UpdateDone` / ``QueryDone`` replies
  (unwrapping ``Keyed`` transparently) into a :class:`Completion`;
* :class:`RequestIds` hands out the per-client unique request ids the
  protocol uses to correlate replies with requests.

The :class:`~repro.api.store.Store` frontends, the workload generator's
protocol adapters, and the adversarial checker's keyed recording client
all compile through these functions, so "what the client puts on the
wire" has exactly one definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.keyspace import Keyed
from repro.core.messages import (
    ClientQuery,
    ClientUpdate,
    QueryDone,
    Refused,
    UpdateDone,
    WrongGroup,
)
from repro.crdt.base import QueryOp, UpdateOp


class _Unkeyed:
    """Sentinel for "no key": ``None`` stays usable as an actual key."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UNKEYED"


#: Pass as ``key`` to address a single-instance (unkeyed) replica.
UNKEYED: Any = _Unkeyed()


@dataclass(frozen=True, slots=True)
class Completion:
    """A normalized reply: which request finished, with what outcome.

    ``kind`` is ``"update"``, ``"read"``, ``"refused"`` or
    ``"wrong_group"``.  Query completions carry the protocol's
    diagnostics (round trips, attempts, fast-path/vote learn, the §3.4
    learn sequence); update completions carry the inclusion tag the
    correctness checker uses.  A ``"refused"`` completion means the
    replica gave up gracefully — ``code`` names the obstacle
    (``"quorum"`` / ``"storage"``) and the operation was *not*
    performed.  A ``"wrong_group"`` completion is a sharded routing
    refusal: ``epoch``/``group`` carry the forwarding hint and the
    operation must be retried at the hinted group.  ``key`` is
    :data:`UNKEYED` unless the reply arrived wrapped in a ``Keyed``
    envelope.
    """

    request_id: str
    kind: str
    result: Any = None
    inclusion_tag: Any = None
    round_trips: int = 0
    attempts: int = 0
    learned_via: str = ""
    proposer: str = ""
    learn_seq: int = 0
    key: Any = UNKEYED
    code: str = ""
    epoch: int = 0
    group: str = ""


class RequestIds:
    """Per-client request-id source: ``<client>#<n>``, strictly unique.

    One instance per client address; uniqueness across clients comes from
    the address prefix, uniqueness within a client from the counter.
    """

    __slots__ = ("_prefix", "_counter")

    def __init__(self, client: str) -> None:
        self._prefix = client
        self._counter = 0

    def next(self) -> str:
        self._counter += 1
        return f"{self._prefix}#{self._counter}"

    @property
    def issued(self) -> int:
        return self._counter


def compile_update(
    request_id: str, op: UpdateOp, key: Hashable = UNKEYED
) -> Any:
    """An 'apply ``f_u`` (§3.2, update path)' request message."""
    message = ClientUpdate(request_id=request_id, op=op)
    if key is UNKEYED:
        return message
    return Keyed(key=key, message=message)


def compile_query(
    request_id: str, op: QueryOp, key: Hashable = UNKEYED
) -> Any:
    """A 'learn a state and apply ``f_q`` (§3.2, query path)' request."""
    message = ClientQuery(request_id=request_id, op=op)
    if key is UNKEYED:
        return message
    return Keyed(key=key, message=message)


def parse_completion(message: Any) -> Completion | None:
    """Normalize a reply message; ``None`` if it is not a completion."""
    key: Any = UNKEYED
    if isinstance(message, Keyed):
        key = message.key
        message = message.message
    if isinstance(message, UpdateDone):
        return Completion(
            request_id=message.request_id,
            kind="update",
            inclusion_tag=message.inclusion_tag,
            round_trips=1,
            key=key,
        )
    if isinstance(message, QueryDone):
        return Completion(
            request_id=message.request_id,
            kind="read",
            result=message.result,
            round_trips=message.round_trips,
            attempts=message.attempts,
            learned_via=message.learned_via,
            proposer=message.proposer,
            learn_seq=message.learn_seq,
            key=key,
        )
    if isinstance(message, Refused):
        return Completion(
            request_id=message.request_id,
            kind="refused",
            learned_via=message.detail,
            key=key,
            code=message.code,
        )
    if isinstance(message, WrongGroup):
        return Completion(
            request_id=message.request_id,
            kind="wrong_group",
            key=key,
            code="wrong_group",
            epoch=message.epoch,
            group=message.group,
        )
    return None
