"""The Store facade: one client surface for every deployment shape.

A :class:`Store` speaks to a running replica group — simulated
(:class:`~repro.runtime.cluster.SimCluster`) or wall-clock
(:class:`~repro.runtime.asyncio_cluster.AsyncioCluster`) — and hides the
wire protocol behind typed handles.  It is *keyed-aware*: pointed at a
:class:`~repro.core.keyspace.KeyedCrdtReplica` group it wraps every
command in a ``Keyed`` envelope, pointed at a single-instance
:class:`~repro.core.replica.CrdtPaxosReplica` group it sends bare client
messages; addressing mistakes (a key on an unkeyed store, no key on a
keyed one) fail fast at handle creation.

Client-side supervision mirrors the paper's evaluation clients: each
request carries a fresh unique id, waits ``timeout`` seconds for its
completion, and on expiry *fails over* — the operation is re-issued under
a fresh id to the next replica, round-robin, up to ``max_attempts``
attempts before :class:`~repro.errors.RequestTimeout` is raised.  Stale
replies to superseded ids are dropped.  Updates are therefore
at-least-once under fail-over, exactly like the Basho-Bench clients the
evaluation used.

Fail-over is health-aware: a :class:`~repro.api.health.ReplicaHealth`
tracker strikes replicas that time out or refuse, suspected replicas
sort to the back of the rotation (and get hedged, shortened attempt
timeouts when ``hedge_factor < 1``), and the sticky post-fail-over home
expires the moment the configured home's suspicion clears — the store
returns to its configured replica instead of camping on the fail-over
target forever.  A replica that *refuses* a request (``Refused``, sent
when its re-drives exhausted without a quorum or a durable write kept
failing) triggers immediate fail-over; if every attempt is refused the
store raises the typed, fail-fast
:class:`~repro.errors.QuorumUnavailable` /
:class:`~repro.errors.StorageUnavailable` (both ``RequestTimeout``
subclasses) instead of a generic timeout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.api.codec import (
    UNKEYED,
    Completion,
    RequestIds,
    compile_query,
    compile_update,
    parse_completion,
)
from repro.api.handles import (
    CounterHandle,
    GSetHandle,
    Handle,
    LWWMapHandle,
    LWWRegisterHandle,
    ORSetHandle,
    PNCounterHandle,
)
from repro.api.health import ReplicaHealth
from repro.core.keyspace import KeyedCrdtReplica
from repro.crdt.base import QueryOp, UpdateOp
from repro.errors import (
    ConfigurationError,
    QuorumUnavailable,
    RequestTimeout,
    StorageUnavailable,
    WrongGroupError,
)


@dataclass(frozen=True, slots=True)
class UpdateReceipt:
    """A completed update: durable at a quorum (§3.2, update path)."""

    request_id: str
    replica: str
    client_attempts: int
    inclusion_tag: Any = None


@dataclass(frozen=True, slots=True)
class ReadReceipt:
    """A completed linearizable read with the protocol's diagnostics.

    ``round_trips``/``attempts``/``learned_via`` tell how the state was
    learned (§3.2: one round trip via consistent quorum, two via vote,
    more under contention); ``learn_seq`` orders this node's learns for
    the §3.4 GLA-Stability checker.  ``client_attempts`` counts
    client-side fail-overs, not protocol retries.
    """

    value: Any
    request_id: str
    replica: str
    client_attempts: int
    round_trips: int
    attempts: int
    learned_via: str
    proposer: str
    learn_seq: int


def _detect_keyed(cluster: Any) -> bool:
    """Is the replica group a keyed deployment?  Inspects one node."""
    try:
        node = cluster.node(cluster.addresses[0])
    except (KeyError, IndexError) as exc:
        raise ConfigurationError(
            "cannot inspect the cluster's replicas (is it started?); "
            "pass keyed=True/False explicitly"
        ) from exc
    return isinstance(node, KeyedCrdtReplica)


class Store:
    """Shared facade logic: handles, addressing, request-id plumbing.

    Subclasses implement ``update``/``query``/``query_value`` over their
    transport; everything key- and id-shaped lives here so the sync and
    async frontends (and any future one) cannot drift apart.
    """

    def __init__(
        self,
        cluster: Any,
        client: str = "store",
        *,
        home: str | None = None,
        timeout: float = 5.0,
        max_attempts: int | None = None,
        keyed: bool | None = None,
        hedge_factor: float = 1.0,
    ) -> None:
        self.addresses: list[str] = list(cluster.addresses)
        if not self.addresses:
            raise ConfigurationError("cluster has no replicas")
        self._cluster = cluster
        self.client = client
        self.keyed = _detect_keyed(cluster) if keyed is None else keyed
        self.timeout = timeout
        self.max_attempts = (
            max_attempts if max_attempts is not None else 2 * len(self.addresses)
        )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if not 0.0 < hedge_factor <= 1.0:
            raise ConfigurationError("hedge_factor must be in (0, 1]")
        #: Attempt-timeout multiplier for *suspected* replicas.  Below
        #: 1.0 the store hedges: it gives a suspect a brief chance and
        #: moves on, instead of burning the full timeout on a replica
        #: that failed recently.
        self.hedge_factor = hedge_factor
        if home is None:
            self._configured_home_index = 0
        else:
            if home not in self.addresses:
                raise ConfigurationError(
                    f"home replica {home!r} not in {self.addresses}"
                )
            self._configured_home_index = self.addresses.index(home)
        #: Sticky fail-over target; expires once the configured home's
        #: suspicion clears (see :meth:`_effective_home_index`).
        self._sticky_index: int | None = None
        self.health = ReplicaHealth(self._now)
        self._ids = RequestIds(client)
        #: ``(replica, code)`` refusals collected by the last ``_submit``.
        self._last_refusals: list[tuple[str, str]] = []

    def _now(self) -> float:
        """Clock feeding the health tracker; SimStore overrides with
        virtual time."""
        return time.monotonic()

    # ------------------------------------------------------------------
    # Typed handles
    # ------------------------------------------------------------------
    def _resolve(self, key: Hashable) -> Hashable:
        """Validate a key against the deployment shape, fail-fast."""
        if self.keyed and key is UNKEYED:
            raise ConfigurationError(
                "this store addresses a keyed replica group; pass a key "
                "(e.g. store.counter('views:home'))"
            )
        if not self.keyed and key is not UNKEYED:
            raise ConfigurationError(
                f"this store addresses a single-instance replica group; "
                f"it has no key {key!r} — omit the key"
            )
        return key

    def handle(self, key: Hashable = UNKEYED) -> Handle:
        """A generic handle: raw ``update(op)`` / ``query(op)``."""
        return Handle(self, self._resolve(key))

    def counter(self, key: Hashable = UNKEYED) -> CounterHandle:
        return CounterHandle(self, self._resolve(key))

    def pncounter(self, key: Hashable = UNKEYED) -> PNCounterHandle:
        return PNCounterHandle(self, self._resolve(key))

    def orset(self, key: Hashable = UNKEYED) -> ORSetHandle:
        return ORSetHandle(self, self._resolve(key))

    def gset(self, key: Hashable = UNKEYED) -> GSetHandle:
        return GSetHandle(self, self._resolve(key))

    def lwwmap(self, key: Hashable = UNKEYED) -> LWWMapHandle:
        return LWWMapHandle(self, self._resolve(key))

    def lwwregister(self, key: Hashable = UNKEYED) -> LWWRegisterHandle:
        return LWWRegisterHandle(self, self._resolve(key))

    # ------------------------------------------------------------------
    # Addressing / fail-over plumbing shared by the frontends
    # ------------------------------------------------------------------
    def _effective_home_index(self) -> int:
        """Where the rotation starts: sticky fail-over target while the
        configured home is suspected, the configured home otherwise.

        This is the stickiness-expiry fix: the old behaviour re-homed the
        store permanently on fail-over and never returned to the
        configured replica after it recovered.  Now stickiness lives
        exactly as long as the home's suspicion window — once the health
        tracker clears it, the next request goes home first.
        """
        if self._sticky_index is not None:
            home = self.addresses[self._configured_home_index]
            if self.health.suspected(home):
                return self._sticky_index
            self._sticky_index = None  # home recovered: go home again
        return self._configured_home_index

    def _attempt_targets(self, via: str | None) -> list[str]:
        """The replicas to try, in order: the pin (or effective home),
        then round-robin fail-over up to ``max_attempts`` — with
        suspected replicas stably sorted to the back of the rotation.

        An explicit ``via=`` pin is honored verbatim (no reordering):
        diagnostics must be able to target a suspect on purpose.
        """
        n = len(self.addresses)
        if via is not None:
            if via not in self.addresses:
                raise ConfigurationError(
                    f"replica {via!r} not in {self.addresses}"
                )
            start = self.addresses.index(via)
            return [
                self.addresses[(start + offset) % n]
                for offset in range(self.max_attempts)
            ]
        start = self._effective_home_index()
        rotation = [
            self.addresses[(start + offset) % n]
            for offset in range(self.max_attempts)
        ]
        healthy = [r for r in rotation if not self.health.suspected(r)]
        suspected = [r for r in rotation if self.health.suspected(r)]
        return healthy + suspected

    def _attempt_timeout(self, replica: str) -> float:
        """Per-attempt budget: hedged (shortened) on suspected replicas."""
        if self.hedge_factor < 1.0 and self.health.suspected(replica):
            return self.timeout * self.hedge_factor
        return self.timeout

    def _note_served(self, replica: str, client_attempts: int) -> None:
        """Record the success and, after a fail-over, stick to the
        replica that answered.  A first-attempt success changes nothing —
        in particular a one-off ``via=`` pin must not re-home the store
        away from its configured ``home``."""
        self.health.record_success(replica)
        if client_attempts > 1:
            self._sticky_index = self.addresses.index(replica)

    def _note_failed(self, replica: str) -> None:
        """A timed-out or refused attempt: strike the replica."""
        self.health.record_failure(replica)

    def _request_failed(self, kind: str, key: Hashable) -> RequestTimeout:
        """The error for an attempt-exhausted request: typed and
        fail-fast when replicas *refused* (they proved the condition in
        bounded time), a plain timeout when they were merely silent."""
        where = "" if key is UNKEYED else f" for key {key!r}"
        refusals = self._last_refusals
        if refusals:
            summary = "; ".join(f"{r}: {code}" for r, code in refusals)
            if any(code == "quorum" for _, code in refusals):
                return QuorumUnavailable(
                    f"{kind}{where} refused — no quorum reachable "
                    f"({summary})"
                )
            return StorageUnavailable(
                f"{kind}{where} refused — durable writes failing "
                f"({summary})"
            )
        return RequestTimeout(
            f"{kind}{where} got no reply from any of "
            f"{self.max_attempts} attempt(s) across {self.addresses} "
            f"within {self.timeout}s each"
        )

    def _update_receipt(
        self, completion: Completion, replica: str, client_attempts: int
    ) -> UpdateReceipt:
        return UpdateReceipt(
            request_id=completion.request_id,
            replica=replica,
            client_attempts=client_attempts,
            inclusion_tag=completion.inclusion_tag,
        )

    def _read_receipt(
        self, completion: Completion, replica: str, client_attempts: int
    ) -> ReadReceipt:
        return ReadReceipt(
            value=completion.result,
            request_id=completion.request_id,
            replica=replica,
            client_attempts=client_attempts,
            round_trips=completion.round_trips,
            attempts=completion.attempts,
            learned_via=completion.learned_via,
            proposer=completion.proposer,
            learn_seq=completion.learn_seq,
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> dict[str, int]:
        """Flush every keyed replica: drain coalescing outboxes and, on
        replicas with a spill store attached, persist the full durable
        snapshot (:meth:`~repro.core.keyspace.KeyedCrdtReplica.spill_all`).

        Returns each flushed replica's cumulative spill count (``0`` for
        replicas without a spill tier).  A shutdown hook in miniature:
        call it before tearing a cluster down so a later
        :meth:`~repro.core.keyspace.KeyedCrdtReplica.recover` sees every
        key.  Works on both frontends — the sim and asyncio runtimes
        expose the same ``apply_effects`` hook for the drained envelopes.
        """
        runtimes = getattr(self._cluster, "runtimes", None)
        if runtimes is None:
            raise ConfigurationError(
                "this cluster exposes no runtimes to flush; "
                "Store.flush() needs a SimCluster or AsyncioCluster"
            )
        flushed: dict[str, int] = {}
        for address in self.addresses:
            runtime = runtimes.get(address)
            if runtime is None:
                continue
            node = runtime.node
            if isinstance(node, KeyedCrdtReplica):
                runtime.apply_effects(node.flush())
                flushed[address] = node.spills
        return flushed

    def rejoin(self) -> dict[str, int]:
        """Open the quorum refresh on every keyed replica recovered with
        ``rejoin=True`` (:meth:`~repro.core.keyspace.KeyedCrdtReplica.rejoin`):
        each recovered key's ``(payload, round)`` pair is refreshed from a
        read quorum — a §3.3 prepare — before it serves traffic, because
        a hard-killed replica's own spilled pair may be stale.

        Returns each keyed replica's count of keys still awaiting their
        quorum (``0`` once fully rejoined).  Broadcasting is a no-op on
        replicas with nothing pending, so calling this after a clean
        recovery is safe.
        """
        runtimes = getattr(self._cluster, "runtimes", None)
        if runtimes is None:
            raise ConfigurationError(
                "this cluster exposes no runtimes to rejoin; "
                "Store.rejoin() needs a SimCluster or AsyncioCluster"
            )
        pending: dict[str, int] = {}
        for address in self.addresses:
            runtime = runtimes.get(address)
            if runtime is None:
                continue
            node = runtime.node
            if isinstance(node, KeyedCrdtReplica):
                runtime.apply_effects(node.rejoin())
                pending[address] = node.rejoin_pending_count()
        return pending

    # ------------------------------------------------------------------
    # Shared completion triage
    # ------------------------------------------------------------------
    def _wrong_group(self, replica: str, completion: Completion) -> WrongGroupError:
        """A sharded replica's routing refusal — typed, with the hint.

        Raised instead of failing over: the *whole group* refuses the
        key (ownership is a group property), so trying the next member
        burns attempts to learn the same answer.  The caller —
        :class:`~repro.api.sharded.ShardedStore`, or application code —
        folds ``epoch``/``group`` into its routing view and retries at
        the hinted group.
        """
        return WrongGroupError(
            f"replica {replica} does not own key {completion.key!r}; "
            f"owner is group {completion.group!r} as of epoch "
            f"{completion.epoch}",
            epoch=completion.epoch,
            group=completion.group,
        )

    # ------------------------------------------------------------------
    # Frontend contract
    # ------------------------------------------------------------------
    def update(self, key: Hashable, op: UpdateOp, *, via: str | None = None):
        """Submit ``f_u`` to the bound key; completes when durable."""
        raise NotImplementedError

    def pipeline(self):
        """A batched handle: queue many operations, flush them in one
        burst so the proposer's §3.6 update batching can pack them."""
        raise NotImplementedError

    def query(self, key: Hashable, op: QueryOp, *, via: str | None = None):
        """Submit ``f_q``; completes with a :class:`ReadReceipt`."""
        raise NotImplementedError

    def query_value(self, key: Hashable, op: QueryOp, *, via: str | None = None):
        """Like :meth:`query` but yields the bare result value."""
        raise NotImplementedError


class SimStore(Store):
    """Synchronous frontend over the deterministic simulator.

    Each call drives the simulator until its completion arrives (or the
    virtual-time deadline passes and the store fails over) — handy for
    tests, campaigns and notebooks that want straight-line code against
    a :class:`~repro.runtime.cluster.SimCluster`.
    """

    def __init__(
        self,
        cluster: Any,
        client: str = "store",
        *,
        home: str | None = None,
        timeout: float = 1.0,
        max_attempts: int | None = None,
        keyed: bool | None = None,
        hedge_factor: float = 1.0,
    ) -> None:
        super().__init__(
            cluster,
            client,
            home=home,
            timeout=timeout,
            max_attempts=max_attempts,
            keyed=keyed,
            hedge_factor=hedge_factor,
        )
        # Deferred import keeps repro.api importable without the runtime.
        from repro.runtime.cluster import ClientEndpoint

        self._sim = cluster.sim
        self._pending_id: str | None = None
        self._arrived: Completion | None = None
        #: Pipeline multiplexing: request ids a flush is waiting on,
        #: filled in by :meth:`_on_reply` as completions arrive.
        self._multi_pending: dict[str, Completion | None] = {}
        self._endpoint = ClientEndpoint(
            self._sim, cluster.network, f"store-{client}", self._on_reply
        )

    def _now(self) -> float:
        return self._sim.now

    def _on_reply(self, src: str, message: Any) -> None:
        completion = parse_completion(message)
        if completion is None:
            return
        if completion.request_id == self._pending_id:
            self._arrived = completion
            return
        if completion.request_id in self._multi_pending:
            self._multi_pending[completion.request_id] = completion
            return
        # Stale reply to a superseded attempt: dropped.

    def _submit(
        self, compile_fn: Callable[[str], Any], via: str | None
    ) -> tuple[Completion, str, int] | None:
        self._last_refusals = []
        for client_attempts, replica in enumerate(
            self._attempt_targets(via), start=1
        ):
            request_id = self._ids.next()
            self._pending_id = request_id
            self._arrived = None
            self._endpoint.send(replica, compile_fn(request_id))
            deadline = self._sim.now + self._attempt_timeout(replica)
            while self._arrived is None:
                if self._sim.now >= deadline:
                    break
                if not self._sim.step():
                    break  # event queue drained: no reply is coming
            completion, self._arrived = self._arrived, None
            self._pending_id = None
            if completion is None:
                self._note_failed(replica)
                continue
            if completion.kind == "wrong_group":
                raise self._wrong_group(replica, completion)
            if completion.kind == "refused":
                # The replica gave up in bounded time (quorum or storage)
                # — fail over immediately, remember why.
                self._last_refusals.append((replica, completion.code))
                self._note_failed(replica)
                continue
            self._note_served(replica, client_attempts)
            return completion, replica, client_attempts
        return None

    def pipeline(self) -> "SimPipeline":
        return SimPipeline(self)

    def update(
        self, key: Hashable, op: UpdateOp, *, via: str | None = None
    ) -> UpdateReceipt:
        key = self._resolve(key)
        outcome = self._submit(
            lambda rid: compile_update(rid, op, key=key), via
        )
        if outcome is None:
            raise self._request_failed("update", key)
        return self._update_receipt(*outcome)

    def query(
        self, key: Hashable, op: QueryOp, *, via: str | None = None
    ) -> ReadReceipt:
        key = self._resolve(key)
        outcome = self._submit(
            lambda rid: compile_query(rid, op, key=key), via
        )
        if outcome is None:
            raise self._request_failed("query", key)
        return self._read_receipt(*outcome)

    def query_value(
        self, key: Hashable, op: QueryOp, *, via: str | None = None
    ) -> Any:
        return self.query(key, op, via=via).value


class AsyncStore(Store):
    """Awaitable frontend over the asyncio runtime.

    Built on :class:`~repro.runtime.asyncio_cluster.AsyncioCluster`'s
    request/reply client; every handle method returns a coroutine.
    """

    def __init__(
        self,
        cluster: Any,
        client: str = "store",
        *,
        home: str | None = None,
        timeout: float = 5.0,
        max_attempts: int | None = None,
        keyed: bool | None = None,
        hedge_factor: float = 1.0,
    ) -> None:
        super().__init__(
            cluster,
            client,
            home=home,
            timeout=timeout,
            max_attempts=max_attempts,
            keyed=keyed,
            hedge_factor=hedge_factor,
        )
        self._client = cluster.client(client)

    async def _submit(
        self, compile_fn: Callable[[str], Any], via: str | None
    ) -> tuple[Completion, str, int] | None:
        self._last_refusals = []
        for client_attempts, replica in enumerate(
            self._attempt_targets(via), start=1
        ):
            request_id = self._ids.next()
            try:
                reply = await self._client.request(
                    replica,
                    compile_fn(request_id),
                    timeout=self._attempt_timeout(replica),
                )
            except RequestTimeout:
                self._note_failed(replica)
                continue  # fail over to the next replica
            completion = parse_completion(reply)
            if completion is None or completion.request_id != request_id:
                continue
            if completion.kind == "wrong_group":
                raise self._wrong_group(replica, completion)
            if completion.kind == "refused":
                self._last_refusals.append((replica, completion.code))
                self._note_failed(replica)
                continue
            self._note_served(replica, client_attempts)
            return completion, replica, client_attempts
        return None

    def pipeline(self) -> "AsyncPipeline":
        return AsyncPipeline(self)

    async def update(
        self, key: Hashable, op: UpdateOp, *, via: str | None = None
    ) -> UpdateReceipt:
        key = self._resolve(key)
        outcome = await self._submit(
            lambda rid: compile_update(rid, op, key=key), via
        )
        if outcome is None:
            raise self._request_failed("update", key)
        return self._update_receipt(*outcome)

    async def query(
        self, key: Hashable, op: QueryOp, *, via: str | None = None
    ) -> ReadReceipt:
        key = self._resolve(key)
        outcome = await self._submit(
            lambda rid: compile_query(rid, op, key=key), via
        )
        if outcome is None:
            raise self._request_failed("query", key)
        return self._read_receipt(*outcome)

    async def query_value(
        self, key: Hashable, op: QueryOp, *, via: str | None = None
    ) -> Any:
        receipt = await self.query(key, op, via=via)
        return receipt.value


class _PipelineBase:
    """Shared queueing for the batched client handles.

    A pipeline queues typed operations and submits them in one burst on
    :meth:`flush` — many requests in flight from one client, exactly the
    shape the proposer's §3.6 update batching packs into shared MERGE
    rounds (message count independent of batch size).  Updates stay
    at-least-once under fail-over, as with individual calls.
    """

    def __init__(self, store: Store) -> None:
        self._store = store
        self._ops: list[tuple[str, Hashable, Any]] = []

    def update(self, key: Hashable, op: UpdateOp) -> "_PipelineBase":
        """Queue ``f_u`` for the key; returns self for chaining."""
        self._ops.append(("update", self._store._resolve(key), op))
        return self

    def query(self, key: Hashable, op: QueryOp) -> "_PipelineBase":
        """Queue ``f_q`` for the key; returns self for chaining."""
        self._ops.append(("query", self._store._resolve(key), op))
        return self

    def __len__(self) -> int:
        return len(self._ops)


class SimPipeline(_PipelineBase):
    """Batched frontend over :class:`SimStore`: all queued operations go
    on the wire back-to-back, then one drive of the simulator collects
    every completion (with per-operation fail-over, like ``_submit``).
    """

    def flush(self) -> list[UpdateReceipt | ReadReceipt]:
        """Submit everything queued; receipts in queue order.

        Raises on the first operation that exhausts its attempts (or is
        refused with ``wrong_group``); operations that completed before
        the failure are still durable — the pipeline is at-least-once,
        not atomic.
        """
        store = self._store
        ops, self._ops = self._ops, []
        if not ops:
            return []
        n = len(ops)
        results: list[Any] = [None] * n
        errors: list[Exception | None] = [None] * n
        targets = [store._attempt_targets(None) for _ in range(n)]
        attempt: list[int] = [0] * n
        served_by: list[str] = [""] * n
        deadline: list[float] = [0.0] * n
        rid_to_op: dict[str, int] = {}
        open_ops = set(range(n))

        def send(i: int) -> None:
            replica = targets[i][attempt[i]]
            served_by[i] = replica
            request_id = store._ids.next()
            rid_to_op[request_id] = i
            store._multi_pending[request_id] = None
            kind, key, op = ops[i]
            message = (
                compile_update(request_id, op, key=key)
                if kind == "update"
                else compile_query(request_id, op, key=key)
            )
            store._endpoint.send(replica, message)
            deadline[i] = store._sim.now + store._attempt_timeout(replica)

        def fail_over(i: int, error: Exception | None) -> None:
            store._note_failed(served_by[i])
            attempt[i] += 1
            if attempt[i] < len(targets[i]):
                send(i)
                return
            kind, key, _ = ops[i]
            errors[i] = error if error is not None else store._request_failed(
                kind, key
            )
            open_ops.discard(i)

        for i in range(n):
            send(i)
        try:
            while open_ops:
                for request_id, completion in list(store._multi_pending.items()):
                    if completion is None:
                        continue
                    del store._multi_pending[request_id]
                    i = rid_to_op.pop(request_id)
                    if i not in open_ops:
                        continue  # superseded attempt answered late
                    if completion.kind == "wrong_group":
                        errors[i] = store._wrong_group(served_by[i], completion)
                        open_ops.discard(i)
                        continue
                    if completion.kind == "refused":
                        store._last_refusals.append(
                            (served_by[i], completion.code)
                        )
                        fail_over(i, None)
                        continue
                    store._note_served(served_by[i], attempt[i] + 1)
                    kind = ops[i][0]
                    results[i] = (
                        store._update_receipt(completion, served_by[i], attempt[i] + 1)
                        if kind == "update"
                        else store._read_receipt(completion, served_by[i], attempt[i] + 1)
                    )
                    open_ops.discard(i)
                if not open_ops:
                    break
                now = store._sim.now
                expired = [i for i in open_ops if now >= deadline[i]]
                for i in expired:
                    fail_over(i, None)
                if not open_ops:
                    break
                if not store._sim.step():
                    # Event queue drained: nothing further is coming.
                    for i in list(open_ops):
                        kind, key, _ = ops[i]
                        errors[i] = store._request_failed(kind, key)
                        open_ops.discard(i)
        finally:
            for request_id in rid_to_op:
                store._multi_pending.pop(request_id, None)
        for error in errors:
            if error is not None:
                raise error
        return results


class AsyncPipeline(_PipelineBase):
    """Batched frontend over :class:`AsyncStore`: the queued operations
    run as concurrent coroutines (one event-loop turn fires them all, so
    the replica sees the same back-to-back burst the sim pipeline sends).
    """

    async def flush(self) -> list[UpdateReceipt | ReadReceipt]:
        import asyncio

        store = self._store
        ops, self._ops = self._ops, []
        if not ops:
            return []

        async def run(kind: str, key: Hashable, op: Any) -> Any:
            if kind == "update":
                return await store.update(key, op)
            return await store.query(key, op)

        results = await asyncio.gather(
            *(run(kind, key, op) for kind, key, op in ops)
        )
        return list(results)
