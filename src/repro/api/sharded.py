"""ShardedStore: one client surface over many CRDT-Paxos groups.

Routes every command to the group its key lives in (per the client's
:class:`~repro.sharding.routing.RoutingService` snapshot), fans
multi-key work out per group, and converges on stale routing by folding
the epoch-stamped forwarding hints out of
:class:`~repro.errors.WrongGroupError` refusals — a client whose table
predates a migration bounces at most a handful of times before its
override map catches up (replicas always attest the *highest* epoch
they know, so each bounce strictly advances the client's view of the
key unless the move is still in flight, in which case the bounce loop
retries until commit lands).

Safety never rests on the routing snapshot: a replica serves only keys
its group owns (birth table + committed migration marks), so the worst
a stale client can do is take extra hops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Iterable, Mapping

from repro.api.codec import UNKEYED
from repro.api.handles import (
    CounterHandle,
    GSetHandle,
    Handle,
    LWWMapHandle,
    LWWRegisterHandle,
    ORSetHandle,
    PNCounterHandle,
)
from repro.api.store import ReadReceipt, Store, UpdateReceipt
from repro.crdt.base import QueryOp, UpdateOp
from repro.errors import ConfigurationError, WrongGroupError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sharding.routing import RoutingService


class ShardedStore:
    """Routing facade over per-group :class:`~repro.api.store.Store`\\ s.

    Parameters
    ----------
    group_stores:
        ``group name → Store`` — one (keyed) store frontend per group.
    routing:
        The client's routing view; shared with the migration
        coordinator in simulated deployments so committed moves are
        visible immediately, or private (converging via WrongGroup
        hints) for a genuinely remote client.
    max_bounces:
        How many WrongGroup re-routes one operation may take before the
        store gives up (covers the install→commit window, where source
        and destination both refuse and the client ping-pongs).
    store_factory:
        Optional ``group name → Store`` builder consulted when routing
        points at a group with no attached store — how a long-lived
        client follows ring growth without reconstruction.
    """

    def __init__(
        self,
        group_stores: Mapping[str, Store],
        routing: RoutingService,
        *,
        max_bounces: int = 16,
        store_factory: Any = None,
    ) -> None:
        if not group_stores:
            raise ConfigurationError("a sharded store needs at least one group")
        self.stores: dict[str, Store] = dict(group_stores)
        self.routing = routing
        self._store_factory = store_factory
        if max_bounces < 1:
            raise ConfigurationError("max_bounces must be >= 1")
        self.max_bounces = max_bounces
        self.keyed = True
        #: Observability: operations re-routed by WrongGroup refusals,
        #: and operations served per group.
        self.reroutes = 0
        self.ops_by_group: dict[str, int] = {name: 0 for name in self.stores}

    # ------------------------------------------------------------------
    def add_group(self, name: str, store: Store) -> None:
        """Attach a group added to the ring after construction."""
        if name in self.stores:
            raise ConfigurationError(f"group {name!r} already attached")
        self.stores[name] = store
        self.ops_by_group.setdefault(name, 0)

    def group_for(self, key: Hashable) -> str:
        """The group this client would currently route ``key`` to."""
        return self.routing.owner(key)

    def _store_for(self, group: str) -> Store:
        store = self.stores.get(group)
        if store is None and self._store_factory is not None:
            store = self._store_factory(group)
            self.stores[group] = store
            self.ops_by_group.setdefault(group, 0)
        if store is None:
            raise ConfigurationError(
                f"routing points at group {group!r} but no store is "
                f"attached for it (known: {sorted(self.stores)})"
            )
        return store

    # ------------------------------------------------------------------
    # Single-key operations: route, bounce on WrongGroup, converge.
    # ------------------------------------------------------------------
    def _routed(self, kind: str, key: Hashable, op: Any) -> Any:
        last: WrongGroupError | None = None
        for _ in range(self.max_bounces + 1):
            group = self.routing.owner(key)
            store = self._store_for(group)
            try:
                if kind == "update":
                    receipt = store.update(key, op)
                else:
                    receipt = store.query(key, op)
            except WrongGroupError as exc:
                last = exc
                self.reroutes += 1
                if exc.group:
                    self.routing.note(key, exc.epoch, exc.group)
                continue
            self.ops_by_group[group] = self.ops_by_group.get(group, 0) + 1
            return receipt
        raise WrongGroupError(
            f"{kind} for key {key!r} still bouncing after "
            f"{self.max_bounces} re-routes (last hint: group "
            f"{last.group!r} @ epoch {last.epoch})"
            if last is not None
            else f"{kind} for key {key!r} exhausted its re-route budget",
            epoch=last.epoch if last is not None else 0,
            group=last.group if last is not None else "",
        )

    def update(
        self, key: Hashable, op: UpdateOp, *, via: str | None = None
    ) -> UpdateReceipt:
        if via is not None:
            raise ConfigurationError(
                "via= pins a replica within one group; a sharded store "
                "routes by key — pin on the group's own store instead"
            )
        return self._routed("update", key, op)

    def query(
        self, key: Hashable, op: QueryOp, *, via: str | None = None
    ) -> ReadReceipt:
        if via is not None:
            raise ConfigurationError(
                "via= pins a replica within one group; a sharded store "
                "routes by key — pin on the group's own store instead"
            )
        return self._routed("query", key, op)

    def query_value(
        self, key: Hashable, op: QueryOp, *, via: str | None = None
    ) -> Any:
        return self.query(key, op, via=via).value

    # ------------------------------------------------------------------
    # Multi-key fan-out
    # ------------------------------------------------------------------
    def update_many(
        self, items: Iterable[tuple[Hashable, UpdateOp]]
    ) -> list[UpdateReceipt]:
        """Apply many updates, fanned out per owning group.

        Keys are grouped by their routed owner and each group's slice
        goes through that store's :meth:`~repro.api.store.Store.pipeline`
        (one burst per group, feeding the §3.6 proposer batches).  A
        slice that hits a mid-migration WrongGroup falls back to per-key
        routed submission — at-least-once, like every update path here.
        Receipts come back in input order.
        """
        ordered = list(items)
        by_group: dict[str, list[int]] = {}
        for index, (key, _) in enumerate(ordered):
            by_group.setdefault(self.routing.owner(key), []).append(index)
        receipts: list[UpdateReceipt | None] = [None] * len(ordered)
        for group, indexes in by_group.items():
            store = self._store_for(group)
            try:
                pipeline = store.pipeline()
                for index in indexes:
                    key, op = ordered[index]
                    pipeline.update(key, op)
                flushed = pipeline.flush()
            except (WrongGroupError, NotImplementedError):
                # Routing moved under the batch (or the frontend has no
                # pipeline): re-route each key individually.
                for index in indexes:
                    key, op = ordered[index]
                    receipts[index] = self._routed("update", key, op)
                continue
            for index, receipt in zip(indexes, flushed):
                receipts[index] = receipt
            self.ops_by_group[group] = (
                self.ops_by_group.get(group, 0) + len(indexes)
            )
        return receipts  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Typed handles (duck-typed against Handle's store contract)
    # ------------------------------------------------------------------
    def _resolve(self, key: Hashable) -> Hashable:
        if key is UNKEYED:
            raise ConfigurationError(
                "a sharded store routes by key; pass one "
                "(e.g. store.counter('views:home'))"
            )
        return key

    def handle(self, key: Hashable) -> Handle:
        return Handle(self, self._resolve(key))

    def counter(self, key: Hashable) -> CounterHandle:
        return CounterHandle(self, self._resolve(key))

    def pncounter(self, key: Hashable) -> PNCounterHandle:
        return PNCounterHandle(self, self._resolve(key))

    def orset(self, key: Hashable) -> ORSetHandle:
        return ORSetHandle(self, self._resolve(key))

    def gset(self, key: Hashable) -> GSetHandle:
        return GSetHandle(self, self._resolve(key))

    def lwwmap(self, key: Hashable) -> LWWMapHandle:
        return LWWMapHandle(self, self._resolve(key))

    def lwwregister(self, key: Hashable) -> LWWRegisterHandle:
        return LWWRegisterHandle(self, self._resolve(key))

    # ------------------------------------------------------------------
    # Maintenance / observability fan-out
    # ------------------------------------------------------------------
    def flush(self) -> dict[str, int]:
        """Flush every group's replicas; keys are ``group/replica``."""
        flushed: dict[str, int] = {}
        for group, store in self.stores.items():
            for address, spills in store.flush().items():
                flushed[f"{group}/{address}"] = spills
        return flushed

    def rejoin(self) -> dict[str, int]:
        """Open quorum refreshes on every group; keys ``group/replica``."""
        pending: dict[str, int] = {}
        for group, store in self.stores.items():
            for address, count in store.rejoin().items():
                pending[f"{group}/{address}"] = count
        return pending

    def health_report(self) -> dict[str, dict[str, Any]]:
        """Per-group client-side health: replica suspicion + op counts."""
        report: dict[str, dict[str, Any]] = {}
        for group, store in self.stores.items():
            report[group] = {
                "replicas": list(store.addresses),
                "suspected": [
                    address
                    for address in store.addresses
                    if store.health.suspected(address)
                ],
                "ops": self.ops_by_group.get(group, 0),
            }
        return report
