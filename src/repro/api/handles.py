"""Typed per-key handles: the objects application code actually holds.

A :class:`Handle` binds one key of a :class:`~repro.api.store.Store` (or
the single instance of an unkeyed deployment) and exposes the two
operations of the paper's data model — submit an update function
``f_u ∈ U`` or a query function ``f_q ∈ Q`` (§2.2).  The typed
subclasses add the obvious sugar per CRDT (``incr``/``value`` on a
counter, ``add``/``elements`` on an OR-Set, ...), each of which compiles
to exactly those two generic calls.

Handles are cheap value-like objects: creating one performs no IO, and
any number of handles for the same key may coexist.  On an async store
every method returns an awaitable; on the sync (simulator) store it
returns the result directly — the handle just forwards to the store.
"""

from __future__ import annotations

from typing import Any, Generic, Hashable, TypeVar

from repro.api.codec import UNKEYED
from repro.crdt.base import IdentityQuery, QueryOp, StateCRDT, UpdateOp
from repro.crdt.gcounter import GCounterValue, Increment
from repro.crdt.gset import Elements, GSetAdd
from repro.crdt.lwwmap import LWWMapGet, LWWMapKeys, LWWMapPut, LWWMapRemove
from repro.crdt.lwwregister import LWWSet, LWWValue
from repro.crdt.orset import ORSetAdd, ORSetContains, ORSetElements, ORSetRemove
from repro.crdt.pncounter import Decrement, PNCounterValue, PNIncrement

C = TypeVar("C", bound=StateCRDT)


class Handle(Generic[C]):
    """One key's client surface: generic ``update(op)`` / ``query(op)``.

    ``update`` completes after the single MERGE round trip of §3.2's
    update path; ``query`` runs the prepare/vote learn of §3.2's query
    path (one round trip on a consistent quorum, §3.6) and returns a
    :class:`~repro.api.store.ReadReceipt` whose ``value`` is
    ``f_q(learned state)``.
    """

    __slots__ = ("_store", "_key")

    def __init__(self, store: Any, key: Hashable = UNKEYED) -> None:
        self._store = store
        self._key = key

    @property
    def key(self) -> Hashable:
        """The bound key (:data:`~repro.api.codec.UNKEYED` if none)."""
        return self._key

    @property
    def store(self) -> Any:
        return self._store

    def update(self, op: UpdateOp, *, via: str | None = None):
        """Submit ``f_u``; returns (a coroutine of) an UpdateReceipt."""
        return self._store.update(self._key, op, via=via)

    def query(self, op: QueryOp, *, via: str | None = None):
        """Submit ``f_q``; returns (a coroutine of) a ReadReceipt."""
        return self._store.query(self._key, op, via=via)

    def read(self, op: QueryOp | None = None, *, via: str | None = None):
        """``f_q(learned state)`` directly (defaults to the full state)."""
        return self._store.query_value(self._key, op or IdentityQuery(), via=via)

    def __repr__(self) -> str:
        key = "" if self._key is UNKEYED else repr(self._key)
        return f"{type(self).__name__}({key})"


class CounterHandle(Handle):
    """A replicated G-Counter (Algorithm 1): the paper's atomic counter."""

    __slots__ = ()

    def incr(self, amount: int = 1, *, via: str | None = None):
        return self.update(Increment(amount), via=via)

    def value(self, *, via: str | None = None):
        return self._store.query_value(self._key, GCounterValue(), via=via)


class PNCounterHandle(Handle):
    """An increment/decrement counter (two G-Counters)."""

    __slots__ = ()

    def incr(self, amount: int = 1, *, via: str | None = None):
        return self.update(PNIncrement(amount), via=via)

    def decr(self, amount: int = 1, *, via: str | None = None):
        return self.update(Decrement(amount), via=via)

    def value(self, *, via: str | None = None):
        return self._store.query_value(self._key, PNCounterValue(), via=via)


class ORSetHandle(Handle):
    """An observed-remove (add-wins) set."""

    __slots__ = ()

    def add(self, element: Hashable, *, via: str | None = None):
        return self.update(ORSetAdd(element), via=via)

    def remove(self, element: Hashable, *, via: str | None = None):
        return self.update(ORSetRemove(element), via=via)

    def elements(self, *, via: str | None = None):
        return self._store.query_value(self._key, ORSetElements(), via=via)

    def contains(self, element: Hashable, *, via: str | None = None):
        return self._store.query_value(self._key, ORSetContains(element), via=via)


class GSetHandle(Handle):
    """A grow-only set."""

    __slots__ = ()

    def add(self, element: Hashable, *, via: str | None = None):
        return self.update(GSetAdd(element), via=via)

    def elements(self, *, via: str | None = None):
        return self._store.query_value(self._key, Elements(), via=via)


class LWWMapHandle(Handle):
    """A map with last-writer-wins entries and tombstones."""

    __slots__ = ()

    def put(
        self,
        field: Hashable,
        value: Any,
        timestamp: float,
        *,
        via: str | None = None,
    ):
        return self.update(LWWMapPut(field, value, timestamp), via=via)

    def remove(self, field: Hashable, timestamp: float, *, via: str | None = None):
        return self.update(LWWMapRemove(field, timestamp), via=via)

    def get(self, field: Hashable, *, via: str | None = None):
        return self._store.query_value(self._key, LWWMapGet(field), via=via)

    def keys(self, *, via: str | None = None):
        return self._store.query_value(self._key, LWWMapKeys(), via=via)


class LWWRegisterHandle(Handle):
    """A last-writer-wins register."""

    __slots__ = ()

    def set(self, value: Any, timestamp: float, *, via: str | None = None):
        return self.update(LWWSet(value, timestamp), via=via)

    def get(self, *, via: str | None = None):
        return self._store.query_value(self._key, LWWValue(), via=via)
