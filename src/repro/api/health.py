"""Client-side replica suspicion tracking.

The :class:`~repro.api.store.Store` frontends keep one
:class:`ReplicaHealth` each and feed it attempt outcomes: a timeout or a
``Refused`` reply is a *strike*, a completion clears the slate.  Each
strike suspects the replica for an exponentially growing window (capped),
so a replica that flaps under a nemesis is probed with rapidly decreasing
frequency while a genuinely recovered one is re-admitted after a single
successful probe.

Suspicion is advisory, never exclusionary: suspected replicas sort to
the *back* of the fail-over rotation (and may get hedged, shortened
attempt timeouts) but are still tried when nothing healthier answers —
a client must not partition itself away from the only live replica.

The clock is injected so the same tracker serves the virtual-time
simulator and the wall-clock asyncio frontend.
"""

from __future__ import annotations

from typing import Callable


class ReplicaHealth:
    """Per-replica strike counter with exponential suspicion windows."""

    def __init__(
        self,
        clock: Callable[[], float],
        base_window: float = 0.5,
        multiplier: float = 2.0,
        cap: float = 30.0,
    ) -> None:
        if base_window <= 0.0:
            raise ValueError("base_window must be > 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if cap <= 0.0:
            raise ValueError("cap must be > 0")
        self._clock = clock
        self.base_window = base_window
        self.multiplier = multiplier
        self.cap = cap
        self._suspect_until: dict[str, float] = {}
        self._strikes: dict[str, int] = {}

    # ------------------------------------------------------------------
    def record_failure(self, replica: str) -> float:
        """One strike: (re)suspect with the next exponential window.

        Returns the window length applied.
        """
        strikes = self._strikes.get(replica, 0)
        window = min(self.base_window * self.multiplier**strikes, self.cap)
        self._strikes[replica] = strikes + 1
        self._suspect_until[replica] = self._clock() + window
        return window

    def record_success(self, replica: str) -> None:
        """A completed request clears suspicion *and* the strike count."""
        self._suspect_until.pop(replica, None)
        self._strikes.pop(replica, None)

    # ------------------------------------------------------------------
    def suspected(self, replica: str) -> bool:
        """Is the replica inside a suspicion window right now?

        An expired window stops suspecting (the replica gets a probe) but
        keeps the strike count — a failed probe re-suspects for double.
        """
        until = self._suspect_until.get(replica)
        if until is None:
            return False
        if self._clock() >= until:
            del self._suspect_until[replica]
            return False
        return True

    def strikes(self, replica: str) -> int:
        return self._strikes.get(replica, 0)

    def suspected_replicas(self) -> list[str]:
        """Currently suspected replicas (sorted, for determinism)."""
        return sorted(r for r in list(self._suspect_until) if self.suspected(r))
