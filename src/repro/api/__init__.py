"""repro.api — the client surface of the replicated CRDT store.

One facade for every deployment shape: a :class:`Store` over a replica
group (single-instance or keyed, simulated or asyncio) hands out typed
:class:`~repro.api.handles.Handle` objects per key, and every handle
method compiles down to the two commands of the paper's interface —
submit an update function ``f_u ∈ U`` or a query function ``f_q ∈ Q``
(§2.2) — via :mod:`repro.api.codec`.

How each call maps onto the paper's protocol (§3.2–§3.5):

``handle.update(op)`` (and the sugar ``counter.incr()``,
``orset.add(x)``, ``lwwmap.put(...)``, ...)
    The **update path** of §3.2: the receiving replica applies ``f_u``
    at its local acceptor and broadcasts the resulting payload in a
    single ``MERGE`` round trip; the call completes once a quorum has
    durably stored it.  With batching (§3.6) the update joins the
    proposer's current batch; message count is independent of batch
    size.

``handle.query(op)`` (and ``counter.value()``, ``orset.elements()``, ...)
    The **query path** of §3.2: the replica *learns* a payload state via
    PREPARE — one round trip when a consistent quorum answers with
    equivalent payloads (case (a), the §3.6 fast path), a second VOTE
    round trip when rounds agree (case (b)), retries under contention
    (case (c), the §3.5 liveness argument) — then answers with
    ``f_q(learned state)``.  The :class:`~repro.api.store.ReadReceipt`
    reports which way the learn went (``learned_via``, ``round_trips``,
    ``attempts``) and the node's learn sequence number used by the
    §3.4 GLA-Stability checker.

Request ids (``<client>#<n>``)
    The correlation tokens acceptors echo verbatim; every client-side
    retry uses a *fresh* id so stale replies are dropped (§3.2,
    Retrying Requests).

Client timeout / fail-over
    Client-side supervision, as in the paper's evaluation clients: on
    expiry the operation is re-issued to the next replica round-robin.
    Any replica can serve any request — there is no leader to find.

Keyed addressing (``store.counter("views:home")``)
    The fine-granular key-value deployment of §1 (the paper's system
    lives inside the Scalaris store): each key is an independent
    protocol instance; the store wraps commands in ``Keyed`` envelopes
    and the replica routes them to the per-key acceptor/proposer pair.

Quickstart (asyncio)::

    cluster = AsyncioCluster(
        lambda nid, peers: KeyedCrdtReplica(nid, peers, lambda k: GCounter.initial()),
        n_replicas=3,
    )
    async with cluster:
        store = AsyncStore(cluster, client="app")
        views = store.counter("views:home")
        await views.incr()
        print(await views.value())

Quickstart (deterministic simulator)::

    sim = Simulator(seed=7)
    network = SimNetwork(sim)
    cluster = SimCluster(
        sim, network,
        lambda nid, peers: CrdtPaxosReplica(nid, peers, ORSet.initial()),
    )
    store = SimStore(cluster, client="test")
    cart = store.orset()
    cart.add("milk")
    assert "milk" in cart.elements()
"""

from repro.api.codec import (
    UNKEYED,
    Completion,
    RequestIds,
    compile_query,
    compile_update,
    parse_completion,
)
from repro.api.handles import (
    CounterHandle,
    GSetHandle,
    Handle,
    LWWMapHandle,
    LWWRegisterHandle,
    ORSetHandle,
    PNCounterHandle,
)
from repro.api.sharded import ShardedStore
from repro.api.store import (
    AsyncPipeline,
    AsyncStore,
    ReadReceipt,
    SimPipeline,
    SimStore,
    Store,
    UpdateReceipt,
)

__all__ = [
    "AsyncPipeline",
    "AsyncStore",
    "Completion",
    "CounterHandle",
    "GSetHandle",
    "Handle",
    "LWWMapHandle",
    "LWWRegisterHandle",
    "ORSetHandle",
    "PNCounterHandle",
    "ReadReceipt",
    "RequestIds",
    "ShardedStore",
    "SimPipeline",
    "SimStore",
    "Store",
    "UNKEYED",
    "UpdateReceipt",
    "compile_query",
    "compile_update",
    "parse_completion",
]
