"""Runtime harnesses that drive sans-io protocol nodes.

* :class:`~repro.runtime.cluster.SimNodeRuntime` — binds one node to the
  simulated network, models its CPU as a serial server, executes effects
  (sends, timers) and implements crash/recovery under the paper's
  crash-recovery model (internal state survives, timers do not).
* :class:`~repro.runtime.cluster.SimCluster` — builds a whole replica
  group from a factory and offers fault-injection helpers.
* :class:`~repro.runtime.cluster.ClientEndpoint` — a lightweight network
  endpoint for load generators and test clients.
* :mod:`repro.runtime.failures` — declarative crash/recovery schedules.
* :mod:`repro.runtime.asyncio_cluster` — the wall-clock asyncio driver
  used by the runnable examples.
"""

from repro.runtime.cluster import ClientEndpoint, SimCluster, SimNodeRuntime
from repro.runtime.failures import FailureEvent, FailureSchedule

__all__ = [
    "ClientEndpoint",
    "FailureEvent",
    "FailureSchedule",
    "SimCluster",
    "SimNodeRuntime",
]
