"""Declarative crash/recovery schedules for experiments.

The node-failure experiment of the paper (Figure 4) kills one replica
mid-run; a :class:`FailureSchedule` expresses such scripts as data so
benchmarks and tests can share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.runtime.cluster import SimCluster


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled action: crash or recover a replica at a time."""

    time: float
    action: Literal["crash", "recover"]
    address: str


class FailureSchedule:
    """An ordered script of failure events, installable on a cluster."""

    def __init__(self, events: list[FailureEvent] | None = None) -> None:
        self.events: list[FailureEvent] = sorted(
            events or [], key=lambda e: e.time
        )

    def crash(self, time: float, address: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "crash", address))
        self.events.sort(key=lambda e: e.time)
        return self

    def recover(self, time: float, address: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "recover", address))
        self.events.sort(key=lambda e: e.time)
        return self

    def install(self, cluster: SimCluster) -> None:
        """Register every event with the cluster's simulator."""
        for event in self.events:
            if event.action == "crash":
                cluster.crash_at(event.time, event.address)
            else:
                cluster.recover_at(event.time, event.address)

    def __len__(self) -> int:
        return len(self.events)
