"""Wall-clock replica groups on asyncio, plus an awaitable client.

Usage::

    cluster = AsyncioCluster(
        lambda nid, peers: CrdtPaxosReplica(nid, peers, GCounter.initial()),
        n_replicas=3,
    )
    async with cluster:
        client = cluster.client("alice")
        await client.request("r0", ClientUpdate(request_id="u1", op=Increment()))
        reply = await client.request(
            "r1", ClientQuery(request_id="q1", op=GCounterValue())
        )

The cluster runs entirely in-process (one event loop); replicas exchange
messages through :class:`~repro.net.asyncio_transport.AsyncioNetwork`.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import RequestTimeout
from repro.net.asyncio_transport import AsyncioNetwork, AsyncioNodeRuntime
from repro.net.latency import LatencyModel
from repro.net.message import Envelope
from repro.net.node import ProtocolNode
from repro.runtime.cluster import ReplicaFactory


class AsyncioClient:
    """Request/response client: correlates replies by ``request_id``."""

    def __init__(self, network: AsyncioNetwork, address: str) -> None:
        self.address = address
        self._network = network
        self._pending: dict[str, asyncio.Future] = {}
        network.register(address, self._deliver)

    def _deliver(self, envelope: Envelope) -> None:
        request_id = getattr(envelope.payload, "request_id", None)
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(envelope.payload)

    async def request(
        self, replica: str, message: Any, timeout: float = 5.0
    ) -> Any:
        """Send ``message`` (which must carry a ``request_id``) and await
        the correlated reply."""
        request_id = message.request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._network.send(self.address, replica, message)
        try:
            return await asyncio.wait_for(future, timeout=timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise RequestTimeout(
                f"request {request_id} to {replica} timed out after {timeout}s"
            ) from None


class AsyncioCluster:
    """An in-process replica group on the running event loop."""

    def __init__(
        self,
        replica_factory: ReplicaFactory,
        n_replicas: int = 3,
        latency: LatencyModel | None = None,
        name_prefix: str = "r",
        seed: int = 0,
    ) -> None:
        self.network = AsyncioNetwork(latency=latency, seed=seed)
        self.addresses = [f"{name_prefix}{i}" for i in range(n_replicas)]
        self.runtimes: dict[str, AsyncioNodeRuntime] = {}
        self._factory = replica_factory
        self._clients: list[AsyncioClient] = []
        self._started = False

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncioCluster":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> None:
        """Build and start every replica (requires a running loop)."""
        if self._started:
            return
        for address in self.addresses:
            node = self._factory(address, list(self.addresses))
            self.runtimes[address] = AsyncioNodeRuntime(self.network, node)
        for runtime in self.runtimes.values():
            runtime.start()
        self._started = True

    def stop(self) -> None:
        for runtime in self.runtimes.values():
            runtime.crash()  # cancels timers; nothing else to release
        self._started = False

    # ------------------------------------------------------------------
    def client(self, name: str) -> AsyncioClient:
        client = AsyncioClient(self.network, f"client-{name}")
        self._clients.append(client)
        return client

    def node(self, address: str) -> ProtocolNode:
        return self.runtimes[address].node

    def crash(self, address: str) -> None:
        self.runtimes[address].crash()

    def recover(self, address: str) -> None:
        self.runtimes[address].recover()
