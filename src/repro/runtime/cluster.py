"""Simulated cluster runtime: nodes, CPUs, timers, crash/recovery."""

from __future__ import annotations

from typing import Any, Callable

from repro.net.message import Envelope
from repro.net.node import Effects, ProtocolNode
from repro.net.sim_transport import SimNetwork
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.process import SerialProcess, ServiceModel


class SimNodeRuntime:
    """Drives one :class:`ProtocolNode` under the simulator.

    Arriving envelopes queue at a :class:`SerialProcess` modelling the
    node's CPU; handler effects are executed when service completes.
    Crash/recovery follows §2.1: a crashed node receives nothing and its
    timers are lost, but its internal state is intact on recovery.
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        node: ProtocolNode,
        service_model: ServiceModel | None = None,
    ) -> None:
        self._sim = sim
        self._network = network
        self.node = node
        self._service_model = service_model or ServiceModel()
        self._process = SerialProcess(sim, self._handle, self._service_model)
        self._timers: dict[str, Event] = {}
        self.crashed = False
        network.register(node.node_id, self)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._apply(self.node.on_start(self._sim.now))

    def deliver(self, envelope: Envelope) -> None:
        """Network ingress — called by the fabric at the arrival instant."""
        if self.crashed:
            return
        self._process.submit(envelope, envelope.size_bytes())

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the node: drop queued work, lose timers, refuse ingress."""
        if self.crashed:
            return
        self.crashed = True
        self._process.pause()
        for event in self._timers.values():
            event.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Recover with internal state preserved (crash-recovery model)."""
        if not self.crashed:
            return
        self.crashed = False
        self._process.resume()
        self._apply(self.node.on_recover(self._sim.now))

    # ------------------------------------------------------------------
    def apply_effects(self, effects: Effects) -> None:
        """Execute effects produced outside the message/timer path.

        Maintenance hooks (e.g. :meth:`KeyedCrdtReplica.spill_all`, which
        returns a final outbox flush) are invoked directly on the node by
        operator-side code; their effects still need this runtime to
        reach the network and the timer wheel.
        """
        self._apply(effects)

    def _handle(self, envelope: Envelope) -> None:
        effects = self.node.on_message(envelope.src, envelope.payload, self._sim.now)
        self._apply(effects)

    def _fire_timer(self, key: str) -> None:
        if self.crashed:
            return
        self._timers.pop(key, None)
        self._apply(self.node.on_timer(key, self._sim.now))

    def _apply(self, effects: Effects) -> None:
        for key in effects.cancels:
            event = self._timers.pop(key, None)
            if event is not None:
                event.cancel()
        for key, delay in effects.timers:
            existing = self._timers.pop(key, None)
            if existing is not None:
                existing.cancel()
            self._timers[key] = self._sim.schedule(delay, self._fire_timer, key)
        for dst, message in effects.sends:
            self._network.send(self.node.node_id, dst, message)
        if effects.sends:
            send_cost = self._service_model.send_time(len(effects.sends))
            if send_cost > 0.0:
                self._process.extend_busy(send_cost)
        drain = getattr(self.node, "drain_spill_accrued", None)
        if drain is not None:
            self._service_model.charge_io(drain())
        io_cost = self._service_model.drain_accrued()
        if io_cost > 0.0:
            self._process.extend_busy(io_cost)


class ClientEndpoint:
    """A load-generator-side endpoint: replies invoke a callback.

    Client machines are not CPU-modelled — the paper used dedicated load
    generators that were never the bottleneck.
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        address: str,
        on_reply: Callable[[str, Any], None],
    ) -> None:
        self._sim = sim
        self._network = network
        self.address = address
        self._on_reply = on_reply
        network.register(address, self)

    def deliver(self, envelope: Envelope) -> None:
        self._on_reply(envelope.src, envelope.payload)

    def send(self, dst: str, message: Any) -> None:
        self._network.send(self.address, dst, message)


#: Builds the protocol node for one replica: (node_id, all peer ids) → node.
ReplicaFactory = Callable[[str, list[str]], ProtocolNode]


class SimCluster:
    """A replica group under the simulator, with fault-injection helpers."""

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        replica_factory: ReplicaFactory,
        n_replicas: int = 3,
        name_prefix: str = "r",
        service_model: ServiceModel | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.addresses = [f"{name_prefix}{i}" for i in range(n_replicas)]
        self.runtimes: dict[str, SimNodeRuntime] = {}
        for address in self.addresses:
            node = replica_factory(address, list(self.addresses))
            self.runtimes[address] = SimNodeRuntime(
                sim, network, node, service_model
            )
        for runtime in self.runtimes.values():
            runtime.start()

    # ------------------------------------------------------------------
    def node(self, address: str) -> ProtocolNode:
        return self.runtimes[address].node

    def nodes(self) -> list[ProtocolNode]:
        return [self.runtimes[a].node for a in self.addresses]

    def crash(self, address: str) -> None:
        self.runtimes[address].crash()

    def recover(self, address: str) -> None:
        self.runtimes[address].recover()

    def crash_at(self, time: float, address: str) -> None:
        self.sim.at(time, self.crash, address)

    def recover_at(self, time: float, address: str) -> None:
        self.sim.at(time, self.recover, address)

    def hard_kill(
        self, address: str, rebuild: Callable[[str], ProtocolNode]
    ) -> None:
        """kill -9 one replica and bring up a *rebuilt* process in place.

        Unlike :meth:`crash`/:meth:`recover` (which models a pause with
        internal state intact), a hard kill loses everything in RAM: the
        queued work and timers are dropped and the node object itself is
        replaced by whatever ``rebuild(address)`` returns — typically
        ``KeyedCrdtReplica.recover(spill_store, ..., rejoin=True)``
        against the dead generation's store.  If the fresh node exposes a
        ``rejoin()`` hook its effects are applied, so the replica starts
        its read-quorum refreshes immediately.
        """
        runtime = self.runtimes[address]
        runtime.crash()
        fresh = rebuild(address)
        runtime.node = fresh
        runtime.recover()  # resumes the CPU; on_recover == on_start here
        rejoin = getattr(fresh, "rejoin", None)
        if rejoin is not None:
            runtime.apply_effects(rejoin())

    def hard_kill_at(
        self, time: float, address: str, rebuild: Callable[[str], ProtocolNode]
    ) -> None:
        self.sim.at(time, self.hard_kill, address, rebuild)

    def alive(self) -> list[str]:
        return [a for a in self.addresses if not self.runtimes[a].crashed]
