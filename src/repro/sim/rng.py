"""Named, independently seeded random streams.

A simulation uses randomness in several places (network latency, message
loss, workload think behaviour, protocol backoff, fault injection).  If all
of them shared a single ``random.Random``, adding one more draw in any
subsystem would shift every other subsystem's sequence and change the whole
run.  The registry hands out one stream per name, each deterministically
derived from the root seed, so subsystems are isolated from each other.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 rather than ``hash()`` because the latter is randomized per
    interpreter run (PYTHONHASHSEED) and would break reproducibility.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named deterministic random streams."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry rooted at a derived seed.

        Useful when an experiment spawns sub-experiments that should each be
        independently reproducible.
        """
        return RngRegistry(derive_seed(self.root_seed, name))
