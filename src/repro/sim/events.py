"""Event queue primitives for the discrete-event simulator.

Events are ordered by ``(time, sequence number)``.  The sequence number is a
monotonically increasing tie breaker which guarantees a *deterministic* total
order even when many events share a timestamp — essential for reproducible
protocol interleavings.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Instances are ordered by ``(time, seq)``; the callback and its arguments
    do not participate in the ordering.  Cancellation is implemented with a
    tombstone flag so that removal is O(1) and the heap invariant is kept.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(default=(), compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[..., None], args: tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback(*args)`` at ``time`` and return its handle."""
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None if exhausted.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the timestamp of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
