"""Serial-server process model with FIFO queueing.

The paper's replicas are Erlang processes: each handles one message at a
time ("serial processes", §3.2 conventions).  Throughput saturation in the
evaluation comes from exactly this — a replica's CPU is a serial server and
requests queue behind each other.  :class:`SerialProcess` reproduces that:
items submitted while the server is busy wait in FIFO order, and each item
occupies the server for a service time drawn from a :class:`ServiceModel`.

Leader-based protocols funnel every command through one such server, which
is why their throughput ceiling is lower than the leaderless protocol's in
the reproduced figures.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.kernel import Simulator


class ServiceModel:
    """Computes how long the server is busy processing one item.

    ``base`` is the fixed per-message CPU cost; ``per_byte`` adds a
    size-proportional component (merging a large CRDT payload costs more
    than acking a small message); ``per_send`` charges for every message
    the handler emits, which is what makes a fan-out leader a bottleneck.

    Handlers that block on storage (a write-through spill flush, a
    rehydrating read) report the stall through :meth:`charge_io`; the
    runtime drains it with :meth:`drain_accrued` and extends the
    server's busy period, so IO time shows up in every benchmark's
    virtual clock instead of silently costing nothing.
    """

    def __init__(
        self, base: float = 2e-6, per_byte: float = 0.0, per_send: float = 0.0
    ) -> None:
        self.base = base
        self.per_byte = per_byte
        self.per_send = per_send
        self.accrued_io_seconds = 0.0

    def service_time(self, size_bytes: int) -> float:
        return self.base + self.per_byte * size_bytes

    def send_time(self, n_sends: int) -> float:
        return self.per_send * n_sends

    def charge_io(self, seconds: float) -> None:
        """Accrue a storage stall to be billed against the serial server."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative IO time: {seconds}")
        self.accrued_io_seconds += seconds

    def drain_accrued(self) -> float:
        """Return and reset IO time charged since the last drain."""
        accrued = self.accrued_io_seconds
        self.accrued_io_seconds = 0.0
        return accrued

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceModel(base={self.base}, per_byte={self.per_byte}, "
            f"per_send={self.per_send})"
        )


class SerialProcess:
    """A FIFO serial server bound to a simulator.

    ``handler(item)`` is invoked when the item *finishes* service; queueing
    and service delays have already elapsed in virtual time at that point.
    The process can be paused (crash) and resumed (recovery); items submitted
    while paused are dropped, matching a crashed replica that cannot receive
    messages (the unreliable network of the system model makes this
    indistinguishable from message loss).
    """

    def __init__(
        self,
        sim: Simulator,
        handler: Callable[[Any], None],
        service_model: ServiceModel | None = None,
    ) -> None:
        self._sim = sim
        self._handler = handler
        self._service = service_model or ServiceModel()
        self._queue: deque[tuple[Any, int]] = deque()
        self._busy = False
        self._paused = False
        self._extra_busy = 0.0
        self.items_processed = 0
        self.items_dropped = 0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, item: Any, size_bytes: int = 0) -> None:
        """Enqueue an item for processing (arrival instant is ``sim.now``)."""
        if self._paused:
            self.items_dropped += 1
            return
        self._queue.append((item, size_bytes))
        if not self._busy:
            self._start_next()

    def pause(self) -> None:
        """Crash: drop the backlog and refuse new arrivals.

        The item currently in service still completes — in reality the
        crash could land mid-handler, but protocol handlers are atomic in
        the Erlang model the paper assumes, so completing it is faithful.
        """
        self._paused = True
        self.items_dropped += len(self._queue)
        self._queue.clear()

    def resume(self) -> None:
        """Recover: accept arrivals again (internal state was preserved)."""
        self._paused = False

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        item, size = self._queue.popleft()
        duration = self._service.service_time(size)
        self.busy_time += duration
        self._sim.schedule(duration, self._finish, item)

    def extend_busy(self, duration: float) -> None:
        """Charge extra CPU time to the item currently in service.

        Handlers (via their runtime) call this for work whose cost is only
        known after processing — e.g. the messages they fanned out.
        """
        if duration < 0:
            raise ValueError(f"duration cannot be negative: {duration}")
        if self._busy:
            self._extra_busy += duration

    def _finish(self, item: Any) -> None:
        self.items_processed += 1
        self._extra_busy = 0.0
        if not self._paused:
            self._handler(item)
        if self._extra_busy > 0.0:
            self.busy_time += self._extra_busy
            self._sim.schedule(self._extra_busy, self._start_next)
        else:
            self._start_next()
