"""Deterministic discrete-event simulation kernel.

This package replaces the physical test bed of the paper (a three node
cluster connected with 10 Gbit/s Ethernet, driven by the Erlang runtime)
with a deterministic, seedable discrete-event simulator:

* :class:`~repro.sim.kernel.Simulator` — virtual clock and event queue,
* :class:`~repro.sim.rng.RngRegistry` — named, independently seeded random
  streams so that subsystems do not perturb each other's randomness,
* :class:`~repro.sim.process.SerialProcess` — a serial server with a FIFO
  ingress queue and configurable service times, used to model the CPU of a
  replica.  Queueing delay at these servers is what produces realistic
  saturation behaviour in the benchmark figures.

All simulations are fully deterministic given a seed, which the test suite
exploits to reproduce protocol interleavings exactly.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.process import SerialProcess, ServiceModel
from repro.sim.rng import RngRegistry

__all__ = [
    "Event",
    "EventQueue",
    "RngRegistry",
    "SerialProcess",
    "ServiceModel",
    "Simulator",
]
