"""The discrete-event simulator: virtual clock plus event dispatch loop."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry


class Simulator:
    """Virtual-time event loop.

    The simulator owns the virtual clock (``now``, in seconds) and an event
    queue.  Components schedule callbacks with :meth:`schedule` / :meth:`at`
    and the driver advances time with :meth:`run` or :meth:`step`.  Time only
    moves when events are executed; executing an event is instantaneous in
    virtual time.

    A single :class:`~repro.sim.rng.RngRegistry` is attached so that all
    components of one simulation draw from seed-derived streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self._queue = EventQueue()
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now={self.now}"
            )
        return self._queue.push(time, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue returned an event from the past")
        self.now = event.time
        self._events_executed += 1
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events executed
        by this call.

        When ``until`` is given, the clock is advanced to exactly ``until``
        at the end even if the queue drained earlier, so that subsequent
        scheduling happens relative to the requested horizon.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and self.now < until:
            self.now = until
        return executed

    @property
    def events_executed(self) -> int:
        """Total events executed over the lifetime of this simulator."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled stubs)."""
        return len(self._queue)
