"""Stable cross-process key encoding.

Two distant subsystems hash or persist store keys and must agree across
Python versions, hash seeds, and OS processes:

* the spill index (:mod:`repro.storage.segmented`) persists
  ``encode_key`` bytes and looks records up by them after a restart;
* consistent-hash routing (:mod:`repro.sharding.routing`) places keys
  on the ring by an integer digest of the key.

Raw pickle (the former key codec) is neither canonical nor stable —
and ``repr``-based hashing breaks on any container whose iteration
order depends on the per-process hash seed (frozensets).  Here keys are
encoded with the strict tagged value codec: scalars, tuples and
frozensets get one canonical byte string everywhere.  Keys outside that
shape fall back to a marked pickle encoding — they still round-trip,
but only canonical keys are guaranteed identical across processes (the
keyed deployments in this repository use strings, ints and tuples
throughout).
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, Hashable

from repro.errors import SerializationError
from repro.wire.values import decode_bytes, encode_value

#: Prefix for the non-canonical pickle fallback; the strict value codec
#: never emits 0xFF as a leading tag, so the namespaces cannot collide.
_FALLBACK = b"\xff"


def encode_key(key: Hashable) -> bytes:
    """Encode a store key; canonical for every hashable value shape the
    deployments use (None/bool/int/float/str/bytes/tuple/frozenset)."""
    out = bytearray()
    try:
        encode_value(key, out, strict=True)
    except SerializationError:
        return _FALLBACK + pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
    return bytes(out)


def decode_key(data: bytes) -> Any:
    """Invert :func:`encode_key`."""
    if data[:1] == _FALLBACK:
        try:
            return pickle.loads(data[1:])
        except Exception as exc:
            raise SerializationError(f"undecodable spill key: {exc!r}") from exc
    return decode_bytes(data)


def stable_key_hash(key: Hashable) -> int:
    """Process-independent 32-bit digest of a key (ring placement)."""
    return zlib.crc32(encode_key(key))
