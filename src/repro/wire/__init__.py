"""repro.wire — the binary wire stack.

Wire format & delta replication
===============================

**Value codec** (:mod:`repro.wire.values`).  One recursive tagged
encoding covers scalars, containers, and every registered protocol
class (CRDT payloads, update/query ops, ``Round``, core + keyed +
migration messages, the baselines' RSM messages).  Integers are
zig-zag varints; unordered containers are serialized with elements
sorted by encoded bytes, so the same value yields the same bytes in
every process — the property ring placement, spill keys, and digests
all lean on.  Registered classes encode as ``class tag · field count ·
fields``; the tag order in :mod:`repro.wire.registry` is part of the
format (append-only).

**Framing** (:mod:`repro.wire.framing`).  A frame is ``"Cw" · version ·
uvarint length · body · CRC32``.  :func:`~repro.wire.framing.encode_frame`
/ :func:`~repro.wire.framing.decode_frame` handle one message;
:class:`~repro.wire.framing.FrameDecoder` incrementally splits a socket
byte stream with zero-copy ``memoryview`` parsing.  Foreign magic,
unknown versions, truncation, and CRC rot are all rejected with
:class:`~repro.errors.SerializationError` before any value decoding.

**Exact sizing** (:mod:`repro.wire.sizer`).  Importing this package
installs :func:`~repro.wire.sizer.exact_wire_size` into
:func:`repro.net.message.wire_size`, so simulator byte accounting
reports real encoded lengths for every registered message instead of
structural estimates (unregistered objects keep the estimator).

**Stable keys & digests** (:mod:`repro.wire.keys`,
:mod:`repro.wire.digest`).  ``encode_key`` gives spill files and the
sharding ring one canonical byte string per key across processes;
``stable_digest`` is a CRC32 over a payload's canonical encoding — the
cross-process state fingerprint delta anti-entropy compares.

**Delta replication** (see :mod:`repro.core.proposer`).  With
``delta_merge`` a proposer ships join-decompositions — the op's delta,
and on re-drive the accumulated deltas since the batch opened — instead
of full states.  A delta MERGE carries the proposer's full-state
digest; the acceptor answers MERGED with its own post-join digest, and
when a peer's digest keeps disagreeing (it likely missed earlier
deltas, e.g. across a partition or restart) the proposer pushes one
full-state MERGE to re-sync it (``anti_entropy`` config).  Shipping a
full state is always safe — it is exactly the pre-delta wire payload —
so digest collisions or false mismatches cost bandwidth, never safety.

The transports put all of this on the wire: the asyncio network and
the multi-process bench rig (``python -m repro.bench net``) move
length-prefixed frames over real sockets, and the sim/adversarial
drivers route every delivered payload through encode→decode so checker
campaigns exercise the codec end to end.
"""

from repro.wire import registry as _registry  # noqa: F401  (assigns wire tags)
from repro.wire.digest import stable_digest
from repro.wire.framing import (
    WIRE_MAGIC,
    WIRE_VERSION,
    FrameDecoder,
    decode_body,
    decode_frame,
    encode_body,
    encode_frame,
)
from repro.wire.keys import decode_key, encode_key, stable_key_hash
from repro.wire.sizer import exact_wire_size
from repro.wire.values import registered_classes, spec_for

from repro.net.message import install_exact_sizer as _install

_install(exact_wire_size)

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "FrameDecoder",
    "decode_body",
    "decode_frame",
    "decode_key",
    "encode_body",
    "encode_frame",
    "encode_key",
    "exact_wire_size",
    "registered_classes",
    "spec_for",
    "stable_digest",
    "stable_key_hash",
]
