"""Exact wire sizing: sim byte accounting stops being an estimate.

:func:`repro.net.message.wire_size` historically *estimated* message
sizes structurally.  Once the binary codec exists there is no reason to
guess: for any wire-registered class the exact size is the length of
its encoded body.  :func:`exact_wire_size` is installed into
``repro.net.message`` as a pre-hook (see ``install_exact_sizer``) by
the transports, so every envelope the simulators, the adversarial
explorer, and the asyncio network account for is sized by the real
codec.

Unregistered objects return ``None`` and fall through to the
structural estimator — tests and ad-hoc payloads keep their documented
sizing, and the estimator survives as the *assertable approximation*
(``tests/wire/test_size_fidelity.py`` pins it within tolerance of the
truth this function reports).
"""

from __future__ import annotations

from typing import Any

from repro.wire.values import _SPECS_BY_CLASS, encode_value


def exact_wire_size(obj: Any) -> int | None:
    """Exact encoded body length for registered classes, else ``None``."""
    if type(obj) not in _SPECS_BY_CLASS:
        return None
    out = bytearray()
    encode_value(obj, out)
    return len(out)
