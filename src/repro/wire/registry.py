"""The wire tag registry: every protocol class the codec can carry.

Importing this module assigns each class a small integer tag in the
order listed below.  **The order is part of the wire format**: a peer
decodes tags positionally, so new classes are appended at the end and
existing entries are never removed or reordered without bumping
:data:`repro.wire.framing.WIRE_VERSION`.

Three kinds of classes are registered:

* frozen dataclasses (CRDT payloads, protocol/baseline messages,
  :class:`~repro.core.rounds.Round`, keyed wrappers) — fields are the
  dataclass ``init`` fields, decode rebuilds via keyword construction so
  memo slots (``_size``) are reinitialized by the generated
  ``__init__``;
* slotted op classes (update/query functions) — fields are the
  ``__slots__`` chain, decode rebuilds positionally (their constructors
  take the slots in order);
* field-less ops (``Elements()``, ``IdentityQuery()``, …) — a bare tag.
"""

from __future__ import annotations

import dataclasses

from repro.wire.values import register

from repro.core import messages as core_messages
from repro.core import keyspace as core_keyspace
from repro.core.rounds import Round
from repro.crdt import base as crdt_base
from repro.crdt import (
    gcounter,
    gmap,
    graph,
    gset,
    lwwmap,
    lwwregister,
    maxregister,
    mvregister,
    orset,
    pncounter,
    twophase_set,
    vector_clock,
)
from repro.baselines.gla import node as gla_node
from repro.baselines.multipaxos import messages as mp_messages
from repro.baselines.raft import log as raft_log
from repro.baselines.raft import messages as raft_messages
from repro.net import control as net_control


def _register_dataclass(cls: type) -> None:
    fields = tuple(f.name for f in dataclasses.fields(cls) if f.init)
    register(cls, fields, positional=False)


def _register_slotted(cls: type) -> None:
    names: list[str] = []
    for klass in reversed(cls.__mro__):
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    register(cls, tuple(names), positional=True)


# ---------------------------------------------------------------------
# CRDT payloads (all frozen slotted dataclasses).
# ---------------------------------------------------------------------
for _cls in (
    gcounter.GCounter,
    pncounter.PNCounter,
    maxregister.MaxRegister,
    gset.GSet,
    twophase_set.TwoPhaseSet,
    orset.ORSet,
    lwwregister.LWWRegister,
    mvregister.MVRegister,
    lwwmap.LWWMap,
    gmap.GMap,
    graph.TwoPhaseGraph,
    vector_clock.VectorClock,
):
    _register_dataclass(_cls)

# ---------------------------------------------------------------------
# Update / query ops (slotted plain classes; constructors take the
# slots positionally).
# ---------------------------------------------------------------------
for _cls in (
    gcounter.Increment,
    gcounter.GCounterValue,
    pncounter.PNIncrement,
    pncounter.Decrement,
    pncounter.PNCounterValue,
    maxregister.MaxSet,
    maxregister.MaxValue,
    gset.GSetAdd,
    gset.Contains,
    gset.Elements,
    twophase_set.TwoPhaseAdd,
    twophase_set.TwoPhaseRemove,
    twophase_set.TwoPhaseContains,
    twophase_set.TwoPhaseElements,
    orset.ORSetAdd,
    orset.ORSetRemove,
    orset.ORSetContains,
    orset.ORSetElements,
    lwwregister.LWWSet,
    lwwregister.LWWValue,
    mvregister.MVWrite,
    mvregister.MVValues,
    lwwmap.LWWMapPut,
    lwwmap.LWWMapRemove,
    lwwmap.LWWMapGet,
    lwwmap.LWWMapKeys,
    gmap.GMapApply,
    gmap.GMapGet,
    graph.AddVertex,
    graph.RemoveVertex,
    graph.AddEdge,
    graph.RemoveEdge,
    graph.HasVertex,
    graph.HasEdge,
    graph.AsNetworkX,
    crdt_base.IdentityQuery,
):
    if _cls in (graph.AddEdge, graph.RemoveEdge, graph.HasEdge):
        # These store one ``edge`` tuple but construct from its two
        # halves; the slot order alone cannot rebuild them.
        register(
            _cls,
            ("edge",),
            positional=True,
            build=lambda edge, _cls=_cls: _cls(*edge),
        )
    else:
        _register_slotted(_cls)

# ---------------------------------------------------------------------
# Coordination metadata and core protocol messages.
# ---------------------------------------------------------------------
for _cls in (
    Round,
    core_messages.ClientUpdate,
    core_messages.ClientQuery,
    core_messages.UpdateDone,
    core_messages.QueryDone,
    core_messages.Refused,
    core_messages.WrongGroup,
    core_messages.MigrateFreeze,
    core_messages.MigrateFrozen,
    core_messages.MigrateInstall,
    core_messages.MigrateInstalled,
    core_messages.MigrateCommit,
    core_messages.MigrateCommitAck,
    core_messages.Merge,
    core_messages.Merged,
    core_messages.Prepare,
    core_messages.PrepareAck,
    core_messages.PrepareNack,
    core_messages.Vote,
    core_messages.Voted,
    core_messages.VoteNack,
    core_keyspace.Keyed,
    core_keyspace.KeyedBatch,
):
    _register_dataclass(_cls)

# ---------------------------------------------------------------------
# Baseline RSM messages (Raft, Multi-Paxos, GLA) — the bench compares
# byte counts across protocols, so they ride the same codec.
# ---------------------------------------------------------------------
for _cls in (
    raft_log.LogEntry,
    raft_messages.RequestVote,
    raft_messages.RequestVoteReply,
    raft_messages.AppendEntries,
    raft_messages.AppendEntriesReply,
    raft_messages.InstallSnapshot,
    raft_messages.InstallSnapshotReply,
    mp_messages.PaxEntry,
    mp_messages.Phase1a,
    mp_messages.Phase1b,
    mp_messages.Phase2a,
    mp_messages.Phase2b,
    mp_messages.Heartbeat,
    mp_messages.HeartbeatAck,
    mp_messages.CatchupRequest,
    mp_messages.CatchupReply,
    gla_node.Propose,
    gla_node.ProposeAck,
    gla_node.ProposeNack,
    net_control.NetStats,
    net_control.NetStatsReply,
    net_control.Sever,
    net_control.SeverDone,
    net_control.GarbageInject,
    net_control.GarbageInjectDone,
):
    _register_dataclass(_cls)
