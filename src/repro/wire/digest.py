"""Stable state digests for delta anti-entropy.

:meth:`repro.crdt.base.StateCRDT.digest` is built on salted ``hash()``
— perfect for process-local memo keys, useless for comparing states
across processes.  Anti-entropy needs the latter: a proposer stamps its
MERGE with a digest of its full local state, and an acceptor whose
post-merge state hashes differently may have missed earlier deltas.

The digest here is a CRC32 over the state's canonical wire encoding
(sorted-container value codec), so two replicas holding equal payloads
always agree on it, in any process, under any hash seed.  Digest
*equality* implies payload equality only probabilistically (32-bit) —
the protocol uses mismatch as a **hint** to ship a full state, which is
always safe, so a collision can cost at most one skipped catch-up.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.wire.values import encode_value

_registry_loaded = False


def _ensure_registry() -> None:
    # Lazy: the tag registry imports the protocol modules, which may be
    # mid-import when a core module imports *us* at module level.
    global _registry_loaded
    if not _registry_loaded:
        import repro.wire.registry  # noqa: F401  (populates the registry)

        _registry_loaded = True


def stable_digest(state: Any) -> int:
    """Canonical cross-process digest of a CRDT payload."""
    _ensure_registry()
    out = bytearray()
    encode_value(state, out, strict=True)
    return zlib.crc32(out)
