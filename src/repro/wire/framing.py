"""Length-prefixed frames: what actually crosses a socket.

A frame is::

    magic "Cw" · version byte · uvarint body length · body · CRC32(body)

The magic/version prefix rejects foreign or future-format streams
before any decoding happens; the CRC rejects bit-rot and torn writes
(same posture as the storage layer's record framing); the length prefix
lets a stream reader find frame boundaries without parsing bodies.

:class:`FrameDecoder` is the incremental flip side for sockets: feed it
byte chunks as they arrive, collect complete messages.  Parsing works
over one contiguous buffer with ``memoryview`` slices, so a frame's
body is never copied on its way to :func:`decode_body`.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.errors import SerializationError
from repro.wire.values import decode_value, encode_value
from repro.wire.varint import read_uvarint, write_uvarint

WIRE_MAGIC = b"Cw"
WIRE_VERSION = 1

#: Longest possible frame header: magic + version + 10-byte uvarint.
_MAX_HEADER = len(WIRE_MAGIC) + 1 + 10


def encode_body(message: Any, strict: bool = False) -> bytes:
    """Encode a message body (no frame) — the unit wire sizes measure.

    ``strict`` forbids the pickle escape hatch: an unregistered type
    raises :class:`SerializationError` at the sender instead of silently
    bloating the frame with a non-canonical pickle blob.  The socket
    path (:mod:`repro.net.stream`) runs strict by default.
    """
    out = bytearray()
    encode_value(message, out, strict)
    return bytes(out)


def decode_body(data) -> Any:
    """Decode one message body; trailing bytes are an error."""
    value, pos = decode_value(data, 0)
    if pos != len(data):
        raise SerializationError(f"{len(data) - pos} trailing bytes in body")
    return value


def encode_frame(message: Any, strict: bool = False) -> bytes:
    """Encode ``message`` as one self-delimiting checked frame.

    ``strict`` is threaded through to :func:`encode_body`: unregistered
    types fail loudly at the sender rather than falling back to pickle.
    """
    body = encode_body(message, strict)
    out = bytearray(WIRE_MAGIC)
    out.append(WIRE_VERSION)
    write_uvarint(out, len(body))
    out += body
    out += zlib.crc32(body).to_bytes(4, "big")
    return bytes(out)


def decode_frame(data) -> tuple[Any, int]:
    """Decode one frame at the start of ``data``.

    Returns ``(message, bytes_consumed)``; raises
    :class:`SerializationError` on bad magic, unknown version, CRC
    mismatch, or truncation.
    """
    view = memoryview(data)
    prefix = len(WIRE_MAGIC)
    if len(view) < prefix + 1:
        raise SerializationError("truncated frame header")
    if bytes(view[:prefix]) != WIRE_MAGIC:
        raise SerializationError("not a wire frame (bad magic)")
    version = view[prefix]
    if version != WIRE_VERSION:
        raise SerializationError(
            f"unsupported wire version {version} (expected {WIRE_VERSION})"
        )
    length, pos = read_uvarint(view, prefix + 1)
    end = pos + length
    if end + 4 > len(view):
        raise SerializationError("truncated frame body")
    body = view[pos:end]
    crc = int.from_bytes(view[end : end + 4], "big")
    if zlib.crc32(body) != crc:
        raise SerializationError("frame CRC mismatch")
    message, used = decode_value(body, 0)
    if used != length:
        raise SerializationError(f"{length - used} trailing bytes in frame body")
    return message, end + 4


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    ``feed()`` buffers arriving chunks and yields every complete
    message.  A malformed frame raises and poisons the decoder — on a
    real connection the only safe response to framing corruption is to
    drop the link, since frame boundaries are lost.
    """

    __slots__ = ("_buffer", "_poisoned", "frames_decoded", "bytes_decoded")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False
        self.frames_decoded = 0
        self.bytes_decoded = 0

    def feed(self, data: bytes) -> list[Any]:
        """Buffer ``data`` and return every complete decoded message."""
        if self._poisoned:
            raise SerializationError("decoder poisoned by an earlier bad frame")
        self._buffer += data
        messages: list[Any] = []
        while True:
            view = memoryview(self._buffer)
            try:
                prefix = len(WIRE_MAGIC)
                if len(view) < prefix + 2:
                    return messages  # magic+version+≥1 length byte incomplete
                try:
                    length, pos = read_uvarint(view, prefix + 1)
                except SerializationError:
                    if len(view) >= _MAX_HEADER:
                        self._poisoned = True
                        raise
                    return messages  # length varint still arriving
                if len(view) < pos + length + 4:
                    return messages  # body/CRC still arriving
                try:
                    message, consumed = decode_frame(view)
                except SerializationError:
                    self._poisoned = True
                    raise
            finally:
                view.release()
            self.frames_decoded += 1
            self.bytes_decoded += consumed
            del self._buffer[:consumed]
            messages.append(message)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)
