"""LEB128-style variable-length integers, the codec's only number format.

Unsigned varints frame every length and tag; signed integers ride the
same encoding through a zig-zag mapping that keeps small magnitudes
small regardless of sign.  Python integers are arbitrary precision, so
both directions loop over 7-bit groups instead of assuming a width.
"""

from __future__ import annotations

from repro.errors import SerializationError


def write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned varint to ``out``."""
    if value < 0:
        raise SerializationError(f"uvarint cannot encode negative {value}")
    while True:
        group = value & 0x7F
        value >>= 7
        if value:
            out.append(group | 0x80)
        else:
            out.append(group)
            return


def read_uvarint(buf, pos: int) -> tuple[int, int]:
    """Read an unsigned varint at ``pos``; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    limit = len(buf)
    while True:
        if pos >= limit:
            raise SerializationError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed integer onto the unsigned varint domain."""
    return value * 2 if value >= 0 else -value * 2 - 1


def unzigzag(value: int) -> int:
    """Invert :func:`zigzag`."""
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def write_varint(out: bytearray, value: int) -> None:
    """Append a signed (zig-zag) varint to ``out``."""
    write_uvarint(out, zigzag(value))


def read_varint(buf, pos: int) -> tuple[int, int]:
    """Read a signed (zig-zag) varint at ``pos``."""
    raw, pos = read_uvarint(buf, pos)
    return unzigzag(raw), pos
