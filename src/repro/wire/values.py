"""The tagged binary value codec underneath every wire message.

One recursive encoding covers the entire protocol surface: scalars,
containers, and *registered classes* — protocol messages, CRDT payloads,
update/query ops, and :class:`~repro.core.rounds.Round` — which are
encoded as a class tag plus their fields re-entering this codec.  The
registry is populated by :mod:`repro.wire.registry`; this module only
holds the mechanics.

Determinism is a hard requirement (ring placement, spill keys, and
digest-based anti-entropy all hash encoded bytes): unordered containers
(frozensets, dicts) are serialized with their elements sorted by encoded
byte string, which is stable across processes and hash seeds where
``repr`` and salted ``hash`` iteration order are not.

Values outside the registered/scalar/container world fall back to a
pickle escape hatch — correct but neither compact nor cross-process
canonical; protocol-critical values never need it.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable

from repro.errors import SerializationError
from repro.wire.varint import read_uvarint, read_varint, write_uvarint, write_varint

T_NONE = 0
T_FALSE = 1
T_TRUE = 2
T_INT = 3
T_FLOAT = 4
T_STR = 5
T_BYTES = 6
T_TUPLE = 7
T_LIST = 8
T_FROZENSET = 9
T_DICT = 10
T_OBJ = 11
T_PICKLE = 12

_FLOAT = struct.Struct(">d")


class ClassSpec:
    """How one registered class crosses the wire.

    ``fields`` is the ordered attribute list; ``positional`` selects
    whether decode rebuilds via ``cls(*values)`` (slotted op classes,
    whose ``__init__`` takes the slots in order) or ``cls(**kwargs)``
    (dataclasses, whose non-init memo slots must be reinitialized by the
    generated constructor).  ``build`` overrides both for the handful of
    classes whose constructor signature does not mirror their stored
    fields (e.g. the graph edge ops, which store one ``edge`` tuple but
    construct from ``(source, target)``); it receives the decoded field
    values in order.
    """

    __slots__ = ("tag", "cls", "fields", "positional", "build")

    def __init__(
        self,
        tag: int,
        cls: type,
        fields: tuple[str, ...],
        positional: bool,
        build: Callable[..., Any] | None = None,
    ) -> None:
        self.tag = tag
        self.cls = cls
        self.fields = fields
        self.positional = positional
        self.build = build


#: exact type → spec; populated by :func:`register`.
_SPECS_BY_CLASS: dict[type, ClassSpec] = {}
#: wire tag → spec.
_SPECS_BY_TAG: dict[int, ClassSpec] = {}


def register(
    cls: type,
    fields: tuple[str, ...],
    positional: bool,
    build: Callable[..., Any] | None = None,
) -> None:
    """Assign ``cls`` the next wire tag.  Registration order is part of
    the wire format — append, never reorder (see :data:`WIRE_VERSION` in
    :mod:`repro.wire.framing`)."""
    if cls in _SPECS_BY_CLASS:
        raise SerializationError(f"{cls.__name__} already wire-registered")
    spec = ClassSpec(len(_SPECS_BY_TAG), cls, fields, positional, build)
    _SPECS_BY_CLASS[cls] = spec
    _SPECS_BY_TAG[spec.tag] = spec


def registered_classes() -> tuple[type, ...]:
    """Every wire-registered class, in tag order."""
    return tuple(_SPECS_BY_TAG[tag].cls for tag in sorted(_SPECS_BY_TAG))


def spec_for(cls: type) -> ClassSpec | None:
    return _SPECS_BY_CLASS.get(cls)


def encode_value(value: Any, out: bytearray, strict: bool = False) -> None:
    """Append the tagged encoding of ``value`` to ``out``.

    ``strict`` forbids the pickle fallback — used for key encoding,
    where a silently unstable byte string would corrupt ring placement.
    """
    if value is None:
        out.append(T_NONE)
        return
    kind = type(value)
    if kind is bool:
        out.append(T_TRUE if value else T_FALSE)
        return
    if kind is int:
        out.append(T_INT)
        write_varint(out, value)
        return
    if kind is float:
        out.append(T_FLOAT)
        out += _FLOAT.pack(value)
        return
    if kind is str:
        data = value.encode("utf-8")
        out.append(T_STR)
        write_uvarint(out, len(data))
        out += data
        return
    if kind is bytes:
        out.append(T_BYTES)
        write_uvarint(out, len(value))
        out += value
        return
    if kind is tuple:
        out.append(T_TUPLE)
        write_uvarint(out, len(value))
        for item in value:
            encode_value(item, out, strict)
        return
    if kind is list:
        out.append(T_LIST)
        write_uvarint(out, len(value))
        for item in value:
            encode_value(item, out, strict)
        return
    if kind is frozenset:
        chunks = []
        for item in value:
            chunk = bytearray()
            encode_value(item, chunk, strict)
            chunks.append(bytes(chunk))
        chunks.sort()
        out.append(T_FROZENSET)
        write_uvarint(out, len(chunks))
        for chunk in chunks:
            out += chunk
        return
    if kind is dict:
        pairs = []
        for key, item in value.items():
            encoded_key = bytearray()
            encode_value(key, encoded_key, strict)
            encoded_item = bytearray()
            encode_value(item, encoded_item, strict)
            pairs.append((bytes(encoded_key), bytes(encoded_item)))
        pairs.sort()
        out.append(T_DICT)
        write_uvarint(out, len(pairs))
        for encoded_key, encoded_item in pairs:
            out += encoded_key
            out += encoded_item
        return
    spec = _SPECS_BY_CLASS.get(kind)
    if spec is not None:
        out.append(T_OBJ)
        write_uvarint(out, spec.tag)
        write_uvarint(out, len(spec.fields))
        for name in spec.fields:
            encode_value(getattr(value, name), out, strict)
        return
    if strict:
        raise SerializationError(
            f"{kind.__name__} has no canonical wire encoding"
        )
    data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    out.append(T_PICKLE)
    write_uvarint(out, len(data))
    out += data


def decode_value(buf, pos: int = 0) -> tuple[Any, int]:
    """Decode one tagged value at ``pos``; returns ``(value, next_pos)``."""
    if pos >= len(buf):
        raise SerializationError("truncated wire value")
    tag = buf[pos]
    pos += 1
    if tag == T_NONE:
        return None, pos
    if tag == T_FALSE:
        return False, pos
    if tag == T_TRUE:
        return True, pos
    if tag == T_INT:
        return read_varint(buf, pos)
    if tag == T_FLOAT:
        end = pos + 8
        if end > len(buf):
            raise SerializationError("truncated float")
        return _FLOAT.unpack(bytes(buf[pos:end]))[0], end
    if tag == T_STR:
        length, pos = read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise SerializationError("truncated string")
        return bytes(buf[pos:end]).decode("utf-8"), end
    if tag == T_BYTES:
        length, pos = read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise SerializationError("truncated bytes")
        return bytes(buf[pos:end]), end
    if tag in (T_TUPLE, T_LIST, T_FROZENSET):
        count, pos = read_uvarint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = decode_value(buf, pos)
            items.append(item)
        if tag == T_TUPLE:
            return tuple(items), pos
        if tag == T_LIST:
            return items, pos
        return frozenset(items), pos
    if tag == T_DICT:
        count, pos = read_uvarint(buf, pos)
        result = {}
        for _ in range(count):
            key, pos = decode_value(buf, pos)
            item, pos = decode_value(buf, pos)
            result[key] = item
        return result, pos
    if tag == T_OBJ:
        class_tag, pos = read_uvarint(buf, pos)
        spec = _SPECS_BY_TAG.get(class_tag)
        if spec is None:
            raise SerializationError(f"unknown wire class tag {class_tag}")
        count, pos = read_uvarint(buf, pos)
        if count != len(spec.fields):
            raise SerializationError(
                f"{spec.cls.__name__} arity mismatch: wire has {count} "
                f"fields, this build expects {len(spec.fields)}"
            )
        values = []
        for _ in range(count):
            item, pos = decode_value(buf, pos)
            values.append(item)
        try:
            if spec.build is not None:
                return spec.build(*values), pos
            if spec.positional:
                return spec.cls(*values), pos
            return spec.cls(**dict(zip(spec.fields, values))), pos
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(
                f"cannot rebuild {spec.cls.__name__} from wire: {exc!r}"
            ) from exc
    if tag == T_PICKLE:
        length, pos = read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise SerializationError("truncated pickled value")
        try:
            return pickle.loads(bytes(buf[pos:end])), end
        except Exception as exc:
            raise SerializationError(f"undecodable fallback value: {exc!r}") from exc
    raise SerializationError(f"unknown wire value tag {tag}")


def encode_bytes(value: Any, strict: bool = False) -> bytes:
    """One-shot :func:`encode_value` into a fresh byte string."""
    out = bytearray()
    encode_value(value, out, strict)
    return bytes(out)


def decode_bytes(data) -> Any:
    """One-shot :func:`decode_value`; the buffer must hold exactly one
    value (trailing bytes are a framing error, not silently ignored)."""
    value, pos = decode_value(data, 0)
    if pos != len(data):
        raise SerializationError(
            f"{len(data) - pos} trailing bytes after wire value"
        )
    return value
