"""Log-bucketed latency histogram.

Used where storing every sample would be wasteful (long simulations with
millions of requests).  Buckets grow geometrically, giving a bounded
relative error on percentile estimates (≤ half the growth factor) over a
huge dynamic range — the same idea as HDR histograms.
"""

from __future__ import annotations

import math


class LatencyHistogram:
    """Streaming histogram over positive values (seconds).

    ``growth`` is the bucket width ratio; 1.05 keeps percentile estimates
    within ~2.5 % of the true value, plenty for latency plots.
    """

    def __init__(self, min_value: float = 1e-6, growth: float = 1.05) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self._min_value = min_value
        self._log_growth = math.log(growth)
        self._growth = growth
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    # ------------------------------------------------------------------
    def _bucket_of(self, value: float) -> int:
        if value <= self._min_value:
            return 0
        return 1 + int(math.log(value / self._min_value) / self._log_growth)

    def _bucket_midpoint(self, bucket: int) -> float:
        if bucket == 0:
            return self._min_value / 2.0
        low = self._min_value * self._growth ** (bucket - 1)
        return low * (1 + self._growth) / 2.0

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative: {value}")
        self._buckets[self._bucket_of(value)] = (
            self._buckets.get(self._bucket_of(value), 0) + 1
        )
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "LatencyHistogram") -> None:
        if other._min_value != self._min_value or other._growth != self._growth:
            raise ValueError("cannot merge histograms with different geometry")
        for bucket, count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        for extreme in (other.min, other.max):
            if extreme is not None:
                self.min = extreme if self.min is None else min(self.min, extreme)
                self.max = extreme if self.max is None else max(self.max, extreme)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate percentile (clamped to observed min/max)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            raise ValueError("percentile of empty histogram")
        target = p / 100.0 * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                estimate = self._bucket_midpoint(bucket)
                assert self.min is not None and self.max is not None
                return min(max(estimate, self.min), self.max)
        assert self.max is not None
        return self.max
