"""Fixed-window time-series aggregation.

Reproduces the paper's measurement discipline: "request data aggregation
in 1 s intervals" for throughput (Figure 1) and windowed latency
percentiles over elapsed time for the failure experiment (Figure 4).
"""

from __future__ import annotations

from collections import defaultdict

from repro.stats.summary import percentile


class WindowedThroughput:
    """Counts completions per fixed window of simulated time."""

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._counts: dict[int, int] = defaultdict(int)

    def add(self, time: float) -> None:
        self._counts[int(time // self.window)] += 1

    def rates(self, start: float = 0.0, end: float | None = None) -> list[float]:
        """Requests/second for every complete window in ``[start, end)``.

        Windows with zero completions inside the range are reported as 0 —
        an unavailable system shows up as gaps, not as missing data.
        """
        if not self._counts and end is None:
            return []
        first = int(start // self.window)
        if end is None:
            last = max(self._counts)
        else:
            last = int(end // self.window) - 1
        return [
            self._counts.get(index, 0) / self.window
            for index in range(first, last + 1)
        ]


class WindowedPercentile:
    """Latency percentile per fixed window (Figure 4's y-axis)."""

    def __init__(self, window: float = 10.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._samples: dict[int, list[float]] = defaultdict(list)

    def add(self, time: float, value: float) -> None:
        self._samples[int(time // self.window)].append(value)

    def series(
        self, p: float, start: float = 0.0, end: float | None = None
    ) -> list[tuple[float, float | None]]:
        """``(window start time, percentile)`` pairs; None for idle windows."""
        if not self._samples and end is None:
            return []
        first = int(start // self.window)
        last = (
            max(self._samples) if end is None else int(end // self.window) - 1
        )
        series: list[tuple[float, float | None]] = []
        for index in range(first, last + 1):
            samples = self._samples.get(index)
            value = percentile(samples, p) if samples else None
            series.append((index * self.window, value))
        return series
