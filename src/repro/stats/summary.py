"""Percentiles and nonparametric confidence intervals.

The paper reports "the median with 99 % confidence intervals (CI)" over
one-second throughput windows; :func:`median_with_ci` reproduces that with
the standard distribution-free order-statistic interval for the median.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def percentile(data: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0–100) by linear interpolation.

    Matches numpy's default ("linear") method but has no array dependency
    so protocol code can use it too.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not data:
        raise ValueError("percentile of empty data")
    ordered = sorted(data)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (p / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class MedianCI:
    """A median estimate with a distribution-free confidence interval."""

    median: float
    low: float
    high: float
    confidence: float

    @property
    def half_width_fraction(self) -> float:
        """CI half-width relative to the median (paper: within 3 %)."""
        if self.median == 0:
            return 0.0
        return max(self.median - self.low, self.high - self.median) / abs(
            self.median
        )


# Two-sided normal quantiles for the confidence levels experiments use.
_Z_BY_CONFIDENCE = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def median_with_ci(data: Sequence[float], confidence: float = 0.99) -> MedianCI:
    """Median with an order-statistic (binomial) confidence interval.

    The interval is ``[x_(l), x_(u)]`` with ranks from the normal
    approximation ``n/2 ∓ z·√n/2``; exact for large n, conservative for
    small n.  For n < 3 the interval degenerates to the data range.
    """
    if confidence not in _Z_BY_CONFIDENCE:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_BY_CONFIDENCE)}, got {confidence}"
        )
    if not data:
        raise ValueError("median_with_ci of empty data")
    ordered = sorted(data)
    n = len(ordered)
    mid = percentile(ordered, 50)
    if n < 3:
        return MedianCI(mid, ordered[0], ordered[-1], confidence)
    z = _Z_BY_CONFIDENCE[confidence]
    spread = z * math.sqrt(n) / 2.0
    lower_rank = max(0, math.floor(n / 2.0 - spread))
    upper_rank = min(n - 1, math.ceil(n / 2.0 + spread) - 1)
    return MedianCI(mid, ordered[lower_rank], ordered[upper_rank], confidence)
