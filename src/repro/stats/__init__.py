"""Statistics utilities for the benchmark harness.

Implements the paper's reporting methodology: request data aggregated in
one-second windows, medians with 99 % confidence intervals, and latency
percentiles (the evaluation reports 95th-percentile latencies).
"""

from repro.stats.histogram import LatencyHistogram
from repro.stats.summary import median_with_ci, percentile
from repro.stats.timeseries import WindowedPercentile, WindowedThroughput

__all__ = [
    "LatencyHistogram",
    "WindowedPercentile",
    "WindowedThroughput",
    "median_with_ci",
    "percentile",
]
