"""Declarative fault schedules: events, windows, and installation.

A :class:`NemesisSchedule` is a named list of fault events on a virtual
timeline starting at 0.  Events are plain frozen dataclasses — a
schedule is data, so the same one drives both execution paths:

* :meth:`NemesisSchedule.install_sim` translates it onto the
  latency-model stack — link events become
  :class:`~repro.net.faults.LinkDisruption` entries on a
  :class:`~repro.net.faults.FaultPlan`, process events become
  ``crash_at`` / ``recover_at`` / ``hard_kill_at`` calls on a
  :class:`~repro.runtime.cluster.SimCluster`, and IO events toggle
  :meth:`~repro.storage.faulty.FaultySpillStore.break_io` windows via
  simulator callbacks.
* :class:`~repro.nemesis.campaign.KeyedNemesis` replays the same events
  against the checker's :class:`~repro.checker.scheduler.\
KeyedInterleavingExplorer`, scaling the timeline to scheduler steps.

Times are in the schedule's own units (seconds on the sim path); pass
``at=`` to :meth:`install_sim` to shift the whole schedule.  Every event
window eventually closes — :meth:`NemesisSchedule.heal_time` is the
instant the last fault lifts, after which the system must recover on its
own (the acceptance bar for every named scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.net.faults import FaultPlan, LinkDisruption

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.net.node import ProtocolNode
    from repro.runtime.cluster import SimCluster


@dataclass(frozen=True)
class Partition:
    """Cut links between two replica sets for a window.

    ``symmetric=False`` makes it one-way: ``side_a → side_b`` traffic is
    cut while replies still flow — the asymmetric-reachability case that
    defeats naive "I can hear you so you can hear me" failure detectors.
    """

    start: float
    until: float
    side_a: frozenset[str]
    side_b: frozenset[str]
    symmetric: bool = True


@dataclass(frozen=True)
class LossBurst:
    """Probabilistic packet loss on matching links for a window."""

    start: float
    until: float
    probability: float
    src: frozenset[str] | None = None
    dst: frozenset[str] | None = None
    symmetric: bool = True


@dataclass(frozen=True)
class DuplicationBurst:
    """Probabilistic packet duplication on matching links for a window."""

    start: float
    until: float
    probability: float
    src: frozenset[str] | None = None
    dst: frozenset[str] | None = None
    symmetric: bool = True


@dataclass(frozen=True)
class DelaySpike:
    """Extra per-message delay (plus uniform jitter) for a window."""

    start: float
    until: float
    extra_delay: float
    jitter: float = 0.0
    src: frozenset[str] | None = None
    dst: frozenset[str] | None = None
    symmetric: bool = True


@dataclass(frozen=True)
class Crash:
    """Pause a replica (state intact) and recover it later."""

    at: float
    replica: str
    recover_at: float


@dataclass(frozen=True)
class HardKill:
    """kill -9 a replica: RAM lost, rebuilt from durable state + rejoin."""

    at: float
    replica: str


@dataclass(frozen=True)
class IoFault:
    """Spill-store brownout window: every put/fsync fails until it ends.

    Requires the replica's spill store to be (or wrap) a
    :class:`~repro.storage.faulty.FaultySpillStore`.  ``replica=None``
    browns out every replica's store at once.
    """

    start: float
    until: float
    replica: str | None = None


#: Any schedulable fault.
NemesisEvent = (
    Partition | LossBurst | DuplicationBurst | DelaySpike | Crash | HardKill | IoFault
)

_LINK_EVENTS = (Partition, LossBurst, DuplicationBurst, DelaySpike)


@dataclass
class NemesisSchedule:
    """A named, ordered collection of fault events."""

    name: str
    events: list[NemesisEvent] = field(default_factory=list)

    def add(self, event: NemesisEvent) -> "NemesisSchedule":
        self.events.append(event)
        return self

    # ------------------------------------------------------------------
    def heal_time(self) -> float:
        """Instant the last fault lifts (0.0 for an empty schedule)."""
        latest = 0.0
        for event in self.events:
            if isinstance(event, Crash):
                latest = max(latest, event.recover_at)
            elif isinstance(event, HardKill):
                latest = max(latest, event.at)
            else:
                latest = max(latest, event.until)
        return latest

    def link_events(self) -> list[NemesisEvent]:
        return [e for e in self.events if isinstance(e, _LINK_EVENTS)]

    # ------------------------------------------------------------------
    def install_sim(
        self,
        plan: FaultPlan,
        cluster: "SimCluster | None" = None,
        at: float = 0.0,
        rebuild: Callable[[str], "ProtocolNode"] | None = None,
        stores: dict[str, object] | None = None,
    ) -> None:
        """Install the schedule onto the latency-model stack.

        ``plan`` must be the :class:`FaultPlan` the cluster's network was
        built with.  ``cluster`` is required for node-level events
        (:class:`Crash`, :class:`HardKill`, :class:`IoFault`); link-only
        schedules install onto a bare plan — useful when the cluster is
        built later from the same plan (e.g. the workload runner).
        ``rebuild`` is required if the schedule contains
        :class:`HardKill` events (it builds the replacement node, see
        :meth:`SimCluster.hard_kill`); ``stores`` maps replica id →
        faulty spill store and is required for :class:`IoFault` events.
        """
        for event in self.events:
            if isinstance(event, Partition):
                plan.add_disruption(
                    LinkDisruption(
                        start=at + event.start,
                        until=at + event.until,
                        src=event.side_a,
                        dst=event.side_b,
                        symmetric=event.symmetric,
                        loss_probability=1.0,
                    )
                )
            elif isinstance(event, LossBurst):
                plan.add_disruption(
                    LinkDisruption(
                        start=at + event.start,
                        until=at + event.until,
                        src=event.src,
                        dst=event.dst,
                        symmetric=event.symmetric,
                        loss_probability=event.probability,
                    )
                )
            elif isinstance(event, DuplicationBurst):
                plan.add_disruption(
                    LinkDisruption(
                        start=at + event.start,
                        until=at + event.until,
                        src=event.src,
                        dst=event.dst,
                        symmetric=event.symmetric,
                        duplicate_probability=event.probability,
                    )
                )
            elif isinstance(event, DelaySpike):
                plan.add_disruption(
                    LinkDisruption(
                        start=at + event.start,
                        until=at + event.until,
                        src=event.src,
                        dst=event.dst,
                        symmetric=event.symmetric,
                        extra_delay=event.extra_delay,
                        delay_jitter=event.jitter,
                    )
                )
            elif isinstance(event, Crash):
                if cluster is None:
                    raise ValueError(
                        f"schedule {self.name!r} contains node-level "
                        "events; install_sim needs a cluster="
                    )
                cluster.crash_at(at + event.at, event.replica)
                cluster.recover_at(at + event.recover_at, event.replica)
            elif isinstance(event, HardKill):
                if cluster is None:
                    raise ValueError(
                        f"schedule {self.name!r} contains node-level "
                        "events; install_sim needs a cluster="
                    )
                if rebuild is None:
                    raise ValueError(
                        f"schedule {self.name!r} contains a HardKill; "
                        "install_sim needs a rebuild= callback"
                    )
                cluster.hard_kill_at(at + event.at, event.replica, rebuild)
            elif isinstance(event, IoFault):
                if cluster is None:
                    raise ValueError(
                        f"schedule {self.name!r} contains node-level "
                        "events; install_sim needs a cluster="
                    )
                targets = (
                    [event.replica]
                    if event.replica is not None
                    else list(stores or {})
                )
                if stores is None or any(t not in stores for t in targets):
                    raise ValueError(
                        f"schedule {self.name!r} contains an IoFault; "
                        "install_sim needs stores= with a faulty store "
                        "per affected replica"
                    )
                for target in targets:
                    store = stores[target]
                    cluster.sim.at(at + event.start, store.break_io)
                    cluster.sim.at(at + event.until, store.heal_io)
