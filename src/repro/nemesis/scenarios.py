"""Named nemesis scenarios: composed fault schedules with a registry.

Each builder takes the replica id list and returns a
:class:`~repro.nemesis.schedule.NemesisSchedule` on a ~one-unit-per-act
timeline (seconds on the sim path; the explorer driver rescales).  They
are compositions, not primitives — ``flapping_link`` is several short
partitions plus a loss burst, ``disk_brownout`` staggers IO-fault
windows so quorums always include a healthy disk, and so on.  All of
them heal: :meth:`NemesisSchedule.heal_time` is finite, and every
campaign asserts the system resumes service after it with no manual
intervention.

Use :func:`scenario` to build one by name, :data:`SCENARIOS` to iterate
all of them (the scenario sweep tests do).
"""

from __future__ import annotations

from typing import Callable

from repro.nemesis.schedule import (
    Crash,
    DelaySpike,
    DuplicationBurst,
    HardKill,
    IoFault,
    LossBurst,
    NemesisSchedule,
    Partition,
)


def partition_majority(replicas: list[str]) -> NemesisSchedule:
    """Cut one replica away from the connected majority for a while.

    The majority side keeps a quorum and must keep committing; clients
    homed on the minority replica see bounded-time ``QuorumUnavailable``
    refusals (its re-drives exhaust) and fail over.  After the heal the
    minority catches up via normal re-drives — no rejoin needed, its
    state was never lost.
    """
    minority = frozenset(replicas[:1])
    majority = frozenset(replicas[1:])
    return NemesisSchedule(
        "partition_majority",
        [Partition(start=1.0, until=3.0, side_a=minority, side_b=majority)],
    )


def flapping_link(replicas: list[str]) -> NemesisSchedule:
    """One link flaps: short cuts, loss between them, a one-way episode.

    The nastiest schedule for backoff logic — a fixed retry timer either
    hammers the dead link or sits out the healthy windows; jittered
    exponential backoff with reset-on-progress must ride through.
    """
    a, b = frozenset(replicas[:1]), frozenset(replicas[1:2])
    events = [
        Partition(start=0.5, until=1.0, side_a=a, side_b=b),
        LossBurst(start=1.0, until=1.5, probability=0.4, src=a, dst=b),
        Partition(start=1.5, until=2.0, side_a=a, side_b=b, symmetric=False),
        LossBurst(start=2.0, until=2.5, probability=0.4, src=a, dst=b),
        Partition(start=2.5, until=3.0, side_a=a, side_b=b),
    ]
    return NemesisSchedule("flapping_link", events)


def rolling_hard_kill(replicas: list[str]) -> NemesisSchedule:
    """kill -9 every replica in turn, one at a time, rejoin between.

    Staggered so each victim's rejoin has a healthy quorum to refresh
    from before the next kill lands.  Requires durable spill stores
    (``write_through``/``group_sync``) — each generation restarts from
    whatever its policy persisted.
    """
    return NemesisSchedule(
        "rolling_hard_kill",
        [
            HardKill(at=1.0 + i, replica=replica)
            for i, replica in enumerate(replicas)
        ],
    )


def disk_brownout(replicas: list[str]) -> NemesisSchedule:
    """Staggered spill-store IO-fault windows across the cluster.

    While a replica's disk is browned out, every ``write_through``
    persist fails; the replica must *refuse* the affected acks (clients
    see ``Refused(code="storage")`` and retry elsewhere) and resume by
    itself when the window closes.  Windows are staggered so a healthy
    write quorum always exists.
    """
    events: list = [
        IoFault(start=1.0 + 0.5 * i, until=1.5 + 0.5 * i, replica=replica)
        for i, replica in enumerate(replicas)
    ]
    return NemesisSchedule("disk_brownout", events)


def kill_during_rejoin(replicas: list[str]) -> NemesisSchedule:
    """Hard-kill a second replica while the first is still rejoining.

    The second kill lands immediately after the first victim restarts,
    so its read-quorum refreshes race the second victim's death — the
    quorum available to each rejoin shrinks to the bare majority.  (The
    explorer-side campaign uses the predicate-triggered
    :class:`~repro.nemesis.campaign.KillDuringRejoin` driver instead,
    which watches the rejoin state rather than trusting timing.)
    """
    return NemesisSchedule(
        "kill_during_rejoin",
        [
            HardKill(at=1.0, replica=replicas[1 % len(replicas)]),
            HardKill(at=1.02, replica=replicas[2 % len(replicas)]),
        ],
    )


def delay_storm(replicas: list[str]) -> NemesisSchedule:
    """Cluster-wide delay spikes with duplication — no loss at all.

    Reordering and duplication without drops: the pure §2.1 asynchrony
    adversary.  Exercises stale-reply discipline (request ids) and the
    idempotence of re-driven merges.
    """
    everyone = frozenset(replicas)
    return NemesisSchedule(
        "delay_storm",
        [
            DelaySpike(
                start=0.5, until=2.5, extra_delay=0.05, jitter=0.1,
                src=everyone, dst=everyone,
            ),
            DuplicationBurst(
                start=0.5, until=2.5, probability=0.3,
                src=everyone, dst=everyone,
            ),
        ],
    )


def crash_quorum_edge(replicas: list[str]) -> NemesisSchedule:
    """Crash a minority (pause, state intact) right at the quorum edge.

    With ``2f+1`` replicas, ``f`` sleep through the window; the rest
    must keep serving with the bare quorum, and the sleepers' timers are
    lost — on recovery their re-drives restart from backoff zero.
    """
    f = (len(replicas) - 1) // 2
    return NemesisSchedule(
        "crash_quorum_edge",
        [
            Crash(at=1.0, replica=replica, recover_at=2.5)
            for replica in replicas[:f]
        ],
    )


#: Name → builder registry; the sweep campaigns iterate this.
SCENARIOS: dict[str, Callable[[list[str]], NemesisSchedule]] = {
    "partition_majority": partition_majority,
    "flapping_link": flapping_link,
    "rolling_hard_kill": rolling_hard_kill,
    "disk_brownout": disk_brownout,
    "kill_during_rejoin": kill_during_rejoin,
    "delay_storm": delay_storm,
    "crash_quorum_edge": crash_quorum_edge,
}


def scenario(name: str, replicas: list[str]) -> NemesisSchedule:
    """Build the named scenario for this replica set."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
    return builder(replicas)
