"""Process-level nemesis: real processes, real sockets, real SIGKILL.

PR 7's nemesis drives faults through the simulator; this module drives
them through the operating system.  A :class:`ProcessCluster` spawns one
OS process per replica — each a
:class:`~repro.net.stream.StreamNodeServer` around a
:class:`~repro.core.keyspace.KeyedCrdtReplica` with a
:class:`~repro.storage.SegmentedSpillStore` on disk — and the nemesis
verbs are the real thing:

* :meth:`ProcessCluster.kill` — SIGKILL the replica process mid-traffic
  (no atexit, no flush: whatever the durability policy persisted is all
  the next generation gets);
* :meth:`ProcessCluster.restart` — start a cold process over the dead
  generation's spill directory, rebuilding via
  :meth:`~repro.core.keyspace.KeyedCrdtReplica.recover` with
  ``rejoin=True`` (every recovered key refreshes its §3.3 pair from a
  read quorum before serving — the paper's log-less recovery story on
  actual hardware);
* :func:`~repro.net.stream.StreamClient.sever` /
  :func:`~repro.net.stream.StreamClient.inject_garbage` — tear down
  established TCP connections, or write garbage bytes into a live
  replica-to-replica stream, exercising the transport supervisor's
  teardown-and-redial path.

:func:`run_kill_campaign` is the checker-grade composition: closed-loop
client traffic sustained by fail-over across a SIGKILL outage, a marker
operation committed while the victim is dead, and — after the cold
restart — a linearizable read served by the *restarted* replica that
must include the op it missed.  The bench rig reuses the same cluster
for ``net_kill_retention`` (``python -m repro.bench net``).

Everything here requires working loopback sockets and process spawning;
callers gate on :func:`~repro.bench.netbench.sockets_available` and the
tests skip cleanly in sandboxes (the established loopback-skip pattern).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Any

from repro.core.config import CrdtPaxosConfig
from repro.errors import RequestTimeout, TransportError

_HOST = "127.0.0.1"
#: Seconds to wait for a replica process to signal ready.
_STARTUP_TIMEOUT = 30.0


def _factory_for(state: str):
    """``key → bottom payload`` factory by name (spawn needs picklable
    worker args, so the state type crosses the process boundary as a
    string, not a callable)."""
    if state == "gset":
        from repro.crdt.gset import GSet

        return lambda key: GSet.initial()
    if state == "gcounter":
        from repro.crdt.gcounter import GCounter

        return lambda key: GCounter.initial()
    raise ValueError(f"unknown replica state type {state!r}")


# ----------------------------------------------------------------------
# Replica process
# ----------------------------------------------------------------------
def _replica_worker(
    node_id: str,
    ports: dict[str, int],
    config: CrdtPaxosConfig,
    state: str,
    spill_dir: str | None,
    recovering: bool,
    ready: Any,
    stop: Any,
) -> None:
    """Entry point of one replica process (module-level so the spawn
    start method can import it)."""
    from repro.net.stream import uvloop_installed

    uvloop_installed()
    asyncio.run(
        _run_replica(
            node_id, ports, config, state, spill_dir, recovering, ready, stop
        )
    )


async def _run_replica(
    node_id: str,
    ports: dict[str, int],
    config: CrdtPaxosConfig,
    state: str,
    spill_dir: str | None,
    recovering: bool,
    ready: Any,
    stop: Any,
) -> None:
    from repro.core.keyspace import KeyedCrdtReplica
    from repro.net.stream import StreamNodeServer
    from repro.storage import SegmentedSpillStore

    peers = sorted(ports)
    factory = _factory_for(state)
    if spill_dir is not None:
        store = SegmentedSpillStore(spill_dir)
        if recovering:
            # The dead generation was SIGKILLed: no clean-shutdown
            # marker.  rejoin=True marks every stored key pending a
            # read-quorum refresh before it serves (§3.3 prepare).
            replica = KeyedCrdtReplica.recover(
                store, node_id, peers, factory, config, rejoin=True
            )
        else:
            replica = KeyedCrdtReplica(
                node_id, peers, factory, config, spill_store=store
            )
    else:
        replica = KeyedCrdtReplica(node_id, peers, factory, config)
    server = StreamNodeServer(
        replica,
        _HOST,
        ports[node_id],
        peers={nid: (_HOST, p) for nid, p in ports.items() if nid != node_id},
    )
    await server.start()
    if recovering and hasattr(replica, "rejoin"):
        # Open every pending refresh proactively so the replica
        # converges while idle instead of lazily on first touch.
        server.apply_effects(replica.rejoin())
    ready.set()
    # The stop event is a cross-process primitive; polling it beats
    # burning a thread on a blocking wait.
    while not stop.is_set():
        await asyncio.sleep(0.05)
    await server.close()


# ----------------------------------------------------------------------
# The cluster harness
# ----------------------------------------------------------------------
class ProcessCluster:
    """One OS process per replica, supervised from the parent.

    The cluster owns a spill directory per replica (inside ``data_dir``,
    or a self-cleaning temporary directory), so a SIGKILLed member can
    be restarted cold over its own durable state.  Usable as a context
    manager; :meth:`stop` is idempotent.
    """

    def __init__(
        self,
        n_replicas: int = 3,
        config: CrdtPaxosConfig | None = None,
        state: str = "gset",
        data_dir: str | None = None,
        durable: bool = True,
    ) -> None:
        from repro.bench.netbench import reserve_ports

        self._ctx = multiprocessing.get_context("spawn")
        self.config = config or CrdtPaxosConfig()
        self.state = state
        self.durable = durable
        self.ports = {
            f"r{i}": port for i, port in enumerate(reserve_ports(n_replicas))
        }
        self._stop = self._ctx.Event()
        self._processes: dict[str, Any] = {}
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if durable:
            if data_dir is None:
                self._tempdir = tempfile.TemporaryDirectory(
                    prefix="repro-nemesis-"
                )
                data_dir = self._tempdir.name
            self._data_dir: pathlib.Path | None = pathlib.Path(data_dir)
        else:
            self._data_dir = None

    # ------------------------------------------------------------------
    @property
    def replicas(self) -> list[str]:
        return sorted(self.ports)

    @property
    def placements(self) -> dict[str, tuple[str, int]]:
        return {nid: (_HOST, port) for nid, port in self.ports.items()}

    def spill_dir(self, node_id: str) -> str | None:
        if self._data_dir is None:
            return None
        return str(self._data_dir / node_id)

    def __enter__(self) -> "ProcessCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def start(self, timeout: float = _STARTUP_TIMEOUT) -> None:
        readies = []
        for nid in self.replicas:
            readies.append(self._spawn(nid, recovering=False))
        deadline = time.monotonic() + timeout
        for nid, ready in zip(self.replicas, readies):
            if not ready.wait(timeout=max(0.0, deadline - time.monotonic())):
                raise TimeoutError(f"replica process {nid} failed to start")

    def _spawn(self, node_id: str, recovering: bool) -> Any:
        ready = self._ctx.Event()
        process = self._ctx.Process(
            target=_replica_worker,
            args=(
                node_id,
                self.ports,
                self.config,
                self.state,
                self.spill_dir(node_id),
                recovering,
                ready,
                self._stop,
            ),
            daemon=True,
        )
        process.start()
        self._processes[node_id] = process
        return ready

    def kill(self, node_id: str) -> None:
        """SIGKILL a replica process: RAM gone, sockets reset, no flush."""
        process = self._processes[node_id]
        process.kill()
        process.join(timeout=10.0)

    def is_alive(self, node_id: str) -> bool:
        process = self._processes.get(node_id)
        return process is not None and process.is_alive()

    def restart(
        self, node_id: str, timeout: float = _STARTUP_TIMEOUT
    ) -> None:
        """Cold-restart a killed replica over its spill directory.

        The new process recovers via ``recover(rejoin=True)``: stored
        keys refresh from a read quorum before first use, so promises
        the dead generation made after its last durable write can never
        be silently re-granted.  Requires ``durable=True``.
        """
        if self._data_dir is None:
            raise ValueError(
                "restart needs durable=True (a spill directory to recover "
                "from); a non-durable replica has no post-kill identity"
            )
        old = self._processes.get(node_id)
        if old is not None and old.is_alive():
            raise ValueError(f"replica {node_id} is still alive; kill it first")
        ready = self._spawn(node_id, recovering=True)
        if not ready.wait(timeout=timeout):
            raise TimeoutError(f"replica process {node_id} failed to restart")

    def stop(self) -> None:
        self._stop.set()
        for process in self._processes.values():
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes.clear()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


# ----------------------------------------------------------------------
# The checker-grade kill campaign
# ----------------------------------------------------------------------
@dataclass
class KillCampaignReport:
    """What the campaign observed; the asserting caller grades it."""

    #: Client ops acknowledged over the whole campaign.
    ops_total: int
    #: Ops acknowledged while the victim was dead (fail-over kept them
    #: flowing: must be > 0 for the outage to count as survived).
    ops_during_outage: int
    #: Fail-over attempts the client made.
    failovers: int
    #: The restarted replica answered a linearizable read containing the
    #: marker op committed while it was dead.
    missed_op_visible: bool
    #: Wall seconds from SIGKILL to the restarted replica answering.
    recovery_seconds: float
    #: Transport fault counters from the restarted victim, for
    #: exercised-ness assertions (redials observed by survivors etc.).
    victim_stats: Any | None
    survivor_stats: list[Any]


async def run_kill_campaign(
    cluster: ProcessCluster,
    victim: str | None = None,
    ops: int = 45,
    kill_after: int = 15,
    restart_after: int = 30,
    key: str = "survivors",
    timeout: float = 10.0,
) -> KillCampaignReport:
    """SIGKILL a replica mid-traffic, keep clients flowing by fail-over,
    cold-restart it, and make it answer for the op it missed.

    Timeline (in acknowledged client ops): drive the closed loop; at
    ``kill_after`` SIGKILL ``victim`` and commit a *marker* op through a
    survivor; at ``restart_after`` begin the cold restart (in a worker
    thread, traffic keeps flowing); after ``ops`` total, issue a
    linearizable read of ``key`` addressed to the restarted victim — the
    reply must contain the marker element the victim never saw.
    """
    from repro.core.keyspace import Keyed
    from repro.core.messages import ClientQuery, ClientUpdate, UpdateDone
    from repro.crdt.gset import Elements, GSetAdd
    from repro.net.stream import StreamClient

    if cluster.state != "gset":
        raise ValueError("the kill campaign drives GSet workloads")
    victim = victim or cluster.replicas[0]
    client = StreamClient("nemesis", cluster.placements)
    marker = f"missed-while-{victim}-was-dead"
    killed_at = 0.0
    restart_task: asyncio.Task | None = None
    done = 0
    during_outage = 0
    try:
        while done < ops:
            if done == kill_after and cluster.is_alive(victim):
                cluster.kill(victim)
                killed_at = time.perf_counter()
                # The marker: committed by the survivors while the
                # victim is dead — the restarted victim must later
                # serve a linearizable read that includes it.
                reply = await client.request_any(
                    Keyed(
                        key=key,
                        message=ClientUpdate("nemesis/marker", GSetAdd(marker)),
                    ),
                    timeout=timeout,
                )
                assert isinstance(
                    getattr(reply, "message", reply), UpdateDone
                ), f"marker op refused: {reply!r}"
            if done == restart_after and restart_task is None:
                restart_task = asyncio.get_running_loop().create_task(
                    asyncio.to_thread(cluster.restart, victim)
                )
            try:
                reply = await client.request_any(
                    Keyed(
                        key=key,
                        message=ClientUpdate(
                            f"nemesis/u{done}", GSetAdd(f"e{done}")
                        ),
                    ),
                    timeout=timeout,
                )
            except (TransportError, RequestTimeout):
                continue  # the whole ring failed this round: try again
            if isinstance(getattr(reply, "message", reply), UpdateDone):
                done += 1
                if killed_at and (
                    restart_task is None or not restart_task.done()
                ):
                    during_outage += 1
        if restart_task is None:
            restart_task = asyncio.get_running_loop().create_task(
                asyncio.to_thread(cluster.restart, victim)
            )
        await restart_task

        # The acceptance read: addressed to the restarted victim
        # directly (no fail-over — a survivor answering would prove
        # nothing).  Its rejoin gate buffers the query until the
        # read-quorum refresh completes, then the §3.4 certified read
        # must include the marker committed while it was dead.
        reply = await client.request(
            victim,
            Keyed(key=key, message=ClientQuery("nemesis/q-missed", Elements())),
            timeout=max(timeout, 15.0),
        )
        recovery_seconds = time.perf_counter() - killed_at
        result = getattr(reply, "message", reply).result
        missed_op_visible = marker in result

        victim_stats = await client.transport_stats(victim, timeout=timeout)
        survivor_stats = []
        for nid in cluster.replicas:
            if nid != victim:
                survivor_stats.append(
                    await client.transport_stats(nid, timeout=timeout)
                )
        return KillCampaignReport(
            ops_total=done,
            ops_during_outage=during_outage,
            failovers=client.failovers,
            missed_op_visible=missed_op_visible,
            recovery_seconds=recovery_seconds,
            victim_stats=victim_stats,
            survivor_stats=survivor_stats,
        )
    finally:
        await client.close()
