"""Nemesis drivers for the checker's adversarial explorer.

:class:`KeyedNemesis` replays a :class:`~repro.nemesis.schedule.\
NemesisSchedule` against a :class:`~repro.checker.scheduler.\
KeyedInterleavingExplorer` run (via its ``nemesis=`` hook), rescaling
the schedule's timeline to scheduler steps — the explorer has no
meaningful clock, so "one schedule unit" becomes ``steps_per_unit``
adversarial steps.

Translation onto the adversarial network:

* :class:`Partition` → the network's ``blocked`` predicate.  Blocked
  picks are *held* and released the moment the window closes — a healed
  partition delivering its backlog mid-run, racing fresh traffic.
* :class:`LossBurst` → the per-link ``link_loss`` probability hook.
* :class:`Crash` / :class:`HardKill` / :class:`IoFault` → discrete
  actions fired when their step arrives (several due in the same step
  run in the same step: simultaneous kills).
* :class:`DelaySpike` and :class:`DuplicationBurst` are no-ops here by
  design: uniform pick-next delivery already reorders arbitrarily
  (strictly subsuming any delay distribution), and duplication is the
  run's global ``duplicate_probability``.  They only shape the
  latency-model path.

``finish`` fires whatever the run was too short to reach and heals
everything, so a campaign's exercised-ness assertions can rely on every
scheduled fault having actually happened.

:class:`KillDuringRejoin` is the predicate-triggered driver the
kill-during-rejoin campaigns use: instead of trusting timing, it kills
the second victim at the first step where the first victim's rejoin is
observably in progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.nemesis.schedule import (
    Crash,
    HardKill,
    IoFault,
    LossBurst,
    NemesisSchedule,
    Partition,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.checker.scheduler import KeyedNemesisContext


def _matches(src: str, dst: str, side_a, side_b, symmetric: bool) -> bool:
    if (side_a is None or src in side_a) and (side_b is None or dst in side_b):
        return True
    return symmetric and (
        (side_b is None or src in side_b) and (side_a is None or dst in side_a)
    )


@dataclass
class _Action:
    step: int
    kind: str  # "crash" | "recover" | "kill" | "io_break" | "io_heal" | "release"
    replica: str | None = None
    done: bool = False


class KeyedNemesis:
    """Schedule-driven nemesis for :meth:`KeyedInterleavingExplorer.run`."""

    def __init__(self, schedule: NemesisSchedule, steps_per_unit: int = 40) -> None:
        self.schedule = schedule
        self.steps_per_unit = steps_per_unit
        self._step = 0
        self._partitions: list[tuple[int, int, Partition]] = []
        self._losses: list[tuple[int, int, LossBurst]] = []
        self._actions: list[_Action] = []
        #: Exercised-ness counters — campaigns assert on these.
        self.kills = 0
        self.crashes = 0
        self.recoveries = 0
        self.io_breaks = 0
        self.io_heals = 0
        self.releases = 0

    def _scale(self, t: float) -> int:
        return int(round(t * self.steps_per_unit))

    # ------------------------------------------------------------------
    def begin(self, ctx: "KeyedNemesisContext") -> None:
        actions = self._actions
        for event in self.schedule.events:
            if isinstance(event, Partition):
                lo, hi = self._scale(event.start), self._scale(event.until)
                self._partitions.append((lo, hi, event))
                # Healed partitions deliver their parked backlog.
                actions.append(_Action(step=hi, kind="release"))
            elif isinstance(event, LossBurst):
                self._losses.append(
                    (self._scale(event.start), self._scale(event.until), event)
                )
            elif isinstance(event, Crash):
                actions.append(
                    _Action(self._scale(event.at), "crash", event.replica)
                )
                actions.append(
                    _Action(self._scale(event.recover_at), "recover", event.replica)
                )
            elif isinstance(event, HardKill):
                actions.append(_Action(self._scale(event.at), "kill", event.replica))
            elif isinstance(event, IoFault):
                targets = (
                    [event.replica]
                    if event.replica is not None
                    else list(ctx.replica_ids)
                )
                for target in targets:
                    actions.append(
                        _Action(self._scale(event.start), "io_break", target)
                    )
                    actions.append(
                        _Action(self._scale(event.until), "io_heal", target)
                    )
        actions.sort(key=lambda a: a.step)

        def blocked(src: str, dst: str) -> bool:
            for lo, hi, p in self._partitions:
                if lo <= self._step < hi and _matches(
                    src, dst, p.side_a, p.side_b, p.symmetric
                ):
                    return True
            return False

        def link_loss(src: str, dst: str) -> float:
            loss = 0.0
            for lo, hi, burst in self._losses:
                if lo <= self._step < hi and _matches(
                    src, dst, burst.src, burst.dst, burst.symmetric
                ):
                    loss = max(loss, burst.probability)
            return loss

        if self._partitions:
            ctx.network.blocked = blocked
        if self._losses:
            ctx.network.link_loss = link_loss

    # ------------------------------------------------------------------
    def _fire(self, ctx: "KeyedNemesisContext", action: _Action) -> None:
        action.done = True
        if action.kind == "crash":
            ctx.runtimes[action.replica].crashed = True
            self.crashes += 1
        elif action.kind == "recover":
            ctx.runtimes[action.replica].crashed = False
            self.recoveries += 1
        elif action.kind == "kill":
            ctx.hard_kill(action.replica)
            self.kills += 1
        elif action.kind == "io_break":
            store = ctx.explorer.spill_stores[action.replica]
            store.break_io()
            self.io_breaks += 1
        elif action.kind == "io_heal":
            store = ctx.explorer.spill_stores[action.replica]
            store.heal_io()
            self.io_heals += 1
        elif action.kind == "release":
            self.releases += ctx.network.release_held()

    def step(self, ctx: "KeyedNemesisContext") -> bool:
        self._step += 1
        fired = False
        for action in self._actions:
            if action.done or action.step > self._step:
                continue
            self._fire(ctx, action)
            # Releases and recoveries are bookkeeping, not a consumed
            # adversarial step; discrete faults are.
            fired = fired or action.kind in ("crash", "kill", "io_break")
        return fired

    def finish(self, ctx: "KeyedNemesisContext") -> None:
        # Fire anything the run was too short to reach (in step order) so
        # exercised-ness holds for every scheduled event, then heal.
        for action in self._actions:
            if not action.done:
                self._fire(ctx, action)
        self._step = max(self._step, self._scale(self.schedule.heal_time()) + 1)
        for runtime in ctx.runtimes.values():
            runtime.crashed = False
        for store in ctx.explorer.spill_stores.values():
            heal = getattr(store, "heal_io", None)
            if heal is not None:
                heal()


@dataclass
class KillDuringRejoin:
    """Hard-kill ``second`` at the first step ``first``'s rejoin is live.

    Kills ``first`` once ``kill_at`` steps have elapsed; from then on
    watches :meth:`KeyedNemesisContext.rejoining` and kills ``second``
    the moment ``first`` shows keys still awaiting their read-quorum
    refresh.  If the rejoin completes before the watcher ever observes
    it (nothing durable to refresh, or instant quorum), ``second`` is
    killed at ``finish`` so the run still exercises a second kill.
    """

    first: str
    second: str
    kill_at: int = 40
    _step: int = field(default=0, repr=False)
    first_killed: bool = field(default=False, repr=False)
    second_killed: bool = field(default=False, repr=False)
    #: True when the second kill landed while the first was rejoining.
    overlapped: bool = field(default=False, repr=False)

    def begin(self, ctx: "KeyedNemesisContext") -> None:  # noqa: D102
        pass

    def step(self, ctx: "KeyedNemesisContext") -> bool:
        self._step += 1
        if not self.first_killed:
            if self._step >= self.kill_at:
                ctx.hard_kill(self.first)
                self.first_killed = True
                return True
            return False
        if not self.second_killed and self.first in ctx.rejoining():
            ctx.hard_kill(self.second)
            self.second_killed = True
            self.overlapped = True
            return True
        return False

    def finish(self, ctx: "KeyedNemesisContext") -> None:
        if not self.first_killed:
            ctx.hard_kill(self.first)
            self.first_killed = True
        if not self.second_killed:
            ctx.hard_kill(self.second)
            self.second_killed = True
