"""Fault model & nemesis.

This package is the repo's fault-injection surface: declarative,
seed-deterministic fault schedules that compose into named scenarios and
install onto both execution stacks — the latency-model simulator
(:class:`~repro.runtime.cluster.SimCluster` over a
:class:`~repro.net.faults.FaultPlan`) and the checker's adversarial
explorer (:class:`~repro.checker.scheduler.KeyedInterleavingExplorer`).

Fault model
===========

The faults the nemesis can inject, and what each is allowed to break:

**Network** — symmetric and one-way :class:`Partition` windows,
:class:`LossBurst` / :class:`DuplicationBurst` probabilities, and
per-link :class:`DelaySpike` jitter.  These only exercise the paper's
§2.1 asynchrony assumptions: messages may be delayed, reordered,
duplicated or lost, but never corrupted.  A healed partition delivers
its parked backlog (strictly more hostile than dropping it).

**Process** — :class:`Crash` pauses a replica with state intact (the
crash-recovery model: timers are lost, RAM survives); :class:`HardKill`
is kill -9: RAM dies, the process restarts from whatever its durability
policy persisted and *rejoins* — every recovered key is refreshed from
a read quorum (a §3.3 prepare) before it serves traffic.
:mod:`repro.nemesis.process` delivers both verbs through the operating
system instead of the simulator: a :class:`ProcessCluster` of real
replica processes on real sockets, SIGKILLed and cold-restarted over
their spill directories, plus transport-level faults (severed TCP
connections, garbage bytes desyncing a live frame stream) answered by
the connection supervisor in :mod:`repro.net.stream`.

**Storage** — :class:`IoFault` brownout windows during which a
replica's :class:`~repro.storage.faulty.FaultySpillStore` fails every
put/fsync (optionally as torn partial writes).  The replica must uphold
persist-before-ack: a failed ``write_through`` persist refuses the
step's acks — peers see silence and re-drive, clients see
``Refused(code="storage")`` — and never lets an unpersisted promise
escape.

Degradation contract
====================

Under any schedule the system degrades *gracefully* and recovers
*automatically*:

* Proposer re-drives and rejoin re-broadcasts back off exponentially
  with deterministic jitter (``backoff_multiplier`` / ``backoff_cap`` /
  ``backoff_jitter`` on the config), resetting on first progress — no
  retry storms into a dead link, no sulking through a healed one.
* With ``redrive_limit`` set, a replica that cannot assemble a quorum
  refuses in bounded time: clients get
  :class:`~repro.errors.QuorumUnavailable` (via ``Refused``) rather
  than hanging forever.  Storage faults surface as
  :class:`~repro.errors.StorageUnavailable` the same way.
* The :class:`~repro.api.store.Store` client tracks per-replica
  suspicion and fails over away from refusing/silent replicas,
  returning home once suspicion clears.
* After :meth:`NemesisSchedule.heal_time` every scenario must serve
  fresh client requests with no manual intervention — the scenario
  campaigns assert it, under the per-key lattice-linearizability and
  §3.4 GLA-monotonicity oracles.

Use :func:`scenario`/:data:`SCENARIOS` for the named schedules,
:meth:`NemesisSchedule.install_sim` for the latency path, and
:class:`KeyedNemesis` (or :class:`KillDuringRejoin`) for the explorer
path.
"""

from repro.nemesis.campaign import KeyedNemesis, KillDuringRejoin
from repro.nemesis.process import (
    KillCampaignReport,
    ProcessCluster,
    run_kill_campaign,
)
from repro.nemesis.schedule import (
    Crash,
    DelaySpike,
    DuplicationBurst,
    HardKill,
    IoFault,
    LossBurst,
    NemesisEvent,
    NemesisSchedule,
    Partition,
)
from repro.nemesis.scenarios import SCENARIOS, scenario
from repro.nemesis.sharded import ShardedMigrationNemesis
from repro.storage.faulty import FaultySpillStore

__all__ = [
    "Partition",
    "LossBurst",
    "DuplicationBurst",
    "DelaySpike",
    "Crash",
    "HardKill",
    "IoFault",
    "NemesisEvent",
    "NemesisSchedule",
    "SCENARIOS",
    "scenario",
    "KeyedNemesis",
    "KillDuringRejoin",
    "KillCampaignReport",
    "ProcessCluster",
    "run_kill_campaign",
    "ShardedMigrationNemesis",
    "FaultySpillStore",
]
