"""Fault driver striking mid-migration in sharded adversarial runs.

:class:`ShardedMigrationNemesis` plugs into
:meth:`~repro.checker.sharded.ShardedMigrationExplorer.run` and arms
itself on the first key move the coordinator opens.  Relative to that
move it can:

* **hard-kill a source-group member** a few scheduler steps in —
  typically mid-freeze, so the kill lands between the persist of the
  freeze mark and the delivery of the snapshot reply.  The rebuilt
  member recovers still frozen and rejoins; the migration completes on
  the surviving quorum.
* **partition the coordinator from the destination group** — the
  install cannot reach a quorum, the move stalls with the source
  frozen (clients bounce to the destination and buffer there), and
  nothing unfreezes by timeout: the move completes only after the heal,
  via the coordinator's re-drives.

Both act once per run by default; ``finish`` always heals, so the
explorer's quiesce sees a connected network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checker.sharded import ShardedNemesisContext


@dataclass
class ShardedMigrationNemesis:
    """Strikes relative to the first migration a run opens.

    Parameters
    ----------
    kill_source_member:
        Hard-kill one random member of the move's source group
        ``kill_after_steps`` scheduler steps after the move opens
        (requires the explorer to have a ``spill_factory``).
    partition_coordinator_from_target:
        Cut coordinator↔destination both ways ``partition_after_steps``
        steps after the move opens, for ``partition_steps`` steps.
    """

    kill_source_member: bool = False
    partition_coordinator_from_target: bool = False
    kill_after_steps: int = 6
    partition_after_steps: int = 2
    partition_steps: int = 40
    max_kills: int = 1

    _seen_moves: int = field(default=0, init=False)
    _since_move: int | None = field(default=None, init=False)
    _move: tuple | None = field(default=None, init=False)
    _kills: int = field(default=0, init=False)
    _partitions: int = field(default=0, init=False)
    _partition_left: int = field(default=0, init=False)
    _partition_on: bool = field(default=False, init=False)

    # ------------------------------------------------------------------
    def begin(self, ctx: ShardedNemesisContext) -> None:
        self._seen_moves = len(ctx.moves)

    def step(self, ctx: ShardedNemesisContext) -> bool:
        if self._since_move is None:
            if len(ctx.moves) > self._seen_moves:
                self._seen_moves = len(ctx.moves)
                self._move = ctx.moves[-1]
                self._since_move = 0
            else:
                return False
        self._since_move += 1
        assert self._move is not None
        _key, source, target = self._move
        if self._partition_on:
            self._partition_left -= 1
            if self._partition_left <= 0:
                ctx.heal()
                self._partition_on = False
                return True
        elif (
            self.partition_coordinator_from_target
            and self._partitions == 0
            and self._since_move >= self.partition_after_steps
        ):
            ctx.partition(
                {ctx.coordinator_id}, set(ctx.members[target])
            )
            self._partition_on = True
            self._partitions += 1
            self._partition_left = self.partition_steps
            return True
        if (
            self.kill_source_member
            and self._kills < self.max_kills
            and self._since_move >= self.kill_after_steps
        ):
            ctx.hard_kill(ctx.rng.choice(ctx.members[source]))
            self._kills += 1
            return True
        return False

    def finish(self, ctx: ShardedNemesisContext) -> None:
        if self._partition_on:
            ctx.heal()
            self._partition_on = False
